//! Runtime shadow persistence state.
//!
//! While the analysis-side memory simulation ([`hawkset_core::memsim`])
//! replays a finished trace, the runtime needs the same worst-case
//! semantics *online* for two purposes:
//!
//! * building the **crash image** — the byte content guaranteed to be in PM
//!   at any instant, used by crash-consistency examples and recovery tests;
//! * the **observation-based baseline** (the `pmrace` crate), which flags a
//!   race only when a load actually reads bytes that another thread wrote
//!   and has not yet persisted.
//!
//! The rules mirror `memsim`: a store dirties bytes; a flush snapshots the
//! currently dirty bytes of one cache line for the flushing thread; a fence
//! commits that thread's snapshots to the persistent image. Bytes
//! overwritten between flush and fence lose their guarantee (neither old
//! nor new value is certain to land), so overwrites punch holes in pending
//! snapshots exactly like they truncate analysis windows.

use std::collections::HashMap;

use hawkset_core::addr::{line_of, AddrRange, LineId};
use hawkset_core::trace::ThreadId;

/// One unpersisted (dirty) write.
#[derive(Clone, Debug)]
struct DirtyEntry {
    /// Bytes covered (always within one cache line).
    range: AddrRange,
    /// Writing thread.
    tid: ThreadId,
    /// Function name of the store site (for observation attribution).
    store_fn: std::sync::Arc<str>,
    /// Once flushed: the captured bytes and the threads whose fence commits
    /// them. `None` until a flush covers the line (or from the start for
    /// non-temporal stores, which carry their own bytes).
    snapshot: Option<Snapshot>,
}

#[derive(Clone, Debug)]
struct Snapshot {
    /// Captured content of `range` at flush time.
    bytes: Vec<u8>,
    /// Threads whose next fence commits this snapshot.
    flushers: Vec<ThreadId>,
}

/// Worst-case persistence tracking over the whole PM address space.
#[derive(Debug, Default)]
pub struct ShadowPm {
    lines: HashMap<LineId, Vec<DirtyEntry>>,
    /// Lines each thread has pending snapshots on.
    fence_watch: HashMap<ThreadId, Vec<LineId>>,
}

/// A committed write: apply these bytes to the persistent image.
#[derive(Debug, PartialEq, Eq)]
pub struct CommittedWrite {
    /// Where the bytes land.
    pub range: AddrRange,
    /// The byte content guaranteed persisted.
    pub bytes: Vec<u8>,
}

impl ShadowPm {
    /// Creates an empty shadow (everything clean).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a store of `bytes.len()` bytes at `range.start` by `tid`.
    ///
    /// `bytes` is only retained for non-temporal stores (`non_temporal`),
    /// which are immediately pending on the storing thread's fence.
    pub fn store(&mut self, tid: ThreadId, range: AddrRange, bytes: &[u8], non_temporal: bool) {
        self.store_with_site(tid, range, bytes, non_temporal, "<unknown>");
    }

    /// Like [`ShadowPm::store`], attributing the write to a named site.
    pub fn store_with_site(
        &mut self,
        tid: ThreadId,
        range: AddrRange,
        bytes: &[u8],
        non_temporal: bool,
        store_fn: &str,
    ) {
        let store_fn: std::sync::Arc<str> = std::sync::Arc::from(store_fn);
        debug_assert_eq!(bytes.len(), range.len as usize);
        for line in range.lines() {
            let entries = self.lines.entry(line).or_default();
            let mut replacement = Vec::with_capacity(entries.len() + 1);
            for entry in entries.drain(..) {
                if !entry.range.overlaps(&range) {
                    replacement.push(entry);
                    continue;
                }
                // Overwritten bytes lose any persistence guarantee.
                let (head, tail) = entry.range.subtract(&range);
                for piece in [head, tail].into_iter().flatten() {
                    replacement.push(DirtyEntry {
                        range: piece,
                        tid: entry.tid,
                        store_fn: std::sync::Arc::clone(&entry.store_fn),
                        snapshot: entry.snapshot.as_ref().map(|s| Snapshot {
                            bytes: slice_snapshot(&entry.range, &s.bytes, &piece),
                            flushers: s.flushers.clone(),
                        }),
                    });
                }
            }
            *entries = replacement;
            // The part of the store that falls on this line.
            let start = hawkset_core::addr::line_base(line).max(range.start);
            let end = (hawkset_core::addr::line_base(line) + hawkset_core::addr::CACHE_LINE)
                .min(range.end());
            let piece = AddrRange::new(start, (end - start) as u32);
            let snapshot = non_temporal.then(|| Snapshot {
                bytes: slice_snapshot(&range, bytes, &piece),
                flushers: vec![tid],
            });
            if non_temporal {
                self.fence_watch.entry(tid).or_default().push(line);
            }
            entries.push(DirtyEntry {
                range: piece,
                tid,
                store_fn: std::sync::Arc::clone(&store_fn),
                snapshot,
            });
        }
    }

    /// Records a flush by `tid` of the line containing `addr`; `line_bytes`
    /// must provide the current volatile content of that line (base at the
    /// line start).
    pub fn flush(&mut self, tid: ThreadId, addr: u64, line_bytes: &[u8; 64]) {
        let line = line_of(addr);
        let base = hawkset_core::addr::line_base(line);
        let Some(entries) = self.lines.get_mut(&line) else {
            return;
        };
        let mut watched = false;
        for entry in entries.iter_mut() {
            match &mut entry.snapshot {
                Some(s) => {
                    if !s.flushers.contains(&tid) {
                        s.flushers.push(tid);
                    }
                }
                None => {
                    let off = (entry.range.start - base) as usize;
                    entry.snapshot = Some(Snapshot {
                        bytes: line_bytes[off..off + entry.range.len as usize].to_vec(),
                        flushers: vec![tid],
                    });
                }
            }
            watched = true;
        }
        if watched {
            self.fence_watch.entry(tid).or_default().push(line);
        }
    }

    /// Records a fence by `tid`: returns the writes that are now guaranteed
    /// persistent, to be applied to the persistent image in order.
    pub fn fence(&mut self, tid: ThreadId) -> Vec<CommittedWrite> {
        let Some(mut lines) = self.fence_watch.remove(&tid) else {
            return Vec::new();
        };
        lines.sort_unstable();
        lines.dedup();
        let mut committed = Vec::new();
        for line in lines {
            let Some(entries) = self.lines.get_mut(&line) else {
                continue;
            };
            let mut kept = Vec::with_capacity(entries.len());
            for entry in entries.drain(..) {
                match &entry.snapshot {
                    Some(s) if s.flushers.contains(&tid) => {
                        committed.push(CommittedWrite {
                            range: entry.range,
                            bytes: s.bytes.clone(),
                        });
                    }
                    _ => kept.push(entry),
                }
            }
            *entries = kept;
            if self.lines.get(&line).is_some_and(|e| e.is_empty()) {
                self.lines.remove(&line);
            }
        }
        committed
    }

    /// Returns the writer of some unpersisted byte overlapping `range`
    /// written by a thread other than `reader`, if any — the
    /// observation-based detector's trigger condition.
    pub fn unpersisted_foreign_writer(
        &self,
        reader: ThreadId,
        range: &AddrRange,
    ) -> Option<(ThreadId, std::sync::Arc<str>)> {
        for line in range.lines() {
            if let Some(entries) = self.lines.get(&line) {
                for e in entries {
                    if e.tid != reader && e.range.overlaps(range) {
                        return Some((e.tid, std::sync::Arc::clone(&e.store_fn)));
                    }
                }
            }
        }
        None
    }

    /// Returns `true` if no byte of `range` is dirty (everything written
    /// there is guaranteed persisted).
    pub fn is_clean(&self, range: &AddrRange) -> bool {
        range.lines().all(|line| {
            self.lines
                .get(&line)
                .is_none_or(|entries| entries.iter().all(|e| !e.range.overlaps(range)))
        })
    }

    /// Number of dirty entries (cost accounting / tests).
    pub fn dirty_entries(&self) -> usize {
        self.lines.values().map(Vec::len).sum()
    }
}

/// Extracts the sub-slice of `bytes` (which covers `whole`) for `piece`.
fn slice_snapshot(whole: &AddrRange, bytes: &[u8], piece: &AddrRange) -> Vec<u8> {
    let off = (piece.start - whole.start) as usize;
    bytes[off..off + piece.len as usize].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    fn line_content(fill: u8) -> [u8; 64] {
        [fill; 64]
    }

    #[test]
    fn store_flush_fence_commits_bytes() {
        let mut s = ShadowPm::new();
        s.store(T0, AddrRange::new(0x100, 8), &[7; 8], false);
        assert!(!s.is_clean(&AddrRange::new(0x100, 8)));
        s.flush(T0, 0x100, &line_content(7));
        let w = s.fence(T0);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].range, AddrRange::new(0x100, 8));
        assert_eq!(w[0].bytes, vec![7; 8]);
        assert!(s.is_clean(&AddrRange::new(0x100, 8)));
    }

    #[test]
    fn fence_by_non_flusher_commits_nothing() {
        let mut s = ShadowPm::new();
        s.store(T0, AddrRange::new(0x100, 8), &[7; 8], false);
        s.flush(T0, 0x100, &line_content(7));
        assert!(s.fence(T1).is_empty());
        assert!(!s.is_clean(&AddrRange::new(0x100, 8)));
        assert_eq!(s.fence(T0).len(), 1);
    }

    #[test]
    fn overwrite_after_flush_voids_the_guarantee() {
        let mut s = ShadowPm::new();
        s.store(T0, AddrRange::new(0x100, 8), &[1; 8], false);
        s.flush(T0, 0x100, &line_content(1));
        // Overwrite before the fence: neither value is guaranteed.
        s.store(T1, AddrRange::new(0x100, 8), &[2; 8], false);
        assert!(s.fence(T0).is_empty());
        assert_eq!(
            s.unpersisted_foreign_writer(T0, &AddrRange::new(0x100, 8))
                .map(|(t, _)| t),
            Some(T1)
        );
    }

    #[test]
    fn partial_overwrite_commits_surviving_bytes() {
        let mut s = ShadowPm::new();
        s.store(T0, AddrRange::new(0x100, 16), &[1; 16], false);
        s.flush(T0, 0x100, &line_content(1));
        s.store(T0, AddrRange::new(0x108, 8), &[2; 8], false);
        let w = s.fence(T0);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].range, AddrRange::new(0x100, 8));
        assert_eq!(w[0].bytes, vec![1; 8]);
        // The overwriting store remains dirty.
        assert!(!s.is_clean(&AddrRange::new(0x108, 8)));
    }

    #[test]
    fn non_temporal_store_commits_at_own_fence() {
        let mut s = ShadowPm::new();
        s.store(T0, AddrRange::new(0x100, 8), &[9; 8], true);
        let w = s.fence(T0);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].bytes, vec![9; 8]);
    }

    #[test]
    fn foreign_writer_detection() {
        let mut s = ShadowPm::new();
        s.store(T0, AddrRange::new(0x100, 8), &[1; 8], false);
        // Reading your own dirty data is fine.
        assert!(s
            .unpersisted_foreign_writer(T0, &AddrRange::new(0x100, 8))
            .is_none());
        // Another thread reading it is the PMRace trigger.
        assert_eq!(
            s.unpersisted_foreign_writer(T1, &AddrRange::new(0x100, 8))
                .map(|(t, _)| t),
            Some(T0)
        );
        // Disjoint reads see nothing.
        assert!(s
            .unpersisted_foreign_writer(T1, &AddrRange::new(0x200, 8))
            .is_none());
        // Once persisted the observation window is gone.
        s.flush(T0, 0x100, &line_content(1));
        s.fence(T0);
        assert!(s
            .unpersisted_foreign_writer(T1, &AddrRange::new(0x100, 8))
            .is_none());
    }

    #[test]
    fn cross_line_store_tracks_both_lines() {
        let mut s = ShadowPm::new();
        s.store(T0, AddrRange::new(0x138, 16), &[5; 16], false);
        s.flush(T0, 0x138, &line_content(5)); // first line only
        let w = s.fence(T0);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].range, AddrRange::new(0x138, 8));
        assert!(!s.is_clean(&AddrRange::new(0x140, 8)));
    }
}
