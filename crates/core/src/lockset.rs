//! Locksets and effective locksets (§3.1.1–§3.1.2).
//!
//! A lockset is the set of locks held by a thread at a given point. HawkSet
//! extends each entry with the *acquisition timestamp* — the value of a
//! thread-local logical clock, incremented on every lock acquisition — so
//! that the store→persist intersection can tell whether both operations sit
//! in the *same* critical section (Figure 2d: release + re-acquire between
//! store and persist must empty the effective lockset).
//!
//! Additionally each entry carries the [`LockMode`]: a reader/writer lock
//! held in shared mode on both sides of a store/load pair does not provide
//! mutual exclusion.

use serde::{Deserialize, Serialize};

use crate::trace::{LockId, LockMode};

/// One held lock: identity, mode, and thread-local acquisition timestamp.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LockEntry {
    /// The lock object.
    pub lock: LockId,
    /// Exclusive or shared acquisition.
    pub mode: LockMode,
    /// Value of the owning thread's logical clock when the lock was
    /// acquired. Only meaningful within one thread (§3.1.2: "the timestamp
    /// … is only meaningful in the thread-local context").
    pub acq_ts: u64,
}

/// An immutable, sorted set of [`LockEntry`]s.
///
/// Locksets are small (nesting depth of real programs is shallow) and
/// heavily shared, so they are kept sorted in a `Vec` and interned by the
/// analysis (§4).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Lockset {
    entries: Vec<LockEntry>,
}

impl Lockset {
    /// The empty lockset.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a lockset from entries (sorted + deduplicated by lock id;
    /// if the same lock appears twice the most recent entry wins).
    pub fn from_entries(mut entries: Vec<LockEntry>) -> Self {
        entries.sort();
        entries.dedup_by_key(|e| e.lock);
        Self { entries }
    }

    /// Returns `true` if no locks are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of held locks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over the entries in lock-id order.
    pub fn iter(&self) -> impl Iterator<Item = &LockEntry> {
        self.entries.iter()
    }

    /// Returns the entry for `lock`, if held.
    pub fn get(&self, lock: LockId) -> Option<&LockEntry> {
        self.entries
            .binary_search_by_key(&lock, |e| e.lock)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Returns a new lockset with `entry` added (replacing any entry for the
    /// same lock — re-acquisition refreshes the timestamp).
    pub fn with(&self, entry: LockEntry) -> Self {
        let mut entries = self.entries.clone();
        match entries.binary_search_by_key(&entry.lock, |e| e.lock) {
            Ok(i) => entries[i] = entry,
            Err(i) => entries.insert(i, entry),
        }
        Self { entries }
    }

    /// Returns a new lockset with `lock` removed.
    pub fn without(&self, lock: LockId) -> Self {
        let mut entries = self.entries.clone();
        if let Ok(i) = entries.binary_search_by_key(&lock, |e| e.lock) {
            entries.remove(i);
        }
        Self { entries }
    }

    /// Same-thread intersection, *timestamp sensitive* — used to compute the
    /// effective lockset of a store and its persist point (§3.1.2).
    ///
    /// An entry survives only if the same lock was held **in the same
    /// critical section** (equal acquisition timestamp) at both points. The
    /// surviving mode is the weaker of the two (a lock downgraded between
    /// store and persist only protects as a shared lock).
    pub fn intersect_same_thread(&self, other: &Lockset) -> Lockset {
        let mut out = Vec::new();
        for e in &self.entries {
            if let Some(o) = other.get(e.lock) {
                if o.acq_ts == e.acq_ts {
                    let mode = if e.mode == LockMode::Shared || o.mode == LockMode::Shared {
                        LockMode::Shared
                    } else {
                        LockMode::Exclusive
                    };
                    out.push(LockEntry {
                        lock: e.lock,
                        mode,
                        acq_ts: e.acq_ts,
                    });
                }
            }
        }
        Lockset { entries: out }
    }

    /// Cross-thread intersection, timestamp *insensitive* — used when the
    /// two locksets belong to different threads (window closed by a
    /// cross-thread overwrite). Timestamps in the result are zeroed since
    /// they carry no cross-thread meaning.
    pub fn intersect_cross_thread(&self, other: &Lockset) -> Lockset {
        let mut out = Vec::new();
        for e in &self.entries {
            if let Some(o) = other.get(e.lock) {
                let mode = if e.mode == LockMode::Shared || o.mode == LockMode::Shared {
                    LockMode::Shared
                } else {
                    LockMode::Exclusive
                };
                out.push(LockEntry {
                    lock: e.lock,
                    mode,
                    acq_ts: 0,
                });
            }
        }
        Lockset { entries: out }
    }

    /// The inter-thread race check of Algorithm 1 line 18: does some common
    /// lock provide mutual exclusion between a store window with effective
    /// lockset `self` and a load with lockset `other`?
    ///
    /// Timestamps are ignored (§3.1.2). A common lock protects unless both
    /// sides hold it in shared mode.
    pub fn protects_against(&self, other: &Lockset) -> bool {
        for e in &self.entries {
            if let Some(o) = other.get(e.lock) {
                if e.mode == LockMode::Exclusive || o.mode == LockMode::Exclusive {
                    return true;
                }
            }
        }
        false
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.entries.capacity() * core::mem::size_of::<LockEntry>()
    }
}

impl FromIterator<LockEntry> for Lockset {
    fn from_iter<T: IntoIterator<Item = LockEntry>>(iter: T) -> Self {
        Self::from_entries(iter.into_iter().collect())
    }
}

impl core::fmt::Display for Lockset {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let mode = match e.mode {
                LockMode::Exclusive => "",
                LockMode::Shared => "r",
            };
            write!(f, "{:?}{}@{}", e.lock, mode, e.acq_ts)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(lock: u64, ts: u64) -> LockEntry {
        LockEntry {
            lock: LockId(lock),
            mode: LockMode::Exclusive,
            acq_ts: ts,
        }
    }

    fn sh(lock: u64, ts: u64) -> LockEntry {
        LockEntry {
            lock: LockId(lock),
            mode: LockMode::Shared,
            acq_ts: ts,
        }
    }

    #[test]
    fn with_and_without() {
        let ls = Lockset::empty().with(ex(1, 10)).with(ex(2, 11));
        assert_eq!(ls.len(), 2);
        assert_eq!(ls.get(LockId(1)).unwrap().acq_ts, 10);
        let ls2 = ls.without(LockId(1));
        assert_eq!(ls2.len(), 1);
        assert!(ls2.get(LockId(1)).is_none());
        // Re-acquisition refreshes the timestamp.
        let ls3 = ls.with(ex(1, 99));
        assert_eq!(ls3.get(LockId(1)).unwrap().acq_ts, 99);
        assert_eq!(ls3.len(), 2);
    }

    /// Figure 2a/2c: store under lock A, persist with no lock held — the
    /// effective lockset is empty.
    #[test]
    fn effective_lockset_empty_when_persist_unprotected() {
        let store_ls = Lockset::from_entries(vec![ex(0xa, 1)]);
        let persist_ls = Lockset::empty();
        assert!(store_ls.intersect_same_thread(&persist_ls).is_empty());
    }

    /// Figure 2b vs 2d: same lock at store and persist. If the acquisition
    /// timestamps match the effective lockset keeps the lock; if the lock
    /// was released and re-acquired (different timestamp) it must not.
    #[test]
    fn effective_lockset_is_timestamp_sensitive() {
        let store_ls = Lockset::from_entries(vec![ex(0xa, 1)]);
        let same_cs = Lockset::from_entries(vec![ex(0xa, 1)]);
        let reacquired = Lockset::from_entries(vec![ex(0xa, 2)]);
        assert_eq!(store_ls.intersect_same_thread(&same_cs).len(), 1);
        assert!(store_ls.intersect_same_thread(&reacquired).is_empty());
    }

    #[test]
    fn cross_thread_intersection_ignores_timestamps() {
        let a = Lockset::from_entries(vec![ex(0xa, 1), ex(0xb, 2)]);
        let b = Lockset::from_entries(vec![ex(0xa, 77)]);
        let i = a.intersect_cross_thread(&b);
        assert_eq!(i.len(), 1);
        assert_eq!(i.get(LockId(0xa)).unwrap().acq_ts, 0);
    }

    #[test]
    fn protects_against_requires_common_lock() {
        let st = Lockset::from_entries(vec![ex(1, 5)]);
        let ld_same = Lockset::from_entries(vec![ex(1, 123)]);
        let ld_diff = Lockset::from_entries(vec![ex(2, 9)]);
        assert!(st.protects_against(&ld_same)); // timestamps ignored
        assert!(!st.protects_against(&ld_diff));
        assert!(!st.protects_against(&Lockset::empty()));
        assert!(!Lockset::empty().protects_against(&ld_same));
    }

    #[test]
    fn shared_shared_does_not_protect() {
        let st = Lockset::from_entries(vec![sh(1, 5)]);
        let ld_rd = Lockset::from_entries(vec![sh(1, 6)]);
        let ld_wr = Lockset::from_entries(vec![ex(1, 6)]);
        assert!(!st.protects_against(&ld_rd));
        assert!(st.protects_against(&ld_wr));
    }

    #[test]
    fn mode_weakens_through_intersection() {
        // Store under write lock, persist after downgrade to read lock in
        // the same critical section: the surviving entry is shared, so a
        // shared-mode load is NOT protected.
        let st = Lockset::from_entries(vec![ex(1, 5)]);
        let persist = Lockset::from_entries(vec![sh(1, 5)]);
        let eff = st.intersect_same_thread(&persist);
        assert_eq!(eff.len(), 1);
        assert_eq!(eff.get(LockId(1)).unwrap().mode, LockMode::Shared);
        let ld_rd = Lockset::from_entries(vec![sh(1, 9)]);
        assert!(!eff.protects_against(&ld_rd));
    }

    #[test]
    fn from_entries_sorts_and_dedups() {
        let ls = Lockset::from_entries(vec![ex(5, 1), ex(1, 2), ex(5, 3)]);
        assert_eq!(ls.len(), 2);
        let ids: Vec<u64> = ls.iter().map(|e| e.lock.0).collect();
        assert_eq!(ids, vec![1, 5]);
    }
}
