//! Corruption fault injection for the `.hwkt` codec.
//!
//! The trace file is the trust boundary of the whole pipeline: it is
//! produced by an instrumentation runtime that may crash mid-write, sit on
//! storage that bit-rots, or be handed over by a different (buggy) producer.
//! This module provides a small deterministic harness that manufactures
//! corrupted variants of a well-formed encoding so the test suite can state
//! the robustness contract precisely: [`decode`] and [`decode_lossy`] must
//! *never* panic, and every salvaged trace must be analyzable.
//!
//! The generator is self-contained (an xorshift64* PRNG) so the fault
//! streams are reproducible from a seed and the core crate keeps zero
//! dependencies.
//!
//! [`decode`]: crate::trace::io::decode
//! [`decode_lossy`]: crate::trace::io::decode_lossy

/// One corruption to apply to an encoded trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Keep only the first `len` bytes (a crash mid-write).
    Truncate(usize),
    /// Flip bit `bit` (0..8) of the byte at `offset` (bit rot).
    FlipBit {
        /// Byte position of the flip.
        offset: usize,
        /// Bit index within the byte, 0 = least significant.
        bit: u8,
    },
    /// Overwrite the byte at `offset` with `value`.
    SetByte {
        /// Byte position of the overwrite.
        offset: usize,
        /// Replacement value.
        value: u8,
    },
    /// Overwrite up to 10 bytes starting at `offset` with `0xFF`, which
    /// reads back as a varint with every continuation bit set — the
    /// shift-overflow path of the LEB128 decoder.
    OverflowVarint {
        /// Byte position where the 0xFF run starts.
        offset: usize,
    },
}

/// Returns a corrupted copy of `bytes` with `fault` applied.
///
/// Out-of-range offsets are clamped rather than rejected so that randomly
/// generated faults are always applicable; a clamped fault still corrupts
/// the tail of the buffer.
pub fn apply(bytes: &[u8], fault: Fault) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return out;
    }
    let clamp = |offset: usize| offset.min(out.len() - 1);
    match fault {
        Fault::Truncate(len) => out.truncate(len.min(bytes.len())),
        Fault::FlipBit { offset, bit } => {
            let i = clamp(offset);
            out[i] ^= 1 << (bit % 8);
        }
        Fault::SetByte { offset, value } => {
            let i = clamp(offset);
            out[i] = value;
        }
        Fault::OverflowVarint { offset } => {
            let start = clamp(offset);
            let end = (start + 10).min(out.len());
            for b in &mut out[start..end] {
                *b = 0xFF;
            }
        }
    }
    out
}

/// Deterministic xorshift64* generator for reproducible fault streams.
#[derive(Clone, Debug)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from a seed (any value; zero is remapped).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Draws a random fault applicable to a buffer of `len` bytes.
    pub fn fault(&mut self, len: usize) -> Fault {
        let len = len.max(1);
        match self.next_u64() % 4 {
            0 => Fault::Truncate(self.below(len)),
            1 => Fault::FlipBit {
                offset: self.below(len),
                bit: (self.next_u64() % 8) as u8,
            },
            2 => Fault::SetByte {
                offset: self.below(len),
                value: (self.next_u64() & 0xFF) as u8,
            },
            _ => Fault::OverflowVarint {
                offset: self.below(len),
            },
        }
    }
}

/// Every truncation of `bytes`, shortest first, excluding the full buffer.
///
/// Exhaustively exercises the "crash mid-write" failure mode: the decoder
/// must return an error (never panic) for each, and
/// [`decode_lossy`](crate::trace::io::decode_lossy) must salvage the
/// longest well-formed event prefix.
pub fn truncations(bytes: &[u8]) -> impl Iterator<Item = Vec<u8>> + '_ {
    (0..bytes.len()).map(|len| bytes[..len].to_vec())
}

/// A [`Read`] wrapper that fails with a deterministic I/O error once
/// `fail_at` bytes have been served — the storage-dies-mid-stream failure
/// mode for the streaming analyzer. Bytes before the fault are served
/// verbatim; afterwards every read fails with [`ErrorKind::Other`].
///
/// [`ErrorKind::Other`]: std::io::ErrorKind
#[derive(Debug)]
pub struct IoFaultReader<R> {
    inner: R,
    /// Bytes remaining before the injected failure.
    remaining: u64,
}

impl<R: std::io::Read> IoFaultReader<R> {
    /// Serves exactly `fail_at` bytes of `inner`, then errors forever.
    pub fn new(inner: R, fail_at: u64) -> Self {
        Self {
            inner,
            remaining: fail_at,
        }
    }
}

impl<R: std::io::Read> std::io::Read for IoFaultReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.remaining == 0 {
            return Err(std::io::Error::other("injected I/O fault"));
        }
        let cap = (self.remaining.min(buf.len() as u64)) as usize;
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n as u64;
        Ok(n)
    }
}

/// A [`Read`] wrapper that serves at most `trickle` bytes per call —
/// allocation-pressure injection for the streaming decoder: every refill
/// returns a sliver, maximizing the buffer-stitching and retry paths and
/// the number of partial-decode attempts per event.
#[derive(Debug)]
pub struct TrickleReader<R> {
    inner: R,
    trickle: usize,
}

impl<R: std::io::Read> TrickleReader<R> {
    /// Caps each `read` at `trickle` bytes (minimum 1).
    pub fn new(inner: R, trickle: usize) -> Self {
        Self {
            inner,
            trickle: trickle.max(1),
        }
    }
}

impl<R: std::io::Read> std::io::Read for TrickleReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let cap = self.trickle.min(buf.len());
        self.inner.read(&mut buf[..cap])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn apply_is_pure_and_in_bounds() {
        let original = vec![0u8; 32];
        let mut rng = FaultRng::new(42);
        for _ in 0..100 {
            let fault = rng.fault(original.len());
            let mutated = apply(&original, fault);
            assert!(mutated.len() <= original.len());
            assert_eq!(original, vec![0u8; 32], "input must not be mutated");
        }
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let original = vec![0b1010_1010u8; 4];
        let mutated = apply(&original, Fault::FlipBit { offset: 2, bit: 0 });
        assert_eq!(mutated[2], 0b1010_1011);
        assert_eq!(mutated[0], original[0]);
    }

    #[test]
    fn overflow_varint_writes_ff_run() {
        let original = vec![0u8; 16];
        let mutated = apply(&original, Fault::OverflowVarint { offset: 10 });
        assert_eq!(&mutated[10..16], &[0xFF; 6]);
        assert_eq!(&mutated[..10], &[0u8; 10]);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.fault(100), b.fault(100));
        }
    }

    #[test]
    fn truncations_cover_every_proper_prefix() {
        let bytes = [1u8, 2, 3, 4];
        let cuts: Vec<_> = truncations(&bytes).collect();
        assert_eq!(cuts.len(), 4);
        assert_eq!(cuts[0], Vec::<u8>::new());
        assert_eq!(cuts[3], vec![1, 2, 3]);
    }

    #[test]
    fn io_fault_reader_serves_prefix_then_errors() {
        let data = (0u8..64).collect::<Vec<_>>();
        let mut r = IoFaultReader::new(std::io::Cursor::new(data.clone()), 10);
        let mut got = Vec::new();
        let err = r.read_to_end(&mut got).unwrap_err();
        assert_eq!(got, &data[..10]);
        assert_eq!(err.to_string(), "injected I/O fault");
        let mut buf = [0u8; 4];
        assert!(r.read(&mut buf).is_err(), "the fault is permanent");
    }

    #[test]
    fn trickle_reader_caps_every_read() {
        let data = vec![7u8; 100];
        let mut r = TrickleReader::new(std::io::Cursor::new(data.clone()), 3);
        let mut buf = [0u8; 50];
        let n = r.read(&mut buf).unwrap();
        assert_eq!(n, 3, "reads are capped at the trickle size");
        let mut got = vec![0u8; 3];
        got.copy_from_slice(&buf[..3]);
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        got.extend_from_slice(&rest);
        assert_eq!(got, data, "all bytes still arrive");
    }
}
