//! Known-race registry and report scoring.
//!
//! The paper classifies every report manually (§3.3, Table 4): **Malign**
//! races corrupt state on a crash, **Benign** races are tolerated by the
//! application's design (typically lock-free readers), and **False
//! Positives** can never execute concurrently. Each application in this
//! crate ships its ground truth as a list of [`KnownRace`]s keyed by the
//! frame names of the store and load sites, so the experiment harnesses can
//! score HawkSet's reports automatically — our stand-in for the authors'
//! manual classification.

use hawkset_core::analysis::Race;

/// Manual classification of a genuine race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceClass {
    /// Can corrupt state after a crash (Table 2 material).
    Malign,
    /// Tolerated by the application's design (e.g., lock-free readers of
    /// promptly-persisted data).
    Benign,
}

/// One ground-truth race of an application.
#[derive(Clone, Debug)]
pub struct KnownRace {
    /// Table 2 bug number for malign races; 0 for benign populations.
    pub id: u32,
    /// `true` if the paper reports it as previously unknown.
    pub new: bool,
    /// Frame name of the store site (matched against the report).
    pub store_fn: &'static str,
    /// Frame name of the load site.
    pub load_fn: &'static str,
    /// Table 2-style description.
    pub description: &'static str,
    /// Malign or benign.
    pub class: RaceClass,
}

impl KnownRace {
    /// Malign entry with a Table 2 bug id.
    pub const fn malign(
        id: u32,
        new: bool,
        store_fn: &'static str,
        load_fn: &'static str,
        description: &'static str,
    ) -> Self {
        Self {
            id,
            new,
            store_fn,
            load_fn,
            description,
            class: RaceClass::Malign,
        }
    }

    /// Benign entry (no Table 2 id).
    pub const fn benign(
        store_fn: &'static str,
        load_fn: &'static str,
        description: &'static str,
    ) -> Self {
        Self {
            id: 0,
            new: false,
            store_fn,
            load_fn,
            description,
            class: RaceClass::Benign,
        }
    }

    /// Returns `true` if `race` matches this entry's site pair.
    pub fn matches(&self, race: &Race) -> bool {
        let store_ok = race
            .store_site
            .as_ref()
            .is_some_and(|f| f.function == self.store_fn);
        let load_ok = race
            .load_site
            .as_ref()
            .is_some_and(|f| f.function == self.load_fn);
        store_ok && load_ok
    }
}

/// The scored breakdown of one report against a ground truth — the row
/// format of Table 4.
#[derive(Debug, Default)]
pub struct Breakdown {
    /// Reports matching malign entries.
    pub malign: Vec<Race>,
    /// Reports matching benign entries.
    pub benign: Vec<Race>,
    /// Reports matching nothing: false positives.
    pub false_positives: Vec<Race>,
    /// Table 2 bug ids detected (deduplicated, sorted).
    pub detected_ids: Vec<u32>,
    /// Malign entries with no matching report: misses.
    pub missed: Vec<KnownRace>,
}

impl Breakdown {
    /// MR / BR / FP counts as in Table 4.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.malign.len(),
            self.benign.len(),
            self.false_positives.len(),
        )
    }

    /// Total distinct reports.
    pub fn total(&self) -> usize {
        self.malign.len() + self.benign.len() + self.false_positives.len()
    }
}

/// Scores `races` against `known`, producing the Table 4 breakdown.
///
/// A report may match several ground-truth entries (shared load sites);
/// malign matches take precedence so a genuine bug is never downgraded.
pub fn score(races: &[Race], known: &[KnownRace]) -> Breakdown {
    let mut out = Breakdown::default();
    for race in races {
        let malign_hit = known
            .iter()
            .find(|k| k.class == RaceClass::Malign && k.matches(race));
        let benign_hit = known
            .iter()
            .find(|k| k.class == RaceClass::Benign && k.matches(race));
        match (malign_hit, benign_hit) {
            (Some(k), _) => {
                if k.id != 0 && !out.detected_ids.contains(&k.id) {
                    out.detected_ids.push(k.id);
                }
                out.malign.push(race.clone());
            }
            (None, Some(_)) => out.benign.push(race.clone()),
            (None, None) => out.false_positives.push(race.clone()),
        }
    }
    out.detected_ids.sort_unstable();
    for k in known {
        if k.class == RaceClass::Malign && !races.iter().any(|r| k.matches(r)) {
            out.missed.push(k.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkset_core::addr::AddrRange;
    use hawkset_core::analysis::RaceKey;
    use hawkset_core::trace::{Frame, ThreadId};

    fn race(store_fn: &str, load_fn: &str) -> Race {
        Race {
            key: RaceKey {
                store_stack: 0,
                load_stack: 0,
            },
            store_site: Some(Frame::new(store_fn, "app.rs", 1)),
            load_site: Some(Frame::new(load_fn, "app.rs", 2)),
            store_tid: ThreadId(1),
            load_tid: ThreadId(2),
            example_range: AddrRange::new(0, 8),
            pair_count: 1,
            store_atomic: false,
            load_atomic: false,
            store_non_temporal: false,
            store_never_persisted: true,
            effective_lockset_empty: true,
            store_store: false,
        }
    }

    fn ground_truth() -> Vec<KnownRace> {
        vec![
            KnownRace::malign(
                1,
                false,
                "app::split",
                "app::search",
                "load unpersisted pointer",
            ),
            KnownRace::benign(
                "app::update",
                "app::search",
                "lock-free read of persisted data",
            ),
        ]
    }

    #[test]
    fn scoring_splits_into_classes() {
        let races = vec![
            race("app::split", "app::search"),
            race("app::update", "app::search"),
            race("x", "y"),
        ];
        let b = score(&races, &ground_truth());
        assert_eq!(b.counts(), (1, 1, 1));
        assert_eq!(b.detected_ids, vec![1]);
        assert!(b.missed.is_empty());
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn missing_malign_is_reported() {
        let races = vec![race("app::update", "app::search")];
        let b = score(&races, &ground_truth());
        assert_eq!(b.counts(), (0, 1, 0));
        assert_eq!(b.missed.len(), 1);
        assert_eq!(b.missed[0].id, 1);
    }

    #[test]
    fn malign_takes_precedence_over_benign() {
        let known = vec![
            KnownRace::benign("s", "l", "benign view"),
            KnownRace::malign(7, true, "s", "l", "malign view"),
        ];
        let b = score(&[race("s", "l")], &known);
        assert_eq!(b.counts(), (1, 0, 0));
        assert_eq!(b.detected_ids, vec![7]);
    }
}
