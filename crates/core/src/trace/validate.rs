//! Incremental trace validation for the streaming path.
//!
//! [`Trace::validate`] needs the whole event vector; the streaming analyzer
//! never has one. [`StreamValidator`] accepts events one at a time and
//! reaches the same verdict: push-time checks mirror validate's first pass
//! exactly (same error, same event), and [`finish`](StreamValidator::finish)
//! replays the second and third passes from O(threads)-sized accumulators.
//! The agreement is pinned by a fuzz test at the bottom of this module.

use std::collections::HashMap;

use super::event::{EventKind, LockId, ThreadId};
use super::{Trace, ValidateError};

/// Event-at-a-time equivalent of [`Trace::validate`].
///
/// Feed every event in order via [`push`](Self::push); a `Err` from push is
/// definitive (the batch validator would report the same error). After the
/// last event, [`finish`](Self::finish) runs the whole-trace checks that
/// only make sense at end of stream (orphan threads, event-before-creation,
/// join-before-child's-last-event). Memory is O(threads + live locks),
/// independent of trace length.
#[derive(Debug)]
pub struct StreamValidator {
    thread_count: usize,
    stack_count: usize,
    index: usize,
    first_event: Vec<Option<u64>>,
    last_event: Vec<Option<u64>>,
    created: Vec<Option<u64>>,
    /// Earliest join seq per child: if that one respects the child's final
    /// last event, every later join of the same child does too.
    first_join: Vec<Option<u64>>,
    held: HashMap<LockId, u64>,
}

impl StreamValidator {
    /// Creates a validator for a trace with the given header dimensions.
    pub fn new(thread_count: u32, stack_count: usize) -> Self {
        let n = thread_count as usize;
        let mut created = vec![None; n];
        if n > ThreadId::MAIN.index() {
            created[ThreadId::MAIN.index()] = Some(0);
        }
        Self {
            thread_count: n,
            stack_count,
            index: 0,
            first_event: vec![None; n],
            last_event: vec![None; n],
            created,
            first_join: vec![None; n],
            held: HashMap::new(),
        }
    }

    /// Validates the next event. Mirrors the per-event pass of
    /// [`Trace::validate`]: an error here is exactly the error the batch
    /// validator reports for the same trace.
    pub fn push(&mut self, ev: &super::event::Event) -> Result<(), ValidateError> {
        let i = self.index;
        if ev.seq != i as u64 {
            return Err(ValidateError::NonDenseSeq {
                index: i,
                seq: ev.seq,
            });
        }
        if ev.tid.index() >= self.thread_count {
            return Err(ValidateError::TidOutOfRange {
                index: i,
                tid: ev.tid,
            });
        }
        if ev.stack as usize >= self.stack_count {
            return Err(ValidateError::UnknownStack {
                index: i,
                stack: ev.stack,
            });
        }
        self.first_event[ev.tid.index()].get_or_insert(ev.seq);
        self.last_event[ev.tid.index()] = Some(ev.seq);
        match ev.kind {
            EventKind::ThreadCreate { child } => {
                if child.index() >= self.thread_count {
                    return Err(ValidateError::UnknownChild { index: i, child });
                }
                if self.created[child.index()].is_some() {
                    return Err(ValidateError::DoubleCreate { child });
                }
                self.created[child.index()] = Some(ev.seq);
            }
            EventKind::ThreadJoin { child } => {
                if child.index() >= self.thread_count {
                    return Err(ValidateError::UnknownChild { index: i, child });
                }
                self.first_join[child.index()].get_or_insert(ev.seq);
            }
            EventKind::Acquire { lock, .. } => {
                *self.held.entry(lock).or_insert(0) += 1;
            }
            EventKind::Release { lock } => {
                let count = self.held.entry(lock).or_insert(0);
                if *count == 0 {
                    return Err(ValidateError::DanglingRelease { index: i, lock });
                }
                *count -= 1;
            }
            _ => {}
        }
        self.index += 1;
        Ok(())
    }

    /// Runs the end-of-stream checks, in the same order as the batch
    /// validator's second and third passes.
    pub fn finish(self) -> Result<(), ValidateError> {
        for tid in 0..self.thread_count {
            match (self.created[tid], self.first_event[tid]) {
                (None, Some(first)) => {
                    return Err(ValidateError::OrphanThread {
                        tid: ThreadId(tid as u32),
                        first,
                    })
                }
                (Some(c), Some(first)) if tid != ThreadId::MAIN.index() && first < c => {
                    return Err(ValidateError::EventBeforeCreation {
                        tid: ThreadId(tid as u32),
                        first,
                        created: c,
                    });
                }
                _ => {}
            }
        }
        // Batch pass 3 reports the first violating join in event order.
        // Per-child we kept only the earliest join, which is the earliest
        // possible violator for that child; the global first violator is
        // the minimum of those across children.
        let mut worst: Option<(u64, ThreadId, u64)> = None;
        for child in 0..self.thread_count {
            if let (Some(join_seq), Some(last)) = (self.first_join[child], self.last_event[child]) {
                if last > join_seq && worst.map(|(j, _, _)| join_seq < j).unwrap_or(true) {
                    worst = Some((join_seq, ThreadId(child as u32), last));
                }
            }
        }
        if let Some((join_seq, child, last)) = worst {
            return Err(ValidateError::JoinBeforeChildLastEvent {
                child,
                join_seq,
                last,
            });
        }
        Ok(())
    }

    /// Convenience: validate a whole trace through the incremental path.
    pub fn validate_trace(trace: &Trace) -> Result<(), ValidateError> {
        let mut v = Self::new(trace.thread_count, trace.stacks.stack_count());
        for ev in trace.events.iter() {
            v.push(&ev)?;
        }
        v.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrRange;
    use crate::trace::event::{Event, LockMode};
    use crate::trace::TraceBuilder;

    fn agree(trace: &Trace) {
        let batch = trace.validate();
        let stream = StreamValidator::validate_trace(trace);
        assert_eq!(
            batch, stream,
            "batch and streaming validators disagree on {trace:?}"
        );
    }

    #[test]
    fn agrees_on_handcrafted_cases() {
        // Valid trace with create/join/locks.
        let mut b = TraceBuilder::new();
        let s = b.intern_stack([]);
        b.push(
            ThreadId(0),
            s,
            EventKind::ThreadCreate { child: ThreadId(1) },
        );
        b.push(
            ThreadId(1),
            s,
            EventKind::Acquire {
                lock: LockId(7),
                mode: LockMode::Exclusive,
            },
        );
        b.push(ThreadId(1), s, EventKind::Release { lock: LockId(7) });
        b.push(ThreadId(0), s, EventKind::ThreadJoin { child: ThreadId(1) });
        agree(&b.finish());

        // Dangling release.
        let mut b = TraceBuilder::new();
        let s = b.intern_stack([]);
        b.push(ThreadId(0), s, EventKind::Release { lock: LockId(9) });
        agree(&b.finish());

        // Orphan thread.
        let mut b = TraceBuilder::new();
        let s = b.intern_stack([]);
        b.push(ThreadId(0), s, EventKind::Fence);
        let mut t = b.finish();
        t.thread_count = 3;
        t.events.push(Event {
            seq: 1,
            tid: ThreadId(2),
            stack: 0,
            kind: EventKind::Fence,
        });
        agree(&t);

        // Event before creation.
        let mut b = TraceBuilder::new();
        let s = b.intern_stack([]);
        b.push(ThreadId(1), s, EventKind::Fence);
        b.push(
            ThreadId(0),
            s,
            EventKind::ThreadCreate { child: ThreadId(1) },
        );
        agree(&b.finish());

        // Join before child's last event.
        let mut b = TraceBuilder::new();
        let s = b.intern_stack([]);
        b.push(
            ThreadId(0),
            s,
            EventKind::ThreadCreate { child: ThreadId(1) },
        );
        b.push(ThreadId(0), s, EventKind::ThreadJoin { child: ThreadId(1) });
        b.push(ThreadId(1), s, EventKind::Fence);
        agree(&b.finish());

        // Double create.
        let mut b = TraceBuilder::new();
        let s = b.intern_stack([]);
        b.push(
            ThreadId(0),
            s,
            EventKind::ThreadCreate { child: ThreadId(1) },
        );
        b.push(
            ThreadId(0),
            s,
            EventKind::ThreadCreate { child: ThreadId(1) },
        );
        agree(&b.finish());
    }

    #[test]
    fn agrees_on_randomized_event_soup() {
        // Deterministic xorshift fuzz: build many small semi-random traces
        // (some valid, most not) and require identical verdicts, including
        // the identical error value.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let threads = 1 + (next() % 4) as u32;
            let mut t = Trace::new();
            t.thread_count = threads;
            let stacks = 2;
            t.stacks.intern_frames(Vec::new());
            let fid = t
                .stacks
                .intern_frame(crate::trace::Frame::new("f", "x.rs", 1));
            t.stacks.intern_frames(vec![fid]);
            let len = (next() % 12) as usize;
            for i in 0..len {
                let tid = ThreadId((next() % u64::from(threads + 1)) as u32); // may overflow range
                let stack = (next() % (stacks + 1)) as u32; // may dangle
                let kind = match next() % 7 {
                    0 => EventKind::Fence,
                    1 => EventKind::Store {
                        range: AddrRange::new(0x1000, 8),
                        non_temporal: false,
                        atomic: false,
                    },
                    2 => EventKind::Acquire {
                        lock: LockId(next() % 3),
                        mode: LockMode::Exclusive,
                    },
                    3 => EventKind::Release {
                        lock: LockId(next() % 3),
                    },
                    4 => EventKind::ThreadCreate {
                        child: ThreadId((next() % u64::from(threads + 1)) as u32),
                    },
                    5 => EventKind::ThreadJoin {
                        child: ThreadId((next() % u64::from(threads + 1)) as u32),
                    },
                    _ => EventKind::Load {
                        range: AddrRange::new(0x1000, 8),
                        atomic: false,
                    },
                };
                // Occasionally break seq density too.
                let seq = if next() % 13 == 0 {
                    i as u64 + 1
                } else {
                    i as u64
                };
                t.events.push(Event {
                    seq,
                    tid,
                    stack,
                    kind,
                });
            }
            agree(&t);
        }
    }
}
