//! Trace event model.
//!
//! An execution of the target application under instrumentation produces a
//! totally-ordered stream of [`Event`]s — the observation order of the
//! instrumentation callbacks, exactly as Intel PIN serializes analysis
//! routines in the original tool. The analysis pipeline (§3.2) consumes only
//! this stream; it never re-executes the application.

use serde::{Deserialize, Serialize};

use crate::addr::{AddrRange, PmAddr};

/// Identifier of a thread in the traced execution.
///
/// Thread ids are dense and assigned in spawn order: the initial thread is
/// thread `0`. Vector clocks are indexed by `ThreadId`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The main thread of the traced program.
    pub const MAIN: ThreadId = ThreadId(0);

    /// The id as a vector-clock index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl core::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a synchronization object (mutex, rwlock, or a custom
/// primitive declared via the sync configuration).
///
/// In the original tool this is the runtime address of the lock object; the
/// runtime substrate does the same, so distinct locks never collide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LockId(pub u64);

impl core::fmt::Debug for LockId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// How a lock is held.
///
/// HawkSet instruments pthread mutexes and rwlocks. A common lock protects a
/// pair of critical sections unless *both* sides hold it in [`Shared`] mode
/// (two readers do not exclude each other).
///
/// [`Shared`]: LockMode::Shared
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum LockMode {
    /// Mutex or write side of a rwlock.
    Exclusive,
    /// Read side of a rwlock.
    Shared,
}

/// Interned identifier of a call stack (see [`StackTable`]).
///
/// [`StackTable`]: crate::trace::stack::StackTable
pub type StackId = u32;

/// A single event observed by the instrumentation layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Position in the global observation order (dense, starting at 0).
    pub seq: u64,
    /// Thread that issued the event.
    pub tid: ThreadId,
    /// Call stack at the event, interned in the trace's stack table.
    pub stack: StackId,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of an [`Event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A store to PM.
    Store {
        /// Bytes written.
        range: AddrRange,
        /// `true` for non-temporal stores, which bypass the cache and
        /// persist at the issuing thread's next fence without a flush.
        non_temporal: bool,
        /// `true` when the store is part of an atomic instruction
        /// (lock-prefixed or CAS). Atomicity does not change the persistence
        /// analysis but is surfaced in reports to aid manual triage.
        atomic: bool,
    },
    /// A load from PM.
    Load {
        /// Bytes read.
        range: AddrRange,
        /// `true` when the load is part of an atomic instruction.
        atomic: bool,
    },
    /// A cache-line write-back (`clwb`/`clflushopt`/`clflush`) of the line
    /// containing `addr`.
    Flush {
        /// Any byte address inside the flushed line.
        addr: PmAddr,
    },
    /// A store fence (`sfence`/`mfence`): all flushes and non-temporal
    /// stores previously issued by this thread are now persistent.
    Fence,
    /// A successful lock acquisition.
    Acquire {
        /// The lock object.
        lock: LockId,
        /// Exclusive (mutex / write) or shared (read) acquisition.
        mode: LockMode,
    },
    /// A lock release.
    Release {
        /// The lock object.
        lock: LockId,
    },
    /// The issuing thread created thread `child`.
    ThreadCreate {
        /// The newly spawned thread.
        child: ThreadId,
    },
    /// The issuing thread joined thread `child` (which has terminated).
    ThreadJoin {
        /// The joined thread.
        child: ThreadId,
    },
}

impl EventKind {
    /// Returns the accessed byte range for store and load events.
    pub fn range(&self) -> Option<AddrRange> {
        match self {
            EventKind::Store { range, .. } | EventKind::Load { range, .. } => Some(*range),
            _ => None,
        }
    }

    /// Returns `true` for store events (temporal or non-temporal).
    pub fn is_store(&self) -> bool {
        matches!(self, EventKind::Store { .. })
    }

    /// Returns `true` for load events.
    pub fn is_load(&self) -> bool {
        matches!(self, EventKind::Load { .. })
    }

    /// Returns `true` for events that touch PM data (stores and loads).
    pub fn is_access(&self) -> bool {
        self.is_store() || self.is_load()
    }

    /// A short mnemonic used in textual reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            EventKind::Store {
                non_temporal: true, ..
            } => "ntstore",
            EventKind::Store { atomic: true, .. } => "store.atomic",
            EventKind::Store { .. } => "store",
            EventKind::Load { atomic: true, .. } => "load.atomic",
            EventKind::Load { .. } => "load",
            EventKind::Flush { .. } => "flush",
            EventKind::Fence => "fence",
            EventKind::Acquire {
                mode: LockMode::Exclusive,
                ..
            } => "acquire",
            EventKind::Acquire {
                mode: LockMode::Shared,
                ..
            } => "acquire.rd",
            EventKind::Release { .. } => "release",
            EventKind::ThreadCreate { .. } => "create",
            EventKind::ThreadJoin { .. } => "join",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_only_on_accesses() {
        let st = EventKind::Store {
            range: AddrRange::new(0, 8),
            non_temporal: false,
            atomic: false,
        };
        let ld = EventKind::Load {
            range: AddrRange::new(8, 8),
            atomic: false,
        };
        assert_eq!(st.range(), Some(AddrRange::new(0, 8)));
        assert_eq!(ld.range(), Some(AddrRange::new(8, 8)));
        assert_eq!(EventKind::Fence.range(), None);
        assert_eq!(EventKind::Flush { addr: 0 }.range(), None);
    }

    #[test]
    fn access_predicates() {
        let st = EventKind::Store {
            range: AddrRange::new(0, 8),
            non_temporal: false,
            atomic: false,
        };
        assert!(st.is_store() && st.is_access() && !st.is_load());
        let ld = EventKind::Load {
            range: AddrRange::new(0, 8),
            atomic: false,
        };
        assert!(ld.is_load() && ld.is_access() && !ld.is_store());
        assert!(!EventKind::Fence.is_access());
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(
            EventKind::Store {
                range: AddrRange::new(0, 1),
                non_temporal: true,
                atomic: false
            }
            .mnemonic(),
            "ntstore"
        );
        assert_eq!(EventKind::Fence.mnemonic(), "fence");
        assert_eq!(
            EventKind::Acquire {
                lock: LockId(1),
                mode: LockMode::Shared
            }
            .mnemonic(),
            "acquire.rd"
        );
    }

    #[test]
    fn thread_id_display() {
        assert_eq!(ThreadId(3).to_string(), "T3");
        assert_eq!(ThreadId::MAIN.index(), 0);
    }
}
