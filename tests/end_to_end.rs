//! Cross-crate integration tests: runtime → trace → (codec) → analysis.

use std::sync::Arc;

use hawkset::core::analysis::Analyzer;
use hawkset::core::sync_config::SyncConfig;
use hawkset::core::trace::io;
use hawkset::runtime::{run_workers, CustomSpinLock, PmEnv, PmMutex, PmRwLock};

/// Figure 1c through the real runtime: detected regardless of interleaving.
#[test]
fn figure_1c_detected_end_to_end() {
    let env = PmEnv::new();
    let pool = env.map_pool("/mnt/pmem/e2e-fig1c", 4096);
    let main = env.main_thread();
    let x = pool.base();
    let lock = Arc::new(PmMutex::new(&env, ()));
    pool.store_u64(&main, x, 0);
    pool.persist(&main, x, 8);

    let (p, l) = (pool.clone(), Arc::clone(&lock));
    let t1 = env.spawn(&main, move |t| {
        let g = l.lock(t);
        p.store_u64(t, x, 42);
        drop(g);
        p.persist(t, x, 8);
    });
    let (p, l) = (pool.clone(), Arc::clone(&lock));
    let t2 = env.spawn(&main, move |t| {
        let _g = l.lock(t);
        p.load_u64(t, x)
    });
    t1.join(&main);
    t2.join(&main);

    let trace = env.finish();
    assert!(trace.validate().is_ok());
    let report = Analyzer::default().run(&trace);
    assert_eq!(report.races.len(), 1);
    assert!(report.races[0].effective_lockset_empty);
}

/// The same program with the persist inside the critical section and the
/// reader under the lock is clean.
#[test]
fn correctly_synchronized_program_is_clean() {
    let env = PmEnv::new();
    let pool = env.map_pool("/mnt/pmem/e2e-clean", 4096);
    let main = env.main_thread();
    let x = pool.base();
    let lock = Arc::new(PmMutex::new(&env, ()));
    pool.store_u64(&main, x, 0);
    pool.persist(&main, x, 8);

    let p = pool.clone();
    let l = Arc::clone(&lock);
    run_workers(&env, &main, 4, move |i, t| {
        for _ in 0..20 {
            let _g = l.lock(t);
            if i % 2 == 0 {
                p.store_u64(t, x, i as u64);
                p.persist(t, x, 8);
            } else {
                p.load_u64(t, x);
            }
        }
    });
    let report = Analyzer::default().run(&env.finish());
    assert!(
        report.is_clean(),
        "locked store+persist vs locked load cannot race: {:?}",
        report.races.iter().map(|r| r.summary()).collect::<Vec<_>>()
    );
}

/// rwlock semantics: two shared holders do not exclude each other, so a
/// reader-locked load still races with a writer whose persist escaped the
/// write critical section.
#[test]
fn rwlock_modes_are_understood() {
    let env = PmEnv::new();
    let pool = env.map_pool("/mnt/pmem/e2e-rw", 4096);
    let main = env.main_thread();
    let x = pool.base();
    let rw = Arc::new(PmRwLock::new(&env, ()));
    pool.store_u64(&main, x, 0);
    pool.persist(&main, x, 8);

    // Writer: store under the write lock, persist inside — proper.
    let (p, l) = (pool.clone(), Arc::clone(&rw));
    let w = env.spawn(&main, move |t| {
        let _g = l.write(t);
        p.store_u64(t, x, 1);
        p.persist(t, x, 8);
    });
    // Reader: load under the read lock.
    let (p, l) = (pool.clone(), Arc::clone(&rw));
    let r = env.spawn(&main, move |t| {
        let _g = l.read(t);
        p.load_u64(t, x)
    });
    w.join(&main);
    r.join(&main);
    let report = Analyzer::default().run(&env.finish());
    assert!(
        report.is_clean(),
        "write-lock store+persist vs read-lock load is protected: {:?}",
        report.races.iter().map(|r| r.summary()).collect::<Vec<_>>()
    );
}

/// Traces survive the binary codec with identical analysis results.
#[test]
fn codec_roundtrip_preserves_analysis() {
    let env = PmEnv::new();
    let pool = env.map_pool("/mnt/pmem/e2e-codec", 1 << 16);
    let main = env.main_thread();
    let base = pool.base();
    let p = pool.clone();
    run_workers(&env, &main, 4, move |i, t| {
        for k in 0..40u64 {
            let addr = base + ((i as u64 * 41 + k) % 64) * 8;
            if k % 3 == 0 {
                p.store_u64(t, addr, k);
                if k % 6 == 0 {
                    p.persist(t, addr, 8);
                }
            } else {
                p.load_u64(t, addr);
            }
        }
    });
    let trace = env.finish();
    let decoded = io::decode(io::encode(&trace).as_ref()).expect("roundtrip");
    let a = Analyzer::default().run(&trace);
    let b = Analyzer::default().run(&decoded);
    assert_eq!(a.races.len(), b.races.len());
    for (ra, rb) in a.races.iter().zip(&b.races) {
        assert_eq!(ra.store_site_str(), rb.store_site_str());
        assert_eq!(ra.load_site_str(), rb.load_site_str());
        assert_eq!(ra.pair_count, rb.pair_count);
    }
    assert_eq!(
        a.stats.pairing.candidate_pairs,
        b.stats.pairing.candidate_pairs
    );
}

/// §5.5 end to end: an unconfigured custom primitive is invisible; the
/// same run with the config is clean.
#[test]
fn sync_config_gates_custom_primitives() {
    let run = |with_cfg: bool| {
        let env = PmEnv::new();
        if with_cfg {
            env.add_sync_config(
                SyncConfig::from_json(
                    r#"{"primitives": [
                        {"function": "l", "kind": "acquire", "mode": "Exclusive"},
                        {"function": "u", "kind": "release"}
                    ]}"#,
                )
                .unwrap(),
            );
        }
        let pool = env.map_pool("/mnt/pmem/e2e-cfg", 4096);
        let main = env.main_thread();
        let x = pool.base();
        pool.store_u64(&main, x, 0);
        pool.persist(&main, x, 8);
        let lock = Arc::new(CustomSpinLock::new(&env, "l", "u"));
        let p = pool.clone();
        run_workers(&env, &main, 3, move |i, t| {
            for _ in 0..10 {
                lock.lock(t);
                if i == 0 {
                    p.store_u64(t, x, 7);
                    p.persist(t, x, 8);
                } else {
                    p.load_u64(t, x);
                }
                lock.unlock(t);
            }
        });
        Analyzer::default().run(&env.finish()).races.len()
    };
    assert!(run(false) > 0);
    assert_eq!(run(true), 0);
}

/// Crash-image semantics across the runtime: only flushed+fenced bytes
/// survive; `map_pool_from_image` reopens the state for recovery.
#[test]
fn crash_image_recovery_cycle() {
    let env = PmEnv::new();
    let pool = env.map_pool("/mnt/pmem/e2e-crash", 4096);
    let main = env.main_thread();
    let base = pool.base();
    pool.store_u64(&main, base, 0xAAAA);
    pool.persist(&main, base, 8);
    pool.store_u64(&main, base + 8, 0xBBBB); // never persisted
    pool.store_u64(&main, base + 64, 0xCCCC);
    pool.flush(&main, base + 64); // flushed but never fenced

    let image = pool.crash_image();
    let env2 = PmEnv::new();
    let recovered = env2.map_pool_from_image("/mnt/pmem/e2e-crash", image);
    let t = env2.main_thread();
    assert_eq!(recovered.load_u64(&t, recovered.base()), 0xAAAA);
    assert_eq!(
        recovered.load_u64(&t, recovered.base() + 8),
        0,
        "unpersisted store lost"
    );
    assert_eq!(
        recovered.load_u64(&t, recovered.base() + 64),
        0,
        "unfenced flush lost"
    );
}

/// The analysis is deterministic: analyzing the same trace twice yields
/// identical reports.
#[test]
fn analysis_is_deterministic() {
    let app = hawkset::apps::fastfair::FastFairApp;
    use hawkset::apps::Application;
    let wl = app.default_workload(300, 5);
    let trace = app.execute(&wl);
    let a = Analyzer::default().run(&trace);
    let b = Analyzer::default().run(&trace);
    assert_eq!(a.races.len(), b.races.len());
    assert_eq!(a.stats.pairing, b.stats.pairing);
}
