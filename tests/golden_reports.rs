//! Golden-trace regression corpus: a handful of small, fully
//! deterministic traces committed under `tests/golden/` together with the
//! exact JSON report (including the observability metrics) each must
//! produce. Any change to decoding, simulation, pairing, report layout or
//! metric accounting that alters an emitted byte fails here first.
//!
//! Each case commits two files:
//!
//! * `<name>.hwkt` — the encoded trace. The test re-builds the trace from
//!   its in-code builder and asserts the committed bytes match, so the
//!   corpus can never silently drift from its documented construction.
//! * `<name>.expected.json` — the report JSON with wall-clock masked
//!   (`stats.duration` zeroed, `metrics.timing` defaulted). Every case is
//!   analyzed at 1, 2 and 8 worker threads and must match byte-for-byte
//!   at all three — the determinism contract, pinned.
//!
//! The `*_fixes` cases run with `suggest_fixes` on and pin the optional
//! `fixes` section — every emitted `"validated": true` is a replay-proven
//! repair, byte-stable at all three thread counts. Their negative twins
//! are pinned too: with the flag off (every other case) the key is
//! *absent*, so the flag-off envelope stays byte-identical to the
//! pre-repair corpus. The one special case is `app_wipe_fixes.hwkt`: real
//! application executions interleave live threads and are not
//! byte-reproducible, so that trace was captured once and is analyzed
//! from its committed bytes forever — delete the file and run with
//! `UPDATE_GOLDEN=1` to re-capture it.
//!
//! The crashtest case pins `CampaignMetrics` JSON from a hand-built round
//! record instead of a live campaign: crash-point placement depends on the
//! measured op horizon, which varies with concurrent interleaving, so a
//! live campaign's metrics are not byte-stable by design.
//!
//! Regenerating after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! git diff tests/golden/   # review every changed byte, then commit
//! ```
//!
//! CI refuses to run with `UPDATE_GOLDEN` set (see `scripts/ci.sh`), so
//! the suite can only ever *check* there.

use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use hawkset::baseline::{
    CampaignMetrics, CrashCampaignConfig, CrashCampaignResult, RoundOutcome, RoundRecord,
};
use hawkset::core::addr::AddrRange;
use hawkset::core::analysis::{
    AnalysisBudget, AnalysisConfig, AnalysisReport, Analyzer, Strictness,
};
use hawkset::core::trace::io;
use hawkset::core::trace::{
    EventKind, Frame, LockId, LockMode, PmRegion, ThreadId, Trace, TraceBuilder,
};

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden"))
}

fn update_golden() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some()
}

/// Reads a committed golden file, or writes it under `UPDATE_GOLDEN=1`.
fn check_or_update(name: &str, actual: &[u8]) {
    let path = golden_dir().join(name);
    if update_golden() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden_reports`",
            path.display()
        )
    });
    if committed != actual {
        // Byte-for-byte is the contract; show a readable diff for JSON.
        let want = String::from_utf8_lossy(&committed);
        let got = String::from_utf8_lossy(actual);
        panic!(
            "golden mismatch for {name}.\n--- committed\n{want}\n--- produced\n{got}\n\
             If the change is intentional, regenerate with \
             `UPDATE_GOLDEN=1 cargo test --test golden_reports` and review the diff."
        );
    }
}

/// Masks the wall-clock-dependent fields and serializes: the only fields
/// allowed to differ between runs or thread counts are `stats.duration`
/// and the `metrics.timing` subobject.
fn masked_json(mut report: AnalysisReport) -> String {
    report.stats.duration = Duration::ZERO;
    report.metrics = report.metrics.map(|m| m.masked());
    report.to_json()
}

/// The paper's Figure-1c race (bug flavor #1): the store is persisted, but
/// only *after* the lock release, so the persist escapes the critical
/// section and a concurrent reader can observe unpersisted data.
fn fig1c_trace() -> Trace {
    let mut b = TraceBuilder::new();
    b.add_region(PmRegion {
        base: 0x1000,
        len: 4096,
        path: "/mnt/pmem/fig1c".into(),
    });
    let x = AddrRange::new(0x1000, 8);
    let a = LockId(0xa);
    let st = b.intern_stack([
        Frame::new("writer", "fig1c.c", 12),
        Frame::new("main", "fig1c.c", 40),
    ]);
    let ld = b.intern_stack([
        Frame::new("reader", "fig1c.c", 25),
        Frame::new("main", "fig1c.c", 41),
    ]);
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadCreate { child: ThreadId(1) },
    );
    b.push(
        ThreadId(0),
        st,
        EventKind::Acquire {
            lock: a,
            mode: LockMode::Exclusive,
        },
    );
    b.push(
        ThreadId(0),
        st,
        EventKind::Store {
            range: x,
            non_temporal: false,
            atomic: false,
        },
    );
    b.push(ThreadId(0), st, EventKind::Release { lock: a });
    b.push(
        ThreadId(1),
        ld,
        EventKind::Acquire {
            lock: a,
            mode: LockMode::Exclusive,
        },
    );
    b.push(
        ThreadId(1),
        ld,
        EventKind::Load {
            range: x,
            atomic: false,
        },
    );
    b.push(ThreadId(1), ld, EventKind::Release { lock: a });
    b.push(ThreadId(0), st, EventKind::Flush { addr: 0x1000 });
    b.push(ThreadId(0), st, EventKind::Fence);
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadJoin { child: ThreadId(1) },
    );
    b.finish()
}

/// The corrected Figure-1c program: persist (flush + fence) *inside* the
/// critical section, before the release. No race exists.
fn race_free_trace() -> Trace {
    let mut b = TraceBuilder::new();
    b.add_region(PmRegion {
        base: 0x1000,
        len: 4096,
        path: "/mnt/pmem/fixed".into(),
    });
    let x = AddrRange::new(0x1000, 8);
    let a = LockId(0xa);
    let st = b.intern_stack([Frame::new("writer", "fixed.c", 12)]);
    let ld = b.intern_stack([Frame::new("reader", "fixed.c", 25)]);
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadCreate { child: ThreadId(1) },
    );
    b.push(
        ThreadId(0),
        st,
        EventKind::Acquire {
            lock: a,
            mode: LockMode::Exclusive,
        },
    );
    b.push(
        ThreadId(0),
        st,
        EventKind::Store {
            range: x,
            non_temporal: false,
            atomic: false,
        },
    );
    b.push(ThreadId(0), st, EventKind::Flush { addr: 0x1000 });
    b.push(ThreadId(0), st, EventKind::Fence);
    b.push(ThreadId(0), st, EventKind::Release { lock: a });
    b.push(
        ThreadId(1),
        ld,
        EventKind::Acquire {
            lock: a,
            mode: LockMode::Exclusive,
        },
    );
    b.push(
        ThreadId(1),
        ld,
        EventKind::Load {
            range: x,
            atomic: false,
        },
    );
    b.push(ThreadId(1), ld, EventKind::Release { lock: a });
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadJoin { child: ThreadId(1) },
    );
    b.finish()
}

/// Bug flavor #2: the store is *never* persisted — no flush anywhere — so
/// the window stays open to the end of the trace and the concurrent
/// locked reader races with it.
fn unpersisted_trace() -> Trace {
    let mut b = TraceBuilder::new();
    b.add_region(PmRegion {
        base: 0x2000,
        len: 4096,
        path: "/mnt/pmem/unpersisted".into(),
    });
    let y = AddrRange::new(0x2040, 16);
    let a = LockId(0xb);
    let st = b.intern_stack([Frame::new("insert", "tree.c", 88)]);
    let ld = b.intern_stack([Frame::new("lookup", "tree.c", 130)]);
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadCreate { child: ThreadId(1) },
    );
    b.push(
        ThreadId(0),
        st,
        EventKind::Acquire {
            lock: a,
            mode: LockMode::Exclusive,
        },
    );
    b.push(
        ThreadId(0),
        st,
        EventKind::Store {
            range: y,
            non_temporal: false,
            atomic: false,
        },
    );
    b.push(ThreadId(0), st, EventKind::Release { lock: a });
    b.push(
        ThreadId(1),
        ld,
        EventKind::Acquire {
            lock: a,
            mode: LockMode::Exclusive,
        },
    );
    b.push(
        ThreadId(1),
        ld,
        EventKind::Load {
            range: y,
            atomic: false,
        },
    );
    b.push(ThreadId(1), ld, EventKind::Release { lock: a });
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadJoin { child: ThreadId(1) },
    );
    b.finish()
}

/// Unsynchronized store/load pairs spread over many cache lines (and so
/// many pairing shards). Analyzed with a candidate-pair budget smaller
/// than the pair count, this is the committed example of a truncated
/// report with a non-zero `pairs_budget_dropped`.
fn budget_trace() -> Trace {
    let mut b = TraceBuilder::new();
    b.add_region(PmRegion {
        base: 0x1000,
        len: 1 << 16,
        path: "/mnt/pmem/budget".into(),
    });
    let st = b.intern_stack([Frame::new("producer", "budget.c", 7)]);
    let ld = b.intern_stack([Frame::new("consumer", "budget.c", 19)]);
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadCreate { child: ThreadId(1) },
    );
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadCreate { child: ThreadId(2) },
    );
    for i in 0..24u64 {
        b.push(
            ThreadId(1),
            st,
            EventKind::Store {
                range: AddrRange::new(0x1000 + i * 256, 8),
                non_temporal: false,
                atomic: false,
            },
        );
    }
    for i in 0..24u64 {
        b.push(
            ThreadId(2),
            ld,
            EventKind::Load {
                range: AddrRange::new(0x1000 + i * 256, 8),
                atomic: false,
            },
        );
    }
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadJoin { child: ThreadId(1) },
    );
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadJoin { child: ThreadId(2) },
    );
    b.finish()
}

/// A long run whose persisted windows pile up: each round stores to a
/// fresh cache line, persists it (flush + fence) and is read by the other
/// thread, so the closed-window list grows linearly. Analyzed under a
/// small [`AnalysisBudget::memory_budget`] this is the committed example
/// of live-state eviction (`coverage.reason = memory_budget`).
fn window_heavy_trace() -> Trace {
    let mut b = TraceBuilder::new();
    b.add_region(PmRegion {
        base: 0x1_0000,
        len: 1 << 20,
        path: "/mnt/pmem/heavy".into(),
    });
    let st = b.intern_stack([Frame::new("append", "log.c", 51)]);
    let ld = b.intern_stack([Frame::new("scan", "log.c", 97)]);
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadCreate { child: ThreadId(1) },
    );
    for i in 0..200u64 {
        let x = AddrRange::new(0x1_0000 + i * 0x40, 8);
        b.push(
            ThreadId(0),
            st,
            EventKind::Store {
                range: x,
                non_temporal: false,
                atomic: false,
            },
        );
        b.push(ThreadId(0), st, EventKind::Flush { addr: x.start });
        b.push(ThreadId(0), st, EventKind::Fence);
        b.push(
            ThreadId(1),
            ld,
            EventKind::Load {
                range: x,
                atomic: false,
            },
        );
    }
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadJoin { child: ThreadId(1) },
    );
    b.finish()
}

/// The committed WIPE capture for the fixes-bearing application case.
///
/// Application traces cannot be rebuilt byte-identically — their worker
/// threads interleave for real — so unlike every other `.hwkt` this one
/// is not re-derived from its builder: the committed bytes *are* the
/// case. Missing file + `UPDATE_GOLDEN=1` captures a fresh execution
/// (20-op seed-42 default workload); any other missing-file state is an
/// error, and `UPDATE_GOLDEN=1` alone never rewrites a present capture.
fn app_capture_bytes() -> Vec<u8> {
    let path = golden_dir().join("app_wipe_fixes.hwkt");
    match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(_) if update_golden() => {
            let app = hawkset::apps::all_apps()
                .into_iter()
                .find(|a| a.name() == "WIPE")
                .expect("WIPE app registered");
            let wl = app.default_workload(20, 42);
            let bytes = io::encode(&app.execute(&wl)).to_vec();
            std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
            std::fs::write(&path, &bytes)
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            bytes
        }
        Err(e) => panic!(
            "missing committed app capture {} ({e}); delete+UPDATE_GOLDEN=1 re-captures",
            path.display()
        ),
    }
}

/// Bytes dropped from the tail of the Figure-1c encoding for the salvage
/// case. The final event (the 5-byte `ThreadJoin`) loses its last bytes,
/// so lossy decoding recovers every event but the join.
const SALVAGE_TRUNCATE: usize = 3;

struct AnalysisCase {
    name: &'static str,
    bytes: Vec<u8>,
    cfg: AnalysisConfig,
    /// Load through `io::decode_lossy` and fold the salvage loss counters
    /// into the metrics, as `hawkset analyze --salvage` does.
    salvage: bool,
}

fn analysis_cases() -> Vec<AnalysisCase> {
    let fig1c = io::encode(&fig1c_trace()).to_vec();
    let mut corrupt = fig1c.clone();
    corrupt.truncate(corrupt.len() - SALVAGE_TRUNCATE);
    vec![
        AnalysisCase {
            name: "race_free",
            bytes: io::encode(&race_free_trace()).to_vec(),
            cfg: AnalysisConfig::default(),
            salvage: false,
        },
        AnalysisCase {
            name: "racy_fig1c",
            bytes: fig1c,
            cfg: AnalysisConfig::default(),
            salvage: false,
        },
        AnalysisCase {
            name: "racy_unpersisted",
            bytes: io::encode(&unpersisted_trace()).to_vec(),
            cfg: AnalysisConfig::default(),
            salvage: false,
        },
        // Repair corpus: the same Figure-1c bytes analyzed with
        // `suggest_fixes` on pin the `fixes` section — the flush+fence
        // repair for the escaped persist, replay-validated — while the
        // flag-off `racy_fig1c` twin above pins the key's absence. The
        // WIPE capture pins fixes against a real application trace.
        AnalysisCase {
            name: "racy_fig1c_fixes",
            bytes: io::encode(&fig1c_trace()).to_vec(),
            cfg: AnalysisConfig {
                suggest_fixes: true,
                ..Default::default()
            },
            salvage: false,
        },
        AnalysisCase {
            name: "app_wipe_fixes",
            bytes: app_capture_bytes(),
            cfg: AnalysisConfig {
                suggest_fixes: true,
                ..Default::default()
            },
            salvage: false,
        },
        AnalysisCase {
            name: "salvage_corrupt",
            bytes: corrupt,
            cfg: AnalysisConfig {
                strictness: Strictness::Lenient,
                ..Default::default()
            },
            salvage: true,
        },
        AnalysisCase {
            name: "budget_truncated",
            bytes: io::encode(&budget_trace()).to_vec(),
            cfg: AnalysisConfig {
                budget: AnalysisBudget {
                    max_candidate_pairs: Some(6),
                    ..Default::default()
                },
                ..Default::default()
            },
            salvage: false,
        },
        // Degraded-mode corpus: one committed example of every coverage
        // reason the analyzer can emit, so a regression in any degraded
        // path changes a pinned byte.
        AnalysisCase {
            // The memory budget is far below the live-state footprint of
            // 200 persisted windows, so the simulation evicts the coldest
            // and the report degrades with `reason = memory_budget`.
            name: "memory_budget_evicted",
            bytes: io::encode(&window_heavy_trace()).to_vec(),
            cfg: AnalysisConfig {
                budget: AnalysisBudget {
                    memory_budget: Some(4 * 1024),
                    ..Default::default()
                },
                ..Default::default()
            },
            salvage: false,
        },
        AnalysisCase {
            // A zero stage timeout pre-trips the watchdog, so every shard
            // stops before its first window group — the deterministic
            // image of a stalled pairing stage.
            name: "stage_stalled",
            bytes: io::encode(&fig1c_trace()).to_vec(),
            cfg: AnalysisConfig {
                budget: AnalysisBudget {
                    stage_timeout: Some(Duration::ZERO),
                    ..Default::default()
                },
                ..Default::default()
            },
            salvage: false,
        },
        AnalysisCase {
            // A pre-set interrupt flag is the deterministic image of
            // SIGINT: pairing stops before its first window group and the
            // partial report carries `reason = interrupted`.
            name: "interrupted",
            bytes: io::encode(&fig1c_trace()).to_vec(),
            cfg: AnalysisConfig {
                interrupt: Some(Arc::new(AtomicBool::new(true))),
                ..Default::default()
            },
            salvage: false,
        },
    ]
}

/// Analyzes a case's committed bytes at the given thread count and
/// returns the masked report JSON.
fn run_case(case: &AnalysisCase, threads: usize) -> String {
    let analyzer = Analyzer::new(case.cfg.clone()).threads(threads);
    if case.salvage {
        let salvage = io::decode_lossy(&case.bytes).expect("salvage case stays decodable");
        assert!(
            salvage.dropped_events > 0,
            "{}: truncation must actually drop at least one event",
            case.name
        );
        let mut report = analyzer
            .try_run(&salvage.trace)
            .expect("lenient analysis never rejects");
        if let Some(m) = report.metrics.as_mut() {
            salvage.record_metrics(m);
        }
        masked_json(report)
    } else {
        let trace = io::decode(&case.bytes).expect("golden trace decodes");
        let report = analyzer.try_run(&trace).expect("golden trace analyzes");
        masked_json(report)
    }
}

#[test]
fn golden_traces_match_their_builders() {
    for case in analysis_cases() {
        check_or_update(&format!("{}.hwkt", case.name), &case.bytes);
    }
}

#[test]
fn golden_reports_are_pinned_at_every_thread_count() {
    for case in analysis_cases() {
        let reference = run_case(&case, 1);
        check_or_update(
            &format!("{}.expected.json", case.name),
            reference.as_bytes(),
        );
        for threads in [2usize, 8] {
            let got = run_case(&case, threads);
            assert_eq!(
                got, reference,
                "{}: masked report diverged at {} threads",
                case.name, threads
            );
        }
    }
}

/// Sanity on top of the byte pin: the budget case really does drop pairs,
/// the racy cases really do race, and every snapshot obeys the
/// conservation laws.
#[test]
fn golden_cases_exercise_what_they_claim() {
    for case in analysis_cases() {
        let json = run_case(&case, 1);
        // Negative coverage for the repair section: with `suggest_fixes`
        // off the `fixes` key must be absent — the flag-off envelope is
        // byte-identical to the pre-repair schema.
        if !case.cfg.suggest_fixes {
            assert!(
                !json.contains("\"fixes\""),
                "{}: fixes key emitted without --suggest-fixes",
                case.name
            );
        }
        match case.name {
            "race_free" => assert!(json.contains("\"races\": []"), "race_free found races"),
            "budget_truncated" => assert!(
                json.contains("\"truncated\": true"),
                "budget case was not truncated"
            ),
            "memory_budget_evicted" => assert!(
                json.contains("\"reason\": \"memory_budget\""),
                "memory-budget case did not degrade with reason = memory_budget"
            ),
            "stage_stalled" => assert!(
                json.contains("\"reason\": \"stage_stalled\""),
                "stalled case did not degrade with reason = stage_stalled"
            ),
            "interrupted" => assert!(
                json.contains("\"reason\": \"interrupted\""),
                "interrupted case did not degrade with reason = interrupted"
            ),
            "racy_fig1c_fixes" | "app_wipe_fixes" => {
                assert!(
                    json.contains("\"fixes\""),
                    "{}: no fixes section emitted",
                    case.name
                );
                assert!(
                    json.contains("\"validated\": true"),
                    "{}: no replay-validated fix in the pinned corpus",
                    case.name
                );
            }
            _ => {}
        }
        // Re-run through the API to inspect the typed snapshot.
        let trace = if case.salvage {
            io::decode_lossy(&case.bytes).expect("decodable").trace
        } else {
            io::decode(&case.bytes).expect("decodable")
        };
        let analyzer = Analyzer::new(case.cfg.clone()).threads(1);
        let report = analyzer.try_run(&trace).expect("analyzes");
        let metrics = report.metrics.expect("metrics attached");
        assert_eq!(
            metrics.conservation_violations(),
            Vec::<String>::new(),
            "{}: conservation law violated",
            case.name
        );
        match case.name {
            "racy_fig1c" | "racy_unpersisted" | "racy_fig1c_fixes" | "app_wipe_fixes" => {
                assert!(!report.races.is_empty(), "{} found no race", case.name)
            }
            // A clean trace never grows a fixes section, even with the
            // flag on: nothing to repair means no key, not an empty list.
            "race_free" => {
                let fixed = Analyzer::new(AnalysisConfig {
                    suggest_fixes: true,
                    ..Default::default()
                })
                .threads(1)
                .try_run(&trace)
                .expect("analyzes");
                assert!(
                    fixed.fixes.is_none(),
                    "race_free emitted a fixes section with the flag on"
                );
            }
            "budget_truncated" => assert!(
                metrics.pairing.pairs_budget_dropped > 0,
                "budget case dropped no pairs"
            ),
            "memory_budget_evicted" => assert!(
                report.stats.sim.memory_budget_hit,
                "memory-budget case never hit the budget"
            ),
            _ => {}
        }
    }
}

/// The streaming tentpole contract on the whole committed corpus: feeding
/// a case's bytes through the chunked [`Analyzer::try_run_stream`] path
/// produces the *same masked JSON* as the in-memory decode-then-analyze
/// path, at every pinned thread count.
///
/// The `interrupted` case is excluded by design: a pre-set interrupt flag
/// stops streaming *ingest* before the first chunk (that is the point of
/// cooperative cancellation), while the batch path has the whole trace in
/// hand before pairing sees the flag — the two paths legitimately cover
/// different prefixes.
#[test]
fn golden_cases_stream_bit_identical_to_batch() {
    for case in analysis_cases() {
        if case.name == "interrupted" {
            continue;
        }
        for threads in [1usize, 2, 8] {
            let batch = run_case(&case, threads);
            let analyzer = Analyzer::new(case.cfg.clone()).threads(threads);
            let mut streamed = analyzer
                .try_run_stream(std::io::Cursor::new(case.bytes.clone()))
                .unwrap_or_else(|e| panic!("{}: streaming failed: {e}", case.name));
            // The streaming path has no trace in hand when pairing ends,
            // so fixes ride a second pass — exactly what `hawkset analyze`
            // and the serve worker do — and must land on the same bytes.
            if case.cfg.suggest_fixes {
                let trace = io::decode(&case.bytes).expect("decodable");
                analyzer.attach_fixes(&trace, &mut streamed);
            }
            assert_eq!(
                masked_json(streamed),
                batch,
                "{}: streamed report diverged from batch at {} threads",
                case.name,
                threads
            );
        }
    }
}

/// The crashtest golden: `CampaignMetrics` derived from a canonical
/// hand-built two-round record (one clean round, one round that timed out
/// twice before being recorded), with wall-clock timing masked.
#[test]
fn golden_campaign_metrics_are_pinned() {
    let cfg = CrashCampaignConfig {
        rounds: 2,
        crash_points: 3,
        main_ops: 60,
        seed: 5,
        max_retries: 2,
        retry_backoff: Duration::from_millis(50),
        max_backoff: Duration::from_millis(200),
        ..Default::default()
    };
    let result = CrashCampaignResult {
        records: vec![
            RoundRecord {
                round: 0,
                outcome: RoundOutcome::Ok,
                retries: 0,
                crash_points: vec![7, 21, 40],
                op_horizon: 60,
                images_captured: 3,
                attributed: Vec::new(),
                duration_ms: 12,
                coverage: Vec::new(),
                plan: None,
            },
            RoundRecord {
                round: 1,
                outcome: RoundOutcome::TimedOut,
                retries: 2,
                crash_points: vec![15],
                op_horizon: 60,
                images_captured: 1,
                attributed: Vec::new(),
                duration_ms: 61,
                coverage: Vec::new(),
                plan: None,
            },
        ],
        executed_this_run: 2,
        resumed_from_checkpoint: false,
        duration: Duration::from_millis(90),
    };
    let mut metrics = result.metrics(&cfg);
    assert!(metrics.conservation_violations().is_empty());
    // Mask wall-clock; keep backoff_ms_total, which is reconstructed from
    // the deterministic capped-doubling schedule (50 + 100 = 150).
    metrics.timing.total_ms = 0.0;
    metrics.timing.round_ms_total = 0;
    assert_eq!(metrics.timing.backoff_ms_total, 150);
    let json = metrics.to_json();
    check_or_update("crashtest_round.expected.json", json.as_bytes());
    // And the pin is machine-readable: it parses back to the same value.
    let back: CampaignMetrics = serde_json::from_str(&json).expect("golden JSON parses");
    assert_eq!(back, metrics);
}
