//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`from_slice`], the [`Value`] type
//! (re-exported from the vendored `serde`), and an [`Error`] type. The
//! parser is a complete JSON reader (strings with escapes and surrogate
//! pairs, numbers, nesting); the printer escapes control characters and
//! renders integers exactly.

pub use serde::{Map, Number, Value};

/// A JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::deserialize_value(&value)?)
}

/// Deserializes a `T` from JSON bytes (must be UTF-8).
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Converts a [`Value`] into any deserializable type.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::deserialize_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => match n {
            Number::PosInt(u) => out.push_str(&u.to_string()),
            Number::NegInt(i) => out.push_str(&i.to_string()),
            Number::Float(f) => {
                if f.is_finite() {
                    // Match serde_json: floats always show a decimal point.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&f.to_string());
                    }
                } else {
                    out.push_str("null");
                }
            }
        },
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    // Append any pending raw run (must be valid UTF-8 since
                    // the input is a &str).
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a following \uXXXX.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                    return self.string_tail(out);
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Continues reading a string after the first escape (`out` holds what
    /// has been decoded so far).
    fn string_tail(&mut self, mut out: String) -> Result<String, Error> {
        let mut start = self.pos;
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                    start = self.pos;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::Number(Number::Float(f)))
        } else if neg {
            let i: i64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::Number(Number::NegInt(i)))
        } else {
            let u: u64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::Number(Number::PosInt(u)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let src = r#"{"a": [1, -2, 3.5, true, null], "b": {"nested": "va\"l\nue"}, "big": 18446744073709551614}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2i64);
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["a"][3], true);
        assert!(v["a"][4].is_null());
        assert_eq!(v["b"]["nested"], "va\"l\nue");
        assert_eq!(v["big"], 18446744073709551614u64);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string(&Value::Object(Map::new())).unwrap(), "{}");
    }
}
