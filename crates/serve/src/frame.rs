//! Length-prefixed framing for trace submission.
//!
//! The wire unit is a frame: one type byte, a little-endian `u32` payload
//! length, then the payload. A submission is `SUBMIT(tenant)` followed by
//! any number of `DATA(bytes)` frames carrying the raw `.hwkt` stream and
//! one `END`. The daemon replies `ACCEPTED(job id)` or `SHED(reason)` to
//! the `SUBMIT` — shedding is always an explicit frame, never a silent
//! drop or a closed socket — and, once the job ran, `RESULT(status, json)`
//! or `ERROR(message)`.
//!
//! `DATA` payloads are exactly the bytes a `hawkset analyze` invocation
//! would read from the trace file: the daemon stitches them back into a
//! byte stream and feeds it to the same
//! [`StreamDecoder`](hawkset_core::trace::stream::StreamDecoder)-backed
//! streaming pipeline, so framing adds no second decode path.

use std::io::{self, Read, Write};

/// Frame type tags. Client→server tags are low, server→client high.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client: start a submission; payload = UTF-8 tenant name.
    Submit = 0x01,
    /// Client: a chunk of the raw trace byte stream.
    Data = 0x02,
    /// Client: the submission is complete.
    End = 0x03,
    /// Client: liveness probe; the server answers [`FrameKind::Pong`].
    Ping = 0x04,
    /// Server: submission admitted; payload = ASCII job id.
    Accepted = 0x81,
    /// Server: submission refused under load or drain (the 429 of the
    /// protocol); payload = UTF-8 reason. The connection stays usable.
    Shed = 0x82,
    /// Server: the job finished; payload = one status byte (0 = clean,
    /// 1 = races found) followed by the schema-v1 report JSON.
    Result = 0x83,
    /// Server: the job or the protocol failed; payload = UTF-8 message.
    Error = 0x84,
    /// Server: answer to [`FrameKind::Ping`].
    Pong = 0x85,
}

impl FrameKind {
    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0x01 => FrameKind::Submit,
            0x02 => FrameKind::Data,
            0x03 => FrameKind::End,
            0x04 => FrameKind::Ping,
            0x81 => FrameKind::Accepted,
            0x82 => FrameKind::Shed,
            0x83 => FrameKind::Result,
            0x84 => FrameKind::Error,
            0x85 => FrameKind::Pong,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The frame type.
    pub kind: FrameKind,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with a payload.
    pub fn new(kind: FrameKind, payload: impl Into<Vec<u8>>) -> Self {
        Self {
            kind,
            payload: payload.into(),
        }
    }

    /// A payload-less frame.
    pub fn empty(kind: FrameKind) -> Self {
        Self {
            kind,
            payload: Vec::new(),
        }
    }

    /// The payload as UTF-8 (lossy) — for reason/message frames.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }
}

/// Writes one frame. The caller flushes when the batch is done.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let len = u32::try_from(frame.payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    w.write_all(&[frame.kind as u8])?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&frame.payload)?;
    Ok(())
}

/// Reads one frame. `max_payload` bounds the allocation a hostile or
/// corrupt peer can force; an oversized or unknown frame is an
/// `InvalidData` error (the connection is unrecoverable past it — frame
/// boundaries are lost).
///
/// `Ok(None)` means the peer closed the connection cleanly between frames.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> io::Result<Option<Frame>> {
    let mut head = [0u8; 5];
    match read_exact_or_eof(r, &mut head)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Full => {}
    }
    let kind = FrameKind::from_byte(head[0]).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown frame type 0x{:02x}", head[0]),
        )
    })?;
    let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]) as usize;
    if len > max_payload {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_payload}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Frame { kind, payload }))
}

enum ReadOutcome {
    Full,
    Eof,
}

/// `read_exact`, except a clean EOF *before the first byte* is reported as
/// [`ReadOutcome::Eof`] instead of an error — that is how a well-behaved
/// peer hangs up. EOF mid-header is still an error (a torn frame).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let frames = vec![
            Frame::new(FrameKind::Submit, b"tenant-a".to_vec()),
            Frame::new(FrameKind::Data, vec![0u8; 1000]),
            Frame::empty(FrameKind::End),
            Frame::new(FrameKind::Shed, b"queue full".to_vec()),
            Frame::new(FrameKind::Result, b"\x01{\"races\":[]}".to_vec()),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = Cursor::new(wire);
        for f in &frames {
            let back = read_frame(&mut r, 1 << 20).unwrap().expect("frame");
            assert_eq!(&back, f);
        }
        assert!(read_frame(&mut r, 1 << 20).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_and_unknown_frames_are_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::new(FrameKind::Data, vec![0u8; 64])).unwrap();
        let err = read_frame(&mut Cursor::new(wire), 63).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let wire = vec![0x7f, 0, 0, 0, 0];
        let err = read_frame(&mut Cursor::new(wire), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("0x7f"));
    }

    #[test]
    fn torn_header_is_unexpected_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::empty(FrameKind::End)).unwrap();
        wire.truncate(3);
        let err = read_frame(&mut Cursor::new(wire), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn torn_payload_is_unexpected_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::new(FrameKind::Data, vec![1u8; 10])).unwrap();
        wire.truncate(wire.len() - 4);
        let err = read_frame(&mut Cursor::new(wire), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
