//! Ground-truth scoring for the repair engine on the nine applications'
//! §5 workloads.
//!
//! What the instrumentation-level repair shapes can and cannot prove is a
//! property of the paper's lockset model, and this test pins it:
//!
//! * The lockset analysis is deliberately interleaving-insensitive
//!   (§3.1.1), so inserting a flush+fence after a store only *validates*
//!   when it changes what the model sees — the window either gains the
//!   store-side critical section for its persist lockset (the Figure-1c
//!   pattern) or persists before publication and is discarded by the IRH
//!   (§3.1.3). On this corpus those are the initialization-publication
//!   races the developers already tolerate — the **Benign** entries.
//! * The **Malign** Table-2 bugs pair lock-free readers against the racy
//!   window. No flush placement gives an empty lockset an entry and no
//!   loader lock exists to extend, so their suggestions must be demoted
//!   to `candidate` — *never* silently emitted as fixes. An engine change
//!   that starts "validating" those would be lying about the model, and
//!   this test is the tripwire.
//!
//! Every verdict is additionally spot-checked by replaying the patch
//! through [`RepairValidator`] — `validated: true` must mean the target
//! race is gone and no new race appeared — and the whole feature must be
//! a pure annotation: the race list with `suggest_fixes` on is identical
//! to the list with it off (benign `known_races()` behavior unchanged).

use hawkset_core::analysis::{AnalysisConfig, Analyzer, RepairValidator};
use hawkset_core::trace::TraceView;
use pm_apps::{all_apps, score, RaceClass};

#[test]
fn repair_verdicts_match_the_ground_truth_classes() {
    let mut apps_with_validated = 0u32;
    let mut validated_total = 0u32;
    for app in all_apps() {
        let wl = app.default_workload(2_000, 42);
        let trace = app.execute(&wl);
        let with_fixes = Analyzer::default().suggest_fixes(true).run(&trace);
        let plain = Analyzer::default().run(&trace);

        // The feature is a pure annotation: same races, same order, same
        // fields — benign (and every other) finding behavior unchanged.
        assert_eq!(
            with_fixes.races,
            plain.races,
            "{}: suggest_fixes must not perturb the analysis",
            app.name()
        );
        assert!(plain.fixes.is_none());

        let known = app.known_races();
        let breakdown = score(&with_fixes.races, &known);
        let fixes = with_fixes.fixes.as_ref();
        let mut malign_seen = 0u32;
        let mut malign_suggested = 0u32;
        let mut malign_validated = 0u32;
        let mut benign_validated = 0u32;
        for race in &with_fixes.races {
            let malign = known
                .iter()
                .any(|k| k.class == RaceClass::Malign && k.matches(race));
            let benign = known
                .iter()
                .any(|k| k.class == RaceClass::Benign && k.matches(race));
            assert!(
                !(malign && benign),
                "{}: ground truth classes one race as both malign and benign",
                app.name()
            );
            let suggestion = fixes.and_then(|f| f.suggestions.iter().find(|s| s.race == race.key));
            if malign && !race.store_store {
                malign_seen += 1;
                // A malign race is always actionable: it gets a
                // suggestion even when no shape survives replay.
                let s = suggestion.unwrap_or_else(|| {
                    panic!(
                        "{}: detected malign race {:?} has no repair suggestion",
                        app.name(),
                        race.key
                    )
                });
                malign_suggested += 1;
                if s.validated {
                    malign_validated += 1;
                } else {
                    assert!(
                        s.summary().contains("[candidate]"),
                        "{}: unvalidated suggestion not demoted: {}",
                        app.name(),
                        s.summary()
                    );
                }
            } else if benign && suggestion.is_some_and(|s| s.validated) {
                benign_validated += 1;
            }
        }
        assert_eq!(
            malign_suggested,
            malign_seen,
            "{}: some malign race went unsuggested",
            app.name()
        );
        assert_eq!(
            malign_validated,
            0,
            "{}: a lock-free malign race claims a validated fix — the \
             interleaving-insensitive model cannot prove that; the verdict \
             is lying (see module docs)",
            app.name()
        );

        // Spot-check the verdicts by independent replay: a validated fix
        // must kill its race and introduce nothing new. Capped per app —
        // each replay is a full re-simulation of the trace.
        let validated: Vec<_> = fixes
            .map(|f| f.suggestions.iter().filter(|s| s.validated).collect())
            .unwrap_or_default();
        let view = TraceView::full(&trace);
        let validator = RepairValidator::new(&view, &with_fixes.races, &AnalysisConfig::default());
        for s in validated.iter().take(3) {
            let patched = validator
                .replay(&s.kind)
                .unwrap_or_else(|| panic!("{}: validated fix failed to replay", app.name()));
            assert!(
                patched.races.iter().all(|r| r.key != s.race),
                "{}: validated fix {} did not kill its race on replay",
                app.name(),
                s.summary()
            );
            let baseline: Vec<_> = with_fixes.races.iter().map(|r| r.key).collect();
            assert!(
                patched.races.iter().all(|r| baseline.contains(&r.key)),
                "{}: validated fix {} introduced a new race on replay",
                app.name(),
                s.summary()
            );
        }
        if !validated.is_empty() {
            apps_with_validated += 1;
            validated_total += validated.len() as u32;
        }
        println!(
            "{}: bugs {:?} — {malign_seen} malign races all suggested \
             ({malign_validated} validated, rest candidates), {} validated \
             fixes total ({benign_validated} on benign init-publication \
             races)",
            app.name(),
            breakdown.detected_ids,
            validated.len(),
        );
    }
    // The corpus does exercise the validating paths: the IRH-discard and
    // shared-critical-section patterns appear in several apps.
    assert!(
        apps_with_validated >= 3,
        "expected at least 3 apps with a replay-validated fix, got {apps_with_validated}"
    );
    assert!(
        validated_total >= 10,
        "expected at least 10 replay-validated fixes across the corpus, got {validated_total}"
    );
}
