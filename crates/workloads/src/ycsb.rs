//! YCSB-style workload specification and generation.
//!
//! §5 (Workloads): "the workloads were generated using YCSB with a load
//! phase of 1k insertions, and a main phase with 30% insertions, 30%
//! updates, 30% gets, and 10% deletes", run on eight threads with 1k, 10k
//! or 100k main-phase operations. This module produces exactly that shape:
//! a deterministic, seedable per-thread operation schedule.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::zipfian::Distribution;

/// One key-value operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Insert `key` with a fresh value.
    Insert {
        /// Key to insert.
        key: u64,
        /// Value payload (derived, deterministic).
        value: u64,
    },
    /// Update `key` with a new value.
    Update {
        /// Key to update.
        key: u64,
        /// New value payload.
        value: u64,
    },
    /// Point lookup of `key`.
    Get {
        /// Key to read.
        key: u64,
    },
    /// Delete `key`.
    Delete {
        /// Key to remove.
        key: u64,
    },
}

impl Op {
    /// The key the operation targets.
    pub fn key(&self) -> u64 {
        match self {
            Op::Insert { key, .. }
            | Op::Update { key, .. }
            | Op::Get { key }
            | Op::Delete { key } => *key,
        }
    }
}

/// Operation mix in percent; must sum to 100.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpMix {
    /// Percent of inserts.
    pub insert: u8,
    /// Percent of updates.
    pub update: u8,
    /// Percent of gets.
    pub get: u8,
    /// Percent of deletes.
    pub delete: u8,
}

impl OpMix {
    /// The paper's main-phase mix: 30/30/30/10.
    pub const PAPER: OpMix = OpMix {
        insert: 30,
        update: 30,
        get: 30,
        delete: 10,
    };

    /// Validates that the mix sums to 100%.
    pub fn validate(&self) -> Result<(), String> {
        let sum = self.insert as u32 + self.update as u32 + self.get as u32 + self.delete as u32;
        if sum == 100 {
            Ok(())
        } else {
            Err(format!("operation mix sums to {sum}%, expected 100%"))
        }
    }
}

/// A complete workload specification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Insertions performed single-threaded before the main phase.
    pub load_ops: u64,
    /// Total operations in the concurrent main phase.
    pub main_ops: u64,
    /// Worker threads executing the main phase.
    pub threads: u32,
    /// Operation mix of the main phase.
    pub mix: OpMix,
    /// Key distribution of the main phase.
    pub distribution: Distribution,
    /// Size of the key space keys are drawn from.
    pub key_space: u64,
    /// RNG seed; equal specs generate equal workloads.
    pub seed: u64,
    /// Percent of non-insert operations that target the *insert* key range
    /// (read-your-writes coverage). 0 keeps reads/updates/deletes on the
    /// load-phase keys only — a workload that never exercises growth.
    #[serde(default)]
    pub fresh_ratio: u8,
}

impl WorkloadSpec {
    /// The paper's configuration for a given main-phase size and seed:
    /// 1k-insert load phase, 8 threads, 30/30/30/10 zipfian main phase.
    pub fn paper(main_ops: u64, seed: u64) -> Self {
        Self {
            load_ops: 1000,
            main_ops,
            threads: 8,
            mix: OpMix::PAPER,
            distribution: Distribution::Zipfian,
            key_space: 1000 + main_ops,
            seed,
            fresh_ratio: 33,
        }
    }

    /// PMRace-style seed workloads average ~400 operations (§5.2), with a
    /// smaller load phase so races during growth remain reachable.
    ///
    /// The corpus is deliberately *diverse in composition*, like the 240
    /// seeds shipped with PMRace: the insert share varies from 0% to 40%
    /// across seeds, so some seeds never grow the tree at all. That
    /// diversity is what produces the partial per-seed hit rates of
    /// Table 3 (bug #1 on 120/240 seeds, bug #2 on 83/240): a tool can
    /// only find a race in a workload that covers the racy operations.
    pub fn pmrace_seed(seed: u64) -> Self {
        // Inserts AND updates both create unseen keys in these stores, so
        // a growth-free seed must avoid both; the corpus mixes read-only,
        // read-mostly and write-heavy compositions.
        let r = crate::zipfian::fnv1a(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5eed);
        let (insert, update) =
            [(0u8, 0u8), (0, 0), (0, 2), (0, 4), (30, 30), (40, 20)][(r % 6) as usize];
        let delete = 10;
        let get = 100 - insert - update - delete;
        Self {
            load_ops: 100,
            main_ops: 400,
            threads: 8,
            mix: OpMix {
                insert,
                update,
                get,
                delete,
            },
            // Fuzzer-generated seed inputs have arbitrary keys: uniform.
            distribution: Distribution::Uniform,
            key_space: 700,
            seed,
            // Growth-free seeds stay growth-free: their reads and updates
            // never stray into the insert key range.
            fresh_ratio: if insert == 0 && update == 0 { 0 } else { 33 },
        }
    }

    /// Generates the workload: the single-threaded load phase plus one
    /// schedule per worker thread.
    pub fn generate(&self) -> Workload {
        self.mix.validate().expect("invalid op mix");
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Load phase: distinct keys, deterministic values.
        let load: Vec<Op> = (0..self.load_ops)
            .map(|i| Op::Insert {
                key: i,
                value: value_for(self.seed, i, 0),
            })
            .collect();

        let mut dist = self.distribution.build(self.key_space.max(1));
        let mut per_thread: Vec<Vec<Op>> = vec![Vec::new(); self.threads.max(1) as usize];
        for i in 0..self.main_ops {
            let t = (i % self.threads.max(1) as u64) as usize;
            let key = dist.next_dyn(&mut rng);
            let roll = rng.gen_range(0..100u8);
            // Reads/updates/deletes target the insert key range a third of
            // the time — YCSB's read-your-writes behaviour, and the only
            // way freshly inserted records get exercised (several §5.1
            // bugs are reads of *new* data).
            let target = if rng.gen_range(0..100u8) < self.fresh_ratio {
                self.load_ops + key
            } else {
                key
            };
            let op = if roll < self.mix.insert {
                // Inserts target fresh keys beyond the load range so trees
                // and tables actually grow (splits/rehashes are where the
                // §5.1 bugs live).
                Op::Insert {
                    key: self.load_ops + key,
                    value: value_for(self.seed, key, i),
                }
            } else if roll < self.mix.insert + self.mix.update {
                Op::Update {
                    key: target,
                    value: value_for(self.seed, key, i),
                }
            } else if roll < self.mix.insert + self.mix.update + self.mix.get {
                Op::Get { key: target }
            } else {
                Op::Delete { key: target }
            };
            per_thread[t].push(op);
        }
        Workload { load, per_thread }
    }
}

/// Deterministic value payload derivation.
fn value_for(seed: u64, key: u64, op_index: u64) -> u64 {
    crate::zipfian::fnv1a(seed ^ key.rotate_left(17) ^ op_index.rotate_left(43)) | 1
}

/// A generated workload, ready to execute.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Single-threaded load phase (all inserts).
    pub load: Vec<Op>,
    /// Main-phase schedule, one op list per worker thread.
    pub per_thread: Vec<Vec<Op>>,
}

impl Workload {
    /// Total main-phase operations.
    pub fn main_ops(&self) -> usize {
        self.per_thread.iter().map(Vec::len).sum()
    }

    /// Returns `true` if any thread's schedule contains an insert (growth
    /// coverage — prerequisite for the Fast-Fair split bugs).
    pub fn has_inserts(&self) -> bool {
        self.per_thread
            .iter()
            .flatten()
            .any(|op| matches!(op, Op::Insert { .. }))
    }

    /// Returns `true` if any schedule contains a delete.
    pub fn has_deletes(&self) -> bool {
        self.per_thread
            .iter()
            .flatten()
            .any(|op| matches!(op, Op::Delete { .. }))
    }

    /// Re-deals the main phase across `threads` worker threads (the
    /// thread-count axis of steered campaigns). Ops are flattened in
    /// index-major order — op *i* of each thread in turn, preserving the
    /// interleaving flavour of the original schedule — then dealt
    /// round-robin, so the total op multiset is unchanged. `threads == 0`
    /// is a no-op.
    pub fn reshard(&self, threads: usize) -> Workload {
        if threads == 0 || threads == self.per_thread.len() {
            return self.clone();
        }
        let longest = self.per_thread.iter().map(Vec::len).max().unwrap_or(0);
        let flat: Vec<Op> = (0..longest)
            .flat_map(|i| self.per_thread.iter().filter_map(move |t| t.get(i)))
            .copied()
            .collect();
        let mut per_thread = vec![Vec::new(); threads];
        for (i, op) in flat.into_iter().enumerate() {
            per_thread[i % threads].push(op);
        }
        Workload {
            load: self.load.clone(),
            per_thread,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshard_preserves_op_multiset_and_changes_thread_count() {
        let w = WorkloadSpec::pmrace_seed(3).generate();
        for threads in [1usize, 2, 5, 16] {
            let r = w.reshard(threads);
            assert_eq!(r.per_thread.len(), threads);
            assert_eq!(r.main_ops(), w.main_ops());
            let count = |wl: &Workload| {
                let mut ops: Vec<Op> = wl.per_thread.iter().flatten().copied().collect();
                ops.sort_by_key(|o| (o.key(), format!("{o:?}")));
                ops
            };
            assert_eq!(count(&r), count(&w), "reshard({threads}) altered ops");
        }
        assert_eq!(w.reshard(0), w, "0 threads is a no-op");
    }

    #[test]
    fn paper_spec_matches_section5() {
        let spec = WorkloadSpec::paper(10_000, 7);
        assert_eq!(spec.load_ops, 1000);
        assert_eq!(spec.threads, 8);
        assert_eq!(spec.mix, OpMix::PAPER);
        let w = spec.generate();
        assert_eq!(w.load.len(), 1000);
        assert_eq!(w.main_ops(), 10_000);
        assert_eq!(w.per_thread.len(), 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadSpec::paper(1000, 42).generate();
        let b = WorkloadSpec::paper(1000, 42).generate();
        assert_eq!(a, b);
        let c = WorkloadSpec::paper(1000, 43).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn mix_proportions_roughly_hold() {
        let w = WorkloadSpec::paper(20_000, 1).generate();
        let all: Vec<&Op> = w.per_thread.iter().flatten().collect();
        let count = |f: fn(&Op) -> bool| all.iter().filter(|op| f(op)).count() as f64;
        let n = all.len() as f64;
        let inserts = count(|o| matches!(o, Op::Insert { .. })) / n;
        let updates = count(|o| matches!(o, Op::Update { .. })) / n;
        let gets = count(|o| matches!(o, Op::Get { .. })) / n;
        let deletes = count(|o| matches!(o, Op::Delete { .. })) / n;
        assert!((inserts - 0.30).abs() < 0.02, "inserts {inserts}");
        assert!((updates - 0.30).abs() < 0.02, "updates {updates}");
        assert!((gets - 0.30).abs() < 0.02, "gets {gets}");
        assert!((deletes - 0.10).abs() < 0.02, "deletes {deletes}");
    }

    #[test]
    fn invalid_mix_is_rejected() {
        let bad = OpMix {
            insert: 50,
            update: 50,
            get: 50,
            delete: 0,
        };
        assert!(bad.validate().is_err());
        assert!(OpMix::PAPER.validate().is_ok());
    }

    #[test]
    fn load_phase_keys_are_dense_and_distinct() {
        let w = WorkloadSpec::paper(100, 9).generate();
        for (i, op) in w.load.iter().enumerate() {
            match op {
                Op::Insert { key, .. } => assert_eq!(*key, i as u64),
                other => panic!("load phase must be inserts, got {other:?}"),
            }
        }
    }

    #[test]
    fn op_key_accessor() {
        assert_eq!(Op::Insert { key: 5, value: 1 }.key(), 5);
        assert_eq!(Op::Get { key: 7 }.key(), 7);
        assert_eq!(Op::Delete { key: 9 }.key(), 9);
    }
}
