//! `hawkset` — command-line front end for the analysis pipeline.
//!
//! Traces recorded by the instrumented runtime (binary `.hwkt` files, see
//! [`hawkset_core::trace::io`]) are analyzed offline, so a single recorded
//! execution can be re-analyzed with different settings — IRH on/off,
//! atomics included or not — without re-running the application.
//!
//! ```text
//! hawkset analyze <trace.hwkt> [--no-irh] [--no-atomics] [--json]
//! hawkset info    <trace.hwkt>
//! hawkset demo    <out.hwkt>
//! ```

use std::process::ExitCode;

use hawkset_core::analysis::{analyze, AnalysisConfig};
use hawkset_core::trace::io;
use hawkset_core::Trace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("hawkset: unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
hawkset — automatic, application-agnostic concurrent PM bug detection

USAGE:
    hawkset analyze <trace.hwkt> [--no-irh] [--no-atomics] [--json]
    hawkset info    <trace.hwkt>
    hawkset demo    <out.hwkt>

COMMANDS:
    analyze   run the PM-aware lockset analysis on a recorded trace
    info      print trace statistics (events, threads, PM regions)
    demo      record the paper's Figure-1c example as a trace file

ANALYZE OPTIONS:
    --no-irh        disable the Initialization Removal Heuristic (§3.1.3)
    --no-atomics    exclude atomic-instruction accesses from pairing
    --no-hb         disable the inter-thread happens-before filter (§3.1.2)
    --store-store   also pair stores against stores (off by design, §3.1.1)
    --eadr          assume an eADR platform (§2.1): no race can exist
    --json          emit machine-readable race reports

EXIT STATUS:
    0  no persistency-induced race found
    1  races were reported
    2  usage or I/O error
";

fn load_trace(path: &str) -> Result<Trace, String> {
    let raw = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    io::decode(bytes::Bytes::from(raw)).map_err(|e| format!("cannot decode {path}: {e}"))
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut cfg = AnalysisConfig::default();
    let mut json = false;
    for a in args {
        match a.as_str() {
            "--no-irh" => cfg.irh = false,
            "--no-atomics" => cfg.include_atomics = false,
            "--no-hb" => cfg.use_hb = false,
            "--store-store" => cfg.check_store_store = true,
            "--eadr" => cfg.eadr = true,
            "--json" => json = true,
            flag if flag.starts_with("--") => {
                eprintln!("hawkset analyze: unknown flag {flag}");
                return ExitCode::from(2);
            }
            p => path = Some(p.to_string()),
        }
    }
    let Some(path) = path else {
        eprintln!("hawkset analyze: missing trace path\n{USAGE}");
        return ExitCode::from(2);
    };
    let trace = match load_trace(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hawkset: {e}");
            return ExitCode::from(2);
        }
    };
    let report = analyze(&trace, &cfg);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render(&trace));
        let s = &report.stats;
        println!(
            "\n{} events ({} stores, {} loads, {} flushes, {} fences), \
             {} windows, {} IRH-discarded, {} candidate pairs, {} races, {:?}",
            s.sim.events,
            s.sim.stores,
            s.sim.loads,
            s.sim.flushes,
            s.sim.fences,
            s.sim.windows_created,
            s.sim.irh_discarded_windows,
            s.pairing.candidate_pairs,
            s.pairing.distinct_races,
            s.duration,
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("hawkset info: missing trace path");
        return ExitCode::from(2);
    };
    let trace = match load_trace(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hawkset: {e}");
            return ExitCode::from(2);
        }
    };
    println!("trace:        {path}");
    println!("events:       {}", trace.events.len());
    println!("threads:      {}", trace.thread_count);
    println!("pm accesses:  {}", trace.access_count());
    println!("stacks:       {}", trace.stacks.stack_count());
    for r in &trace.regions {
        println!("region:       {:#x}+{} ({})", r.base, r.len, r.path);
    }
    match trace.validate() {
        Ok(()) => println!("validation:   ok"),
        Err(e) => println!("validation:   FAILED ({e})"),
    }
    ExitCode::SUCCESS
}

/// Records the Figure-1c program — store under lock, persist outside it,
/// concurrent load under the same lock — as a reusable demo trace.
fn cmd_demo(args: &[String]) -> ExitCode {
    use hawkset_core::addr::AddrRange;
    use hawkset_core::trace::{EventKind, Frame, LockId, LockMode, PmRegion, ThreadId, TraceBuilder};

    let Some(path) = args.first() else {
        eprintln!("hawkset demo: missing output path");
        return ExitCode::from(2);
    };
    let mut b = TraceBuilder::new();
    b.add_region(PmRegion { base: 0x1000, len: 4096, path: "/mnt/pmem/fig1c".into() });
    let x = AddrRange::new(0x1000, 8);
    let a = LockId(0xa);
    let st = b.intern_stack([Frame::new("writer", "fig1c.c", 12), Frame::new("main", "fig1c.c", 40)]);
    let ld = b.intern_stack([Frame::new("reader", "fig1c.c", 25), Frame::new("main", "fig1c.c", 41)]);
    b.push(ThreadId(0), st, EventKind::ThreadCreate { child: ThreadId(1) });
    b.push(ThreadId(0), st, EventKind::Acquire { lock: a, mode: LockMode::Exclusive });
    b.push(ThreadId(0), st, EventKind::Store { range: x, non_temporal: false, atomic: false });
    b.push(ThreadId(0), st, EventKind::Release { lock: a });
    b.push(ThreadId(1), ld, EventKind::Acquire { lock: a, mode: LockMode::Exclusive });
    b.push(ThreadId(1), ld, EventKind::Load { range: x, atomic: false });
    b.push(ThreadId(1), ld, EventKind::Release { lock: a });
    b.push(ThreadId(0), st, EventKind::Flush { addr: 0x1000 });
    b.push(ThreadId(0), st, EventKind::Fence);
    b.push(ThreadId(0), st, EventKind::ThreadJoin { child: ThreadId(1) });
    let trace = b.finish();
    let encoded = io::encode(&trace);
    if let Err(e) = std::fs::write(path, &encoded) {
        eprintln!("hawkset: cannot write {path}: {e}");
        return ExitCode::from(2);
    }
    println!("wrote {} bytes to {path} — try: hawkset analyze {path}", encoded.len());
    ExitCode::SUCCESS
}
