//! Structure-of-arrays event storage.
//!
//! A trace is consumed column-wise: the simulator reads kinds/ranges, the
//! validator reads seqs/tids/stacks, decode appends rows. Storing events as
//! parallel columns instead of an array-of-structs keeps each pass inside
//! the columns it actually touches (≈29 bytes per event instead of the
//! 48-byte row struct, and no enum padding), while [`Event`] remains the
//! materialized row type at every API edge: rows go in and come out as
//! `Event`, so call sites keep the vocabulary of the event model.
//!
//! Batch ([`crate::trace::Trace`]) and streaming decode share this one
//! representation — the stream decoder appends rows here as chunks arrive.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::addr::AddrRange;
use crate::trace::{Event, EventKind, LockId, LockMode, ThreadId};

const TAG_STORE: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_FLUSH: u8 = 2;
const TAG_FENCE: u8 = 3;
const TAG_ACQUIRE: u8 = 4;
const TAG_RELEASE: u8 = 5;
const TAG_CREATE: u8 = 6;
const TAG_JOIN: u8 = 7;

const FLAG_NT: u8 = 1 << 4;
const FLAG_ATOMIC: u8 = 1 << 5;
const FLAG_SHARED: u8 = 1 << 6;
const TAG_MASK: u8 = 0x0f;

/// Event rows stored as parallel columns, indexed 0..len.
///
/// The row type at every boundary is [`Event`]; the columns are an internal
/// layout choice. Column slices ([`Self::seqs`], [`Self::tids`],
/// [`Self::stacks`]) are exposed read-only for passes that scan a single
/// attribute.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventColumns {
    seqs: Vec<u64>,
    tids: Vec<u32>,
    stacks: Vec<u32>,
    /// Packed kind: low nibble = tag, high bits = flags.
    ops: Vec<u8>,
    /// Primary argument: access/flush address, lock id, or child thread.
    args: Vec<u64>,
    /// Access length in bytes (stores and loads; 0 otherwise).
    lens: Vec<u32>,
}

fn pack_kind(kind: &EventKind) -> (u8, u64, u32) {
    match *kind {
        EventKind::Store {
            range,
            non_temporal,
            atomic,
        } => (
            TAG_STORE
                | if non_temporal { FLAG_NT } else { 0 }
                | if atomic { FLAG_ATOMIC } else { 0 },
            range.start,
            range.len,
        ),
        EventKind::Load { range, atomic } => (
            TAG_LOAD | if atomic { FLAG_ATOMIC } else { 0 },
            range.start,
            range.len,
        ),
        EventKind::Flush { addr } => (TAG_FLUSH, addr, 0),
        EventKind::Fence => (TAG_FENCE, 0, 0),
        EventKind::Acquire { lock, mode } => (
            TAG_ACQUIRE
                | if mode == LockMode::Shared {
                    FLAG_SHARED
                } else {
                    0
                },
            lock.0,
            0,
        ),
        EventKind::Release { lock } => (TAG_RELEASE, lock.0, 0),
        EventKind::ThreadCreate { child } => (TAG_CREATE, u64::from(child.0), 0),
        EventKind::ThreadJoin { child } => (TAG_JOIN, u64::from(child.0), 0),
    }
}

fn unpack_kind(op: u8, arg: u64, len: u32) -> EventKind {
    match op & TAG_MASK {
        TAG_STORE => EventKind::Store {
            range: AddrRange::new(arg, len),
            non_temporal: op & FLAG_NT != 0,
            atomic: op & FLAG_ATOMIC != 0,
        },
        TAG_LOAD => EventKind::Load {
            range: AddrRange::new(arg, len),
            atomic: op & FLAG_ATOMIC != 0,
        },
        TAG_FLUSH => EventKind::Flush { addr: arg },
        TAG_FENCE => EventKind::Fence,
        TAG_ACQUIRE => EventKind::Acquire {
            lock: LockId(arg),
            mode: if op & FLAG_SHARED != 0 {
                LockMode::Shared
            } else {
                LockMode::Exclusive
            },
        },
        TAG_RELEASE => EventKind::Release { lock: LockId(arg) },
        TAG_CREATE => EventKind::ThreadCreate {
            child: ThreadId(arg as u32),
        },
        TAG_JOIN => EventKind::ThreadJoin {
            child: ThreadId(arg as u32),
        },
        other => unreachable!("corrupt packed event tag {other}"),
    }
}

impl EventColumns {
    /// An empty column set.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty column set with row capacity `n`.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            seqs: Vec::with_capacity(n),
            tids: Vec::with_capacity(n),
            stacks: Vec::with_capacity(n),
            ops: Vec::with_capacity(n),
            args: Vec::with_capacity(n),
            lens: Vec::with_capacity(n),
        }
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Returns `true` if no events are stored.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Appends a row.
    pub fn push(&mut self, ev: Event) {
        let (op, arg, len) = pack_kind(&ev.kind);
        self.seqs.push(ev.seq);
        self.tids.push(ev.tid.0);
        self.stacks.push(ev.stack);
        self.ops.push(op);
        self.args.push(arg);
        self.lens.push(len);
    }

    /// Materializes row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Event {
        Event {
            seq: self.seqs[i],
            tid: ThreadId(self.tids[i]),
            stack: self.stacks[i],
            kind: unpack_kind(self.ops[i], self.args[i], self.lens[i]),
        }
    }

    /// Materializes row `i`, or `None` past the end.
    pub fn try_get(&self, i: usize) -> Option<Event> {
        (i < self.len()).then(|| self.get(i))
    }

    /// Overwrites row `i`.
    pub fn set(&mut self, i: usize, ev: Event) {
        let (op, arg, len) = pack_kind(&ev.kind);
        self.seqs[i] = ev.seq;
        self.tids[i] = ev.tid.0;
        self.stacks[i] = ev.stack;
        self.ops[i] = op;
        self.args[i] = arg;
        self.lens[i] = len;
    }

    /// Inserts a row at `i`, shifting the tail.
    pub fn insert(&mut self, i: usize, ev: Event) {
        let (op, arg, len) = pack_kind(&ev.kind);
        self.seqs.insert(i, ev.seq);
        self.tids.insert(i, ev.tid.0);
        self.stacks.insert(i, ev.stack);
        self.ops.insert(i, op);
        self.args.insert(i, arg);
        self.lens.insert(i, len);
    }

    /// Removes and returns row `i`, shifting the tail.
    pub fn remove(&mut self, i: usize) -> Event {
        let ev = self.get(i);
        self.seqs.remove(i);
        self.tids.remove(i);
        self.stacks.remove(i);
        self.ops.remove(i);
        self.args.remove(i);
        self.lens.remove(i);
        ev
    }

    /// Keeps the first `n` rows.
    pub fn truncate(&mut self, n: usize) {
        self.seqs.truncate(n);
        self.tids.truncate(n);
        self.stacks.truncate(n);
        self.ops.truncate(n);
        self.args.truncate(n);
        self.lens.truncate(n);
    }

    /// The last row, if any.
    pub fn last(&self) -> Option<Event> {
        self.len().checked_sub(1).map(|i| self.get(i))
    }

    /// Renumbers `seq` densely from 0 in storage order.
    pub fn reseq(&mut self) {
        for (i, s) in self.seqs.iter_mut().enumerate() {
            *s = i as u64;
        }
    }

    /// The sequence-number column.
    pub fn seqs(&self) -> &[u64] {
        &self.seqs
    }

    /// The thread-id column (raw `u32`s).
    pub fn tids(&self) -> &[u32] {
        &self.tids
    }

    /// The stack-id column.
    pub fn stacks(&self) -> &[u32] {
        &self.stacks
    }

    /// Iterates rows in storage order, materialized by value.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Event> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Materializes every row.
    pub fn to_vec(&self) -> Vec<Event> {
        self.iter().collect()
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.seqs.capacity() * 8
            + self.tids.capacity() * 4
            + self.stacks.capacity() * 4
            + self.ops.capacity()
            + self.args.capacity() * 8
            + self.lens.capacity() * 4
    }

    /// A borrowed view of the first `n` rows (clamped to `len`).
    pub fn prefix(&self, n: usize) -> EventsView<'_> {
        EventsView {
            cols: self,
            len: n.min(self.len()),
        }
    }

    /// A borrowed view of all rows.
    pub fn view(&self) -> EventsView<'_> {
        self.prefix(self.len())
    }
}

impl From<Vec<Event>> for EventColumns {
    fn from(events: Vec<Event>) -> Self {
        let mut cols = Self::with_capacity(events.len());
        for ev in events {
            cols.push(ev);
        }
        cols
    }
}

impl FromIterator<Event> for EventColumns {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        let mut cols = Self::new();
        for ev in iter {
            cols.push(ev);
        }
        cols
    }
}

impl Extend<Event> for EventColumns {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        for ev in iter {
            self.push(ev);
        }
    }
}

// Wire format compatibility: columns serialize exactly like the
// `Vec<Event>` they replaced, so serialized traces are unchanged.
impl Serialize for EventColumns {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|ev| ev.serialize_value()).collect())
    }
}

impl Deserialize for EventColumns {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Vec::<Event>::deserialize_value(v).map(Self::from)
    }
}

/// A borrowed, cheaply copyable prefix view over [`EventColumns`] — the
/// `&[Event]` analogue for columnar storage, used by
/// [`TraceView`](crate::trace::TraceView) so analyses can run on event
/// prefixes without copying.
#[derive(Clone, Copy, Debug)]
pub struct EventsView<'a> {
    cols: &'a EventColumns,
    len: usize,
}

impl<'a> EventsView<'a> {
    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Materializes row `i` of the view.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> Event {
        assert!(i < self.len, "index {i} out of view bounds {}", self.len);
        self.cols.get(i)
    }

    /// Materializes row `i`, or `None` past the view end.
    pub fn try_get(&self, i: usize) -> Option<Event> {
        (i < self.len).then(|| self.cols.get(i))
    }

    /// The last row of the view, if any.
    pub fn last(&self) -> Option<Event> {
        self.len.checked_sub(1).map(|i| self.cols.get(i))
    }

    /// Iterates the view's rows, materialized by value.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Event> + 'a {
        let cols = self.cols;
        (0..self.len).map(move |i| cols.get(i))
    }

    /// The sequence-number column of the view.
    pub fn seqs(&self) -> &'a [u64] {
        &self.cols.seqs[..self.len]
    }

    /// The thread-id column of the view (raw `u32`s).
    pub fn tids(&self) -> &'a [u32] {
        &self.cols.tids[..self.len]
    }

    /// The stack-id column of the view.
    pub fn stacks(&self) -> &'a [u32] {
        &self.cols.stacks[..self.len]
    }

    /// Materializes the view's rows.
    pub fn to_vec(&self) -> Vec<Event> {
        self.iter().collect()
    }
}

impl IntoIterator for EventsView<'_> {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                seq: 0,
                tid: ThreadId(0),
                stack: 3,
                kind: EventKind::Store {
                    range: AddrRange::new(0x1000, 8),
                    non_temporal: true,
                    atomic: false,
                },
            },
            Event {
                seq: 1,
                tid: ThreadId(2),
                stack: 0,
                kind: EventKind::Load {
                    range: AddrRange::new(0x1008, 4),
                    atomic: true,
                },
            },
            Event {
                seq: 2,
                tid: ThreadId(1),
                stack: 1,
                kind: EventKind::Flush { addr: 0x1040 },
            },
            Event {
                seq: 3,
                tid: ThreadId(1),
                stack: 1,
                kind: EventKind::Fence,
            },
            Event {
                seq: 4,
                tid: ThreadId(0),
                stack: 2,
                kind: EventKind::Acquire {
                    lock: LockId(77),
                    mode: LockMode::Shared,
                },
            },
            Event {
                seq: 5,
                tid: ThreadId(0),
                stack: 2,
                kind: EventKind::Release { lock: LockId(77) },
            },
            Event {
                seq: 6,
                tid: ThreadId(0),
                stack: 0,
                kind: EventKind::ThreadCreate { child: ThreadId(3) },
            },
            Event {
                seq: 7,
                tid: ThreadId(0),
                stack: 0,
                kind: EventKind::ThreadJoin { child: ThreadId(3) },
            },
        ]
    }

    #[test]
    fn roundtrips_every_kind() {
        let events = sample_events();
        let cols = EventColumns::from(events.clone());
        assert_eq!(cols.len(), events.len());
        assert_eq!(cols.to_vec(), events);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(cols.get(i), *ev);
        }
    }

    #[test]
    fn mutation_ops_match_vec_semantics() {
        let events = sample_events();
        let mut cols = EventColumns::from(events.clone());
        let mut model = events;

        let ev = model[2];
        assert_eq!(cols.remove(2), ev);
        model.remove(2);
        assert_eq!(cols.to_vec(), model);

        let new_ev = Event {
            seq: 99,
            tid: ThreadId(5),
            stack: 7,
            kind: EventKind::Fence,
        };
        cols.insert(1, new_ev);
        model.insert(1, new_ev);
        assert_eq!(cols.to_vec(), model);

        cols.set(0, new_ev);
        model[0] = new_ev;
        assert_eq!(cols.to_vec(), model);

        cols.reseq();
        for (i, s) in model.iter_mut().enumerate() {
            s.seq = i as u64;
        }
        assert_eq!(cols.to_vec(), model);
        assert_eq!(cols.seqs(), (0..model.len() as u64).collect::<Vec<_>>());

        cols.truncate(3);
        model.truncate(3);
        assert_eq!(cols.to_vec(), model);
        assert_eq!(cols.last(), model.last().copied());
    }

    #[test]
    fn serde_matches_vec_of_events() {
        let events = sample_events();
        let cols = EventColumns::from(events.clone());
        assert_eq!(cols.serialize_value(), events.serialize_value());
        let back = EventColumns::deserialize_value(&cols.serialize_value()).unwrap();
        assert_eq!(back, cols);
    }

    #[test]
    fn views_clamp_and_expose_columns() {
        let cols = EventColumns::from(sample_events());
        let v = cols.prefix(3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.to_vec(), cols.to_vec()[..3]);
        assert_eq!(v.seqs(), &cols.seqs()[..3]);
        assert_eq!(v.last(), Some(cols.get(2)));
        assert!(v.try_get(3).is_none());
        let all = cols.prefix(usize::MAX);
        assert_eq!(all.len(), cols.len());
        assert!(cols.prefix(0).is_empty());
    }
}
