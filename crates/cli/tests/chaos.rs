//! Chaos suite: the real daemon under scripted storage faults and hostile
//! clients.
//!
//! Every test here drives the released binary end to end — real sockets,
//! real database directory — with faults injected through the
//! `HAWKSET_IO_FAULT_SCRIPT` deterministic I/O plane (see
//! `hawkset_core::ioplane`). The properties under test are the hostile-
//! environment contract:
//!
//! * no fault schedule ever panics the daemon; drains still exit 0;
//! * a checkpoint the storage ate is rolled back and reported (`ERROR
//!   storage failure`), never silently half-applied;
//! * while degraded the daemon sheds with the machine-stable `storage:`
//!   prefix, keeps serving PING/query, and self-heals via re-probes;
//! * recovery after a poisoned generation converges **byte-for-byte**
//!   with a never-faulted run;
//! * a slowloris peer is cut off by the per-frame deadline without
//!   delaying a concurrent healthy tenant, and the connection cap sheds
//!   explicitly.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn hawkset() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hawkset"))
}

fn demo_trace(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("hawkset-chaos-{name}.hwkt"));
    let out = hawkset()
        .args(["demo", path.to_str().unwrap()])
        .output()
        .expect("spawn demo");
    assert!(out.status.success());
    path
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hawkset-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A running daemon with stderr teed to a file so tests can assert the
/// absence of panics after the fact.
struct Daemon {
    child: Child,
    tcp: String,
    stderr_path: PathBuf,
}

impl Daemon {
    fn start(db: &Path, extra_args: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let stderr_path = std::env::temp_dir().join(format!(
            "hawkset-chaos-stderr-{}-{:?}.log",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let stderr_file = std::fs::File::create(&stderr_path).expect("stderr log");
        let mut cmd = hawkset();
        cmd.args([
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--db",
            db.to_str().unwrap(),
        ])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::from(stderr_file));
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn daemon");
        let stdout = child.stdout.take().expect("daemon stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read readiness line");
        assert!(
            line.starts_with("serve: ready"),
            "unexpected readiness line: {line:?}"
        );
        let tcp = line
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("tcp="))
            .expect("readiness line carries the bound tcp address")
            .to_string();
        Daemon {
            child,
            tcp,
            stderr_path,
        }
    }

    fn sigterm(&self) {
        let rc = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("kill spawns");
        assert!(rc.success());
    }

    /// SIGTERM, assert exit 0, assert the daemon never panicked, and
    /// return its stderr for further assertions.
    fn drain(mut self) -> String {
        self.sigterm();
        let status = self.child.wait().expect("wait daemon");
        let stderr = std::fs::read_to_string(&self.stderr_path).unwrap_or_default();
        assert_eq!(
            status.code(),
            Some(0),
            "graceful drain exits 0; stderr:\n{stderr}"
        );
        assert!(
            !stderr.contains("panicked at"),
            "daemon must never panic under injected faults:\n{stderr}"
        );
        stderr
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.stderr_path);
    }
}

fn submit_args(tcp: &str, tenant: &str, trace: &Path, extra: &[&str]) -> (i32, String, String) {
    let out = hawkset()
        .args([
            "submit",
            "--tcp",
            tcp,
            "--tenant",
            tenant,
            trace.to_str().unwrap(),
        ])
        .args(extra)
        .output()
        .expect("spawn submit");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn submit(tcp: &str, tenant: &str, trace: &Path) -> (i32, String, String) {
    submit_args(tcp, tenant, trace, &[])
}

fn query_json(db: &Path) -> Vec<u8> {
    let out = hawkset()
        .args(["query", "--json", "--db", db.to_str().unwrap()])
        .output()
        .expect("spawn query");
    assert!(
        out.status.success(),
        "query failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn metrics_json(db: &Path) -> serde_json::Value {
    let bytes = std::fs::read(db.join("serve-metrics.json")).expect("metrics file written");
    serde_json::from_slice(&bytes).expect("metrics file is valid JSON")
}

/// The three conservation laws, including the `storage` shed cause.
fn assert_conservation(m: &serde_json::Value) {
    let n = |v: &serde_json::Value| v.as_u64().expect("numeric metric");
    assert_eq!(
        n(&m["submitted"]),
        n(&m["admitted"]) + n(&m["shed"]["total"]),
        "submitted = admitted + shed: {m:?}"
    );
    assert_eq!(
        n(&m["admitted"]),
        n(&m["outcomes"]["completed_clean"])
            + n(&m["outcomes"]["completed_races"])
            + n(&m["outcomes"]["failed"])
            + n(&m["in_flight"]),
        "admitted = resolved + in_flight: {m:?}"
    );
    assert_eq!(
        n(&m["shed"]["total"]),
        n(&m["shed"]["queue_full"])
            + n(&m["shed"]["tenant_cap"])
            + n(&m["shed"]["draining"])
            + n(&m["shed"]["storage"]),
        "shed total = causes: {m:?}"
    );
}

/// Stable-snapshot JSON with the fields that legitimately differ after a
/// poisoned generation stripped: generation numbers are *burned*, never
/// reused, so a daemon that survived an eaten checkpoint ends on a higher
/// generation than a never-faulted one — by design. The content (records,
/// occurrences, tenants, jobs) must still match exactly.
fn semantic_snapshot(db: &Path) -> (serde_json::Value, serde_json::Value, serde_json::Value) {
    let v: serde_json::Value = serde_json::from_slice(&query_json(db)).expect("snapshot JSON");
    (
        v["version"].clone(),
        v["jobs_recorded"].clone(),
        v["records"].clone(),
    )
}

// --- framed-protocol helpers for the hostile clients ----------------------

fn write_raw_frame(stream: &mut TcpStream, kind: u8, payload: &[u8]) {
    let mut buf = vec![kind];
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    stream.write_all(&buf).expect("write frame");
    stream.flush().expect("flush");
}

/// Reads one frame; `None` on clean EOF.
fn read_raw_frame(stream: &mut TcpStream) -> Option<(u8, Vec<u8>)> {
    let mut head = [0u8; 5];
    let mut got = 0;
    while got < head.len() {
        match stream.read(&mut head[got..]) {
            Ok(0) => return None,
            Ok(n) => got += n,
            Err(e) => panic!("read frame header: {e}"),
        }
    }
    let len = u32::from_le_bytes(head[1..5].try_into().unwrap()) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("read frame payload");
    Some((head[0], payload))
}

// --- the tests ------------------------------------------------------------

/// An ENOSPC that eats the root swap: the job fails with an explicit
/// storage error, the daemon degrades and sheds `storage:`, a retrying
/// client rides the backoff through the degraded window, and the daemon
/// self-heals — all in one process lifetime, with the books balanced.
#[test]
fn enospc_checkpoint_degrades_sheds_storage_and_self_heals() {
    let trace = demo_trace("enospc");
    let db = fresh_dir("enospc");
    // Occurrence 0 of (current, rename) is the open-time bootstrap;
    // occurrence 1 is the first job's durability swap.
    let daemon = Daemon::start(
        &db,
        &["--probe-interval-ms", "3000"],
        &[("HAWKSET_IO_FAULT_SCRIPT", "current:rename:1:enospc")],
    );

    // Job 1: analysis succeeds, the checkpoint does not. The client must
    // hear a storage error, not a RESULT that lies about durability.
    let (code, out, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 2, "stdout:\n{out}\nstderr:\n{err}");
    assert!(err.contains("storage failure"), "stderr:\n{err}");
    assert!(err.contains("resubmit"), "stderr:\n{err}");

    // Job 2 with retries: the first attempt lands inside the degraded
    // window and is shed `storage:`; backoff carries it past the probe
    // interval, the probe heals the daemon, and the resubmission wins.
    let (code, out, err) = submit_args(
        &daemon.tcp,
        "tenant-a",
        &trace,
        &["--retries", "10", "--retry-max-ms", "500"],
    );
    assert_eq!(
        code, 1,
        "retrying submission must outlive the degraded window\nstdout:\n{out}\nstderr:\n{err}"
    );

    let stderr = daemon.drain();
    assert!(
        stderr.contains("storage degraded to read-only"),
        "daemon logs the transition:\n{stderr}"
    );
    assert!(
        stderr.contains("storage healed"),
        "daemon logs the heal:\n{stderr}"
    );

    let m = metrics_json(&db);
    assert_conservation(&m);
    assert!(
        m["shed"]["storage"].as_u64().unwrap() >= 1,
        "degraded window shed with the storage cause: {m:?}"
    );
    assert_eq!(m["storage"]["degraded"], false);
    assert!(m["storage"]["degraded_total"].as_u64().unwrap() >= 1);
    assert!(m["storage"]["healed_total"].as_u64().unwrap() >= 1);
    assert!(m["storage"]["poisoned_generations"].as_u64().unwrap() >= 1);

    // Rollback correctness: job 1 was rolled back before its resubmission,
    // so the surviving database holds exactly one occurrence — identical
    // in content to a never-faulted single submission.
    let db_ref = fresh_dir("enospc-ref");
    let daemon = Daemon::start(&db_ref, &[], &[]);
    let (code, _, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 1, "stderr:\n{err}");
    daemon.drain();
    assert_eq!(
        semantic_snapshot(&db),
        semantic_snapshot(&db_ref),
        "rollback + retry must converge with a never-faulted run"
    );
}

/// fsyncgate: a generation whose fsync failed is of unknowable durability.
/// It is poisoned — removed, its number burned — and after a restart the
/// database converges **byte-for-byte** (generation included) with a run
/// that never saw the fault.
#[test]
fn failed_fsync_poisons_the_generation_and_restart_converges_byte_for_byte() {
    let trace = demo_trace("fsyncgate");
    let db = fresh_dir("fsyncgate");
    let daemon = Daemon::start(
        &db,
        &[],
        &[("HAWKSET_IO_FAULT_SCRIPT", "snapshot:fsync:1:eio")],
    );

    let (code, _, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 2, "the eaten fsync must fail the job; stderr:\n{err}");
    assert!(err.contains("storage failure"), "stderr:\n{err}");
    daemon.drain();

    let m = metrics_json(&db);
    assert_conservation(&m);
    assert_eq!(m["storage"]["poisoned_generations"], 1u64);
    assert_eq!(m["storage"]["degraded"], true, "no heal happened: {m:?}");

    // The poisoned generation file must not be trusted — or present.
    assert!(
        !db.join("snapshot-000001.json").exists(),
        "a generation that failed fsync is removed, never retried in place"
    );

    // Restart without the fault script: recovery lands on the bootstrap
    // generation, the resubmission goes through, and the result is
    // byte-for-byte what an unfaulted daemon produces.
    let daemon = Daemon::start(&db, &[], &[]);
    let before: serde_json::Value =
        serde_json::from_slice(&query_json(&db)).expect("snapshot JSON");
    assert_eq!(
        before["jobs_recorded"], 0u64,
        "rollback held across restart"
    );
    let (code, _, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 1, "stderr:\n{err}");
    daemon.drain();

    let db_ref = fresh_dir("fsyncgate-ref");
    let daemon = Daemon::start(&db_ref, &[], &[]);
    let (code, _, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 1, "stderr:\n{err}");
    daemon.drain();

    assert_eq!(
        String::from_utf8_lossy(&query_json(&db)),
        String::from_utf8_lossy(&query_json(&db_ref)),
        "post-restart database must converge byte-for-byte"
    );
}

/// The full fault matrix: every kind at every durability site. For each
/// schedule the daemon must (a) never panic, (b) answer the faulted
/// submission with a verdict (RESULT if the fault was survivable, an
/// explicit storage ERROR if not — never a hang or a lie), (c) admit a
/// retrying follow-up once healed, (d) drain to exit 0 with balanced
/// books, and (e) restart into a queryable, writable database.
#[test]
fn fault_schedule_sweep_never_panics_and_recovers() {
    let trace = demo_trace("sweep");
    let schedules = [
        "snapshot:write:1:enospc",
        "snapshot:write:1:short",
        "snapshot:write:1:torn",
        "snapshot:fsync:1:eio",
        "snapshot:dirsync:1:eio",
        "snapshot:rename:1:eio",
        "current:write:1:torn",
        "current:fsync:1:eio",
        "current:rename:1:enospc",
        // The metrics site is only written at drain, so its first-ever
        // occurrence is the one to fault.
        "metrics:write:0:enospc",
    ];
    for (i, schedule) in schedules.iter().enumerate() {
        let db = fresh_dir(&format!("sweep-{i}"));
        let daemon = Daemon::start(
            &db,
            &["--probe-interval-ms", "200"],
            &[("HAWKSET_IO_FAULT_SCRIPT", schedule)],
        );

        // The faulted submission: either the fault was invisible to
        // durability (torn CURRENT is absorbed by recovery; the metrics
        // fault only matters at drain) and the job completes (1), or
        // durability failed and the client is told so (2). Never a shed
        // (the daemon was healthy at admission), never a hang.
        let (code, out, err) = submit(&daemon.tcp, "tenant-a", &trace);
        assert!(
            code == 1 || code == 2,
            "schedule {schedule}: unexpected exit {code}\nstdout:\n{out}\nstderr:\n{err}"
        );
        if code == 2 {
            assert!(
                err.contains("storage failure"),
                "schedule {schedule}: failure must name storage:\n{err}"
            );
        }

        // A retrying client always gets through eventually: the schedule
        // is one-shot, so a probe (at most 200ms away) heals the daemon.
        let (code, out, err) = submit_args(
            &daemon.tcp,
            "tenant-a",
            &trace,
            &["--retries", "10", "--retry-max-ms", "300"],
        );
        assert_eq!(
            code, 1,
            "schedule {schedule}: retry must land\nstdout:\n{out}\nstderr:\n{err}"
        );

        daemon.drain();

        // Restart clean: recovery must produce a queryable database that
        // still accepts work, whatever the schedule left on disk.
        let daemon = Daemon::start(&db, &[], &[]);
        let (code, _, err) = submit(&daemon.tcp, "tenant-b", &trace);
        assert_eq!(code, 1, "schedule {schedule}: post-restart submit\n{err}");
        daemon.drain();

        let m = metrics_json(&db);
        assert_conservation(&m);
        std::fs::remove_dir_all(&db).ok();
    }
}

/// Slowloris: a client that stalls mid-upload is disconnected by the
/// per-frame deadline while a healthy tenant submitted *after* it
/// completes normally — the stall consumes a queue slot for at most one
/// frame budget, nothing else.
#[test]
fn slowloris_upload_is_cut_off_without_delaying_a_healthy_tenant() {
    let trace = demo_trace("slowloris");
    let db = fresh_dir("slowloris");
    let daemon = Daemon::start(&db, &["--io-timeout-ms", "400"], &[]);

    // The hostile half: SUBMIT, get ACCEPTED (slot held), start a DATA
    // frame claiming 4096 bytes, deliver 3, stall.
    let mut loris = TcpStream::connect(&daemon.tcp).expect("connect slowloris");
    write_raw_frame(&mut loris, 0x01, b"loris");
    let (kind, _) = read_raw_frame(&mut loris).expect("admission verdict");
    assert_eq!(kind, 0x81, "slowloris submission is admitted");
    let mut partial = vec![0x02u8];
    partial.extend_from_slice(&4096u32.to_le_bytes());
    partial.extend_from_slice(&[7, 7, 7]);
    loris.write_all(&partial).expect("write partial frame");
    loris.flush().expect("flush");
    let stalled_at = Instant::now();

    // The healthy half, concurrent with the stall: completes normally.
    let (code, out, err) = submit(&daemon.tcp, "tenant-good", &trace);
    assert_eq!(
        code, 1,
        "healthy tenant must not be delayed by the stalled upload\nstdout:\n{out}\nstderr:\n{err}"
    );

    // The daemon cuts the slowloris off within the frame budget: an
    // ERROR frame (upload failed) and/or EOF, well before the idle
    // timeout would ever fire.
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut saw_error = false;
    while let Some((kind, payload)) = read_raw_frame(&mut loris) {
        if kind == 0x84 {
            saw_error = true;
            let msg = String::from_utf8_lossy(&payload).into_owned();
            assert!(
                msg.contains("upload failed"),
                "error names the upload: {msg}"
            );
        }
    }
    assert!(
        saw_error,
        "the cut-off is an explicit ERROR, not a silent drop"
    );
    assert!(
        stalled_at.elapsed() < Duration::from_secs(8),
        "cut-off must come from the 400ms frame budget, not a long timeout"
    );
    drop(loris);

    daemon.drain();
    let m = metrics_json(&db);
    assert_conservation(&m);
    assert!(
        m["connections"]["timed_out"].as_u64().unwrap() >= 1,
        "the slowloris disconnect is accounted: {m:?}"
    );
    // The abandoned upload resolves as failed, so the submission books
    // still close: 2 submitted (loris + healthy), 2 admitted, 1 failed.
    assert_eq!(m["submitted"], 2u64);
    assert_eq!(m["outcomes"]["failed"], 1u64);
    assert_eq!(m["outcomes"]["completed_races"], 1u64);
}

/// The connection cap sheds at the door with the machine-stable
/// `connections:` prefix — outside the submission books, since no SUBMIT
/// was ever read — and a slot freed by a disconnect is reusable at once.
#[test]
fn connection_cap_sheds_explicitly_and_frees_on_disconnect() {
    let trace = demo_trace("conncap");
    let db = fresh_dir("conncap");
    let daemon = Daemon::start(&db, &["--max-connections", "1"], &[]);

    // Connection 1 holds the only slot, idle.
    let holder = TcpStream::connect(&daemon.tcp).expect("connect holder");
    std::thread::sleep(Duration::from_millis(300));

    // Connection 2 is shed at the door with an explicit frame.
    let mut refused = TcpStream::connect(&daemon.tcp).expect("connect refused");
    let (kind, payload) = read_raw_frame(&mut refused).expect("shed frame");
    assert_eq!(kind, 0x82, "over-cap peers get SHED");
    let reason = String::from_utf8_lossy(&payload).into_owned();
    assert!(reason.starts_with("connections:"), "{reason}");
    assert!(
        read_raw_frame(&mut refused).is_none(),
        "the shed connection is closed"
    );

    // Freeing the slot makes the very next submission land.
    drop(holder);
    std::thread::sleep(Duration::from_millis(300));
    let (code, out, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 1, "stdout:\n{out}\nstderr:\n{err}");

    daemon.drain();
    let m = metrics_json(&db);
    assert_conservation(&m);
    assert!(m["connections"]["rejected"].as_u64().unwrap() >= 1);
    // The cap shed never touched the submission law: only the one real
    // submission is on the books.
    assert_eq!(m["submitted"], 1u64);
}
