//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset the workspace uses: [`Mutex`] and [`RwLock`] with
//! `parking_lot`'s non-poisoning API, implemented as thin wrappers over the
//! `std::sync` primitives. Poisoning is absorbed by recovering the inner
//! guard (`parking_lot` never poisons, so callers expect `lock()` to always
//! succeed).

use std::sync;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.try_lock().map(|g| *g), Some(2));
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
            assert!(l.try_write().is_none());
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        assert_eq!(*m.lock(), 0);
    }
}
