//! Execution traces: the interface between instrumentation and analysis.

pub mod event;
pub mod io;
pub mod stack;

use serde::{Deserialize, Serialize};

pub use event::{Event, EventKind, LockId, LockMode, StackId, ThreadId};
pub use stack::{Frame, FrameId, StackTable, EMPTY_STACK};

use crate::addr::{AddrRange, PmAddr};

/// A registered persistent-memory mapping.
///
/// The original tool records `mmap` calls on files under the PM mount and
/// classifies accesses by comparing target addresses against these regions
/// (§4). The runtime substrate registers each simulated pool here.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmRegion {
    /// Base address of the mapping.
    pub base: PmAddr,
    /// Length in bytes.
    pub len: u64,
    /// Path of the backing file (informational).
    pub path: String,
}

impl PmRegion {
    /// Returns `true` if the byte range falls entirely inside the region.
    pub fn contains(&self, range: &AddrRange) -> bool {
        range.start >= self.base && range.end() <= self.base + self.len
    }
}

/// A complete recorded execution.
///
/// Events are totally ordered by `seq` — the order in which the
/// instrumentation observed them, which is a legal linearization of the real
/// concurrent execution (each event is recorded atomically with the action
/// it describes).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    /// All events, sorted by `seq`.
    pub events: Vec<Event>,
    /// Interned call stacks referenced by the events.
    pub stacks: StackTable,
    /// Registered PM mappings.
    pub regions: Vec<PmRegion>,
    /// Number of threads that appear in the trace.
    pub thread_count: u32,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self { events: Vec::new(), stacks: StackTable::new(), regions: Vec::new(), thread_count: 1 }
    }

    /// Returns `true` if `range` lies within a registered PM region.
    pub fn is_pm(&self, range: &AddrRange) -> bool {
        self.regions.iter().any(|r| r.contains(range))
    }

    /// Iterates over events in observation order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of PM access events (stores + loads).
    pub fn access_count(&self) -> usize {
        self.events.iter().filter(|e| e.kind.is_access()).count()
    }

    /// Validates internal consistency; returns a description of the first
    /// problem found, if any.
    ///
    /// Checked invariants: `seq` is dense and strictly increasing, stack ids
    /// are valid, thread ids are below `thread_count`, thread creation
    /// precedes any event of the child, and joins follow the child's last
    /// event.
    pub fn validate(&self) -> Result<(), String> {
        let mut first_event: Vec<Option<u64>> = vec![None; self.thread_count as usize];
        let mut last_event: Vec<Option<u64>> = vec![None; self.thread_count as usize];
        let mut created: Vec<Option<u64>> = vec![None; self.thread_count as usize];
        created[ThreadId::MAIN.index()] = Some(0);
        for (i, ev) in self.events.iter().enumerate() {
            if ev.seq != i as u64 {
                return Err(format!("event {i} has seq {}, expected {i}", ev.seq));
            }
            if ev.tid.index() >= self.thread_count as usize {
                return Err(format!("event {i} has tid {} >= thread_count", ev.tid));
            }
            if ev.stack as usize >= self.stacks.stack_count() {
                return Err(format!("event {i} references unknown stack {}", ev.stack));
            }
            first_event[ev.tid.index()].get_or_insert(ev.seq);
            last_event[ev.tid.index()] = Some(ev.seq);
            if let EventKind::ThreadCreate { child } = ev.kind {
                if child.index() >= self.thread_count as usize {
                    return Err(format!("event {i} creates unknown thread {child}"));
                }
                if created[child.index()].is_some() {
                    return Err(format!("thread {child} created twice"));
                }
                created[child.index()] = Some(ev.seq);
            }
        }
        for tid in 0..self.thread_count as usize {
            match (created[tid], first_event[tid]) {
                (None, Some(first)) => {
                    return Err(format!("thread T{tid} has event at seq {first} but no creation"))
                }
                (Some(c), Some(first)) if tid != ThreadId::MAIN.index() && first < c => {
                    return Err(format!(
                        "thread T{tid} has event at seq {first} before its creation at {c}"
                    ));
                }
                _ => {}
            }
        }
        for ev in &self.events {
            if let EventKind::ThreadJoin { child } = ev.kind {
                if let Some(last) = last_event[child.index()] {
                    if last > ev.seq {
                        return Err(format!(
                            "join of {child} at seq {} precedes its last event at {last}",
                            ev.seq
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Approximate heap footprint in bytes, for the Figure 6 cost study.
    pub fn approx_bytes(&self) -> usize {
        self.events.len() * std::mem::size_of::<Event>() + self.stacks.approx_bytes()
    }
}

/// Incremental construction of a [`Trace`] from a single logical stream.
///
/// The runtime substrate funnels per-thread observations through a global
/// sequencer and appends them here. Builders are intentionally not
/// thread-safe: synchronization is the runtime's concern.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    trace: Trace,
}

impl TraceBuilder {
    /// Creates a builder with an empty trace.
    pub fn new() -> Self {
        Self { trace: Trace::new() }
    }

    /// Registers a PM mapping.
    pub fn add_region(&mut self, region: PmRegion) {
        self.trace.regions.push(region);
    }

    /// Interns a stack and returns its id.
    pub fn intern_stack(&mut self, frames: impl IntoIterator<Item = Frame>) -> StackId {
        self.trace.stacks.intern_stack(frames)
    }

    /// Appends an event; its `seq` is assigned automatically.
    pub fn push(&mut self, tid: ThreadId, stack: StackId, kind: EventKind) {
        let seq = self.trace.events.len() as u64;
        if tid.index() as u32 >= self.trace.thread_count {
            self.trace.thread_count = tid.0 + 1;
        }
        if let EventKind::ThreadCreate { child } = kind {
            if child.0 >= self.trace.thread_count {
                self.trace.thread_count = child.0 + 1;
            }
        }
        self.trace.events.push(Event { seq, tid, stack, kind });
    }

    /// Finalizes the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(range: AddrRange) -> EventKind {
        EventKind::Store { range, non_temporal: false, atomic: false }
    }

    #[test]
    fn builder_assigns_dense_seq_and_thread_count() {
        let mut b = TraceBuilder::new();
        let s = b.intern_stack([Frame::new("f", "x.rs", 1)]);
        b.push(ThreadId(0), s, EventKind::ThreadCreate { child: ThreadId(1) });
        b.push(ThreadId(1), s, store(AddrRange::new(0, 8)));
        b.push(ThreadId(0), s, EventKind::ThreadJoin { child: ThreadId(1) });
        let t = b.finish();
        assert_eq!(t.thread_count, 2);
        assert_eq!(t.events.len(), 3);
        assert!(t.validate().is_ok());
        assert_eq!(t.access_count(), 1);
    }

    #[test]
    fn validate_rejects_event_before_creation() {
        let mut b = TraceBuilder::new();
        let s = b.intern_stack([]);
        b.push(ThreadId(1), s, store(AddrRange::new(0, 8)));
        b.push(ThreadId(0), s, EventKind::ThreadCreate { child: ThreadId(1) });
        let t = b.finish();
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_join_before_child_last_event() {
        let mut b = TraceBuilder::new();
        let s = b.intern_stack([]);
        b.push(ThreadId(0), s, EventKind::ThreadCreate { child: ThreadId(1) });
        b.push(ThreadId(0), s, EventKind::ThreadJoin { child: ThreadId(1) });
        b.push(ThreadId(1), s, store(AddrRange::new(0, 8)));
        let t = b.finish();
        assert!(t.validate().is_err());
    }

    #[test]
    fn pm_region_classification() {
        let mut t = Trace::new();
        t.regions.push(PmRegion { base: 0x1000, len: 0x1000, path: "/mnt/pmem/pool".into() });
        assert!(t.is_pm(&AddrRange::new(0x1000, 8)));
        assert!(t.is_pm(&AddrRange::new(0x1ff8, 8)));
        assert!(!t.is_pm(&AddrRange::new(0x1ffc, 8))); // straddles the end
        assert!(!t.is_pm(&AddrRange::new(0x800, 8)));
    }
}
