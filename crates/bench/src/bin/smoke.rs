//! Bench smoke: pairing throughput at 1 vs N worker threads on a fixed
//! synthetic trace, for CI logs.
//!
//! Prints events/sec for the sequential and parallel runs plus the
//! speedup, and verifies the two reports are identical (they must be: the
//! sharded engine's determinism contract). Exit code is 1 if the reports
//! diverge, or if `--min-speedup X` is given and the measured speedup
//! falls short.
//!
//! ```text
//! smoke [--threads N] [--ops N] [--min-speedup X]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use hawkset_bench::synthetic::{synthetic_trace, SyntheticSpec};
use hawkset_core::analysis::Analyzer;
use hawkset_core::memsim::{simulate, SimConfig};

fn main() -> ExitCode {
    let mut threads = 4usize;
    let mut ops = 30_000u64;
    let mut min_speedup: Option<f64> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads N");
            }
            "--ops" => {
                i += 1;
                ops = args[i].parse().expect("--ops N");
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = Some(args[i].parse().expect("--min-speedup X"));
            }
            other => {
                eprintln!("smoke: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    // Pairing-heavy shape: many threads racing on many cache lines with
    // little locking, so stage 3 dominates and has shards to spread.
    let spec = SyntheticSpec {
        threads: 8,
        ops_per_thread: ops,
        locations: 4096,
        store_pct: 50,
        persist_pct: 50,
        locked_pct: 10,
        seed: 42,
    };
    let trace = synthetic_trace(&spec);
    let events = trace.events.len() as f64;
    let access = simulate(&trace, &SimConfig::default());

    let time_pairing = |n: usize| {
        let analyzer = Analyzer::default().threads(n);
        let started = Instant::now();
        let report = analyzer.run_pairing(&trace, &access);
        (started.elapsed().as_secs_f64(), report)
    };
    // Warm-up run so first-touch page faults don't bias the 1-thread leg.
    let _ = time_pairing(1);
    let (seq_secs, seq_report) = time_pairing(1);
    let (par_secs, par_report) = time_pairing(threads);

    let speedup = seq_secs / par_secs;
    println!(
        "smoke: {} events, {} windows, {} candidate pairs",
        trace.events.len(),
        access.windows.len(),
        seq_report.stats.pairing.candidate_pairs,
    );
    println!(
        "smoke: pairing 1 thread : {:>10.0} events/sec ({:.1} ms)",
        events / seq_secs,
        seq_secs * 1e3
    );
    println!(
        "smoke: pairing {} threads: {:>10.0} events/sec ({:.1} ms)",
        threads,
        events / par_secs,
        par_secs * 1e3
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("smoke: speedup {speedup:.2}x at {threads} threads ({cores} core(s) available)");

    if par_report.races != seq_report.races
        || par_report.stats.pairing != seq_report.stats.pairing
        || par_report.coverage != seq_report.coverage
    {
        eprintln!("smoke: FAIL — parallel report diverges from sequential");
        return ExitCode::from(1);
    }
    if let Some(min) = min_speedup {
        // A speedup floor is only meaningful when the host can actually
        // run the workers concurrently.
        if cores < threads {
            println!(
                "smoke: skipping the {min:.2}x speedup floor — host has {cores} core(s), \
                 {threads} requested"
            );
        } else if speedup < min {
            eprintln!("smoke: FAIL — speedup {speedup:.2}x below required {min:.2}x");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
