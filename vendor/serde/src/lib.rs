//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides a compatible-enough subset: [`Serialize`] and [`Deserialize`]
//! traits built around an in-memory [`Value`] data model (the same shape
//! `serde_json::Value` exposes), plus derive macros re-exported from the
//! companion `serde_derive` crate. The derives understand the attributes
//! this workspace uses: `skip`, `default`, `skip_serializing_if`, `flatten`,
//! and `tag`/`rename_all` on enums.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(_) => None,
        }
    }

    /// The value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    /// The value as `f64` (integers convert lossily past 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                // One side may still be a small signed/unsigned pair.
            }
        }
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => return false,
        }
        self.as_f64() == other.as_f64()
    }
}

/// An insertion-order-preserving string-keyed map.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Inserts or replaces a key, preserving first-insertion order.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Returns `true` if the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// The in-memory data model every `Serialize`/`Deserialize` impl targets.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as a borrowed array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a borrowed object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a borrowed string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is a representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-key lookup returning `None` when absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// A short name of the value's type for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => {
                        if *other >= 0 {
                            n.as_u64() == Some(*other as u64)
                        } else {
                            n.as_i64() == Some(*other as i64)
                        }
                    }
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_int!(i8, i16, i32, i64, isize);

macro_rules! value_eq_uint {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if n.as_u64() == Some(*other as u64))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_uint!(u8, u16, u32, u64, usize);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Clone, Debug)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Convenience constructor for type mismatches.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self::new(format!("expected {what}, found {}", found.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes a value of this type from `v`.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

serde_uint!(u8, u16, u32, u64, usize);

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::deserialize_value(v)? as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn serialize_value(&self) -> Value {
        // Sort for stable output: HashMap iteration order is arbitrary.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k.clone(), v.serialize_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(
            u64::deserialize_value(&42u64.serialize_value()).unwrap(),
            42
        );
        assert_eq!(
            i32::deserialize_value(&(-7i32).serialize_value()).unwrap(),
            -7
        );
        assert_eq!(
            Option::<u32>::deserialize_value(&None::<u32>.serialize_value()).unwrap(),
            None
        );
        let v = vec![1u8, 2, 3].serialize_value();
        assert_eq!(Vec::<u8>::deserialize_value(&v).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn value_index_and_eq() {
        let mut m = Map::new();
        m.insert("line", Value::Number(Number::PosInt(12)));
        let v = Value::Array(vec![Value::Object(m)]);
        assert_eq!(v[0]["line"], 12);
        assert_eq!(v[0]["line"], 12u64);
        assert!(v[0]["missing"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn big_u64_preserved() {
        let big = u64::MAX - 1;
        assert_eq!(u64::deserialize_value(&big.serialize_value()).unwrap(), big);
    }
}
