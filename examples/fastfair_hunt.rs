//! Hunt the Fast-Fair bugs with a YCSB workload — the §5.1 experience in
//! one binary.
//!
//! Drives the Fast-Fair PM B+-tree with the paper's workload shape (1k-
//! insert load phase, 8 threads, 30/30/30/10 zipfian mix), runs the
//! analysis, scores the reports against the ground truth, and prints a
//! Table 2-style summary: bug #1 (the known grow-split race) and bug #2
//! (the previously unknown cascading-split edge case) both surface from a
//! single execution.
//!
//! Run with: `cargo run --example fastfair_hunt [ops]`

use hawkset::apps::fastfair::FastFairApp;
use hawkset::apps::{score, Application, RaceClass};
use hawkset::core::analysis::Analyzer;

fn main() {
    let ops = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let app = FastFairApp;
    println!("running Fast-Fair with {ops} main-phase operations on 8 threads...");
    let wl = app.default_workload(ops, 42);
    let trace = app.execute(&wl);
    println!(
        "recorded {} events ({} PM accesses)",
        trace.events.len(),
        trace.access_count()
    );

    let report = Analyzer::default().run(&trace);
    let breakdown = score(&report.races, &app.known_races());

    println!(
        "\n{} distinct persistency-induced races reported:",
        report.races.len()
    );
    for race in &report.races {
        let class = app
            .known_races()
            .iter()
            .find(|k| k.matches(race))
            .map(|k| match (k.class, k.id) {
                (RaceClass::Malign, id) => format!("MALIGN (Table 2 bug #{id})"),
                (RaceClass::Benign, _) => "benign".to_string(),
            })
            .unwrap_or_else(|| "unclassified".to_string());
        println!("  [{class}] {}", race.summary());
    }

    println!("\ndetected Table 2 bug ids: {:?}", breakdown.detected_ids);
    let (mr, br, fp) = breakdown.counts();
    println!("breakdown: {mr} malign / {br} benign / {fp} false positives");
    if breakdown.detected_ids.contains(&1) && breakdown.detected_ids.contains(&2) {
        println!("\nboth Fast-Fair bugs found in ONE execution — no guided schedules needed.");
    } else {
        println!("\nworkload lacked coverage for some bug (try more ops): a workload must");
        println!("exercise the racy operations for lockset analysis to see them (§5.2).");
    }
}
