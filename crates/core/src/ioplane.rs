//! The I/O fault plane: every durability-critical filesystem operation
//! goes through one seam.
//!
//! HawkSet's own persistence layer — the serve crate's COW race database,
//! analysis checkpoint sessions, metrics flushes — must survive exactly
//! the storage failures it hunts in other programs: full disks (`ENOSPC`),
//! dying media (`EIO`), torn writes that a reordering filesystem commits
//! past a rename, and the fsyncgate trap where a failed `fsync` silently
//! drops dirty pages and a blind retry reports success over lost data.
//! Unit tests cannot make a real disk fail on cue, so the write paths are
//! threaded through an [`IoPlane`]: the [`RealIo`] backend is the thin
//! passthrough production uses, and [`ScriptedIo`] replays a deterministic
//! [`FaultScript`] so a test (or a whole daemon process, via
//! [`HAWKSET_IO_FAULT_SCRIPT`]) experiences an exact schedule of failures.
//!
//! Operations carry a **site** label (`"snapshot"`, `"current"`,
//! `"checkpoint"`, `"metrics"`, `"probe"`) naming the caller, and an **op**
//! name (`write`, `fsync`, `rename`, `dirsync`). The scripted backend
//! counts occurrences per `(site, op)` pair, so a schedule like
//! `snapshot:fsync:1:eio` means "the second fsync of a snapshot file fails
//! with EIO" — deterministic under a deterministic caller.
//!
//! The one blessed durability sequence is [`write_atomic`]: tmp file →
//! write → fsync → rename → directory fsync. Every failure mode a script
//! can inject lands somewhere inside that sequence, which is what lets the
//! chaos suite enumerate them exhaustively.

use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable holding a [`FaultScript`] for the whole process.
/// [`plane_from_env`] consults it; the daemon and the CLI both route their
/// durable writes through the resulting plane, so an e2e test can subject
/// a real process to a scripted storage failure schedule.
pub const HAWKSET_IO_FAULT_SCRIPT: &str = "HAWKSET_IO_FAULT_SCRIPT";

/// The filesystem seam. All methods mirror one concrete syscall-level
/// operation; implementations must be usable from many threads.
pub trait IoPlane: Send + Sync + fmt::Debug {
    /// Creates (or truncates) `path` and writes `bytes` to it. A torn
    /// variant may persist only a prefix and still report success — the
    /// caller's checksum, not this call, is the integrity authority.
    fn write_file(&self, site: &str, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Flushes `path`'s data and metadata to stable storage. Fsyncgate
    /// rule for callers: after a failure the file's durability is
    /// *unknowable* — never retry the fsync in place and never trust the
    /// file; write fresh bytes under a fresh name.
    fn fsync(&self, site: &str, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to`.
    fn rename(&self, site: &str, from: &Path, to: &Path) -> io::Result<()>;

    /// Makes a completed rename in `dir` itself durable.
    fn fsync_dir(&self, site: &str, dir: &Path) -> io::Result<()>;
}

/// The production backend: straight passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealIo;

impl IoPlane for RealIo {
    fn write_file(&self, _site: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn fsync(&self, _site: &str, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, _site: &str, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn fsync_dir(&self, _site: &str, dir: &Path) -> io::Result<()> {
        // Directory fsync is how the rename itself becomes durable. Some
        // platforms/filesystems refuse to open directories; that is not a
        // storage failure, so only a *sync* error surfaces.
        match std::fs::File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

/// What a scripted rule injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC` — the disk is full. The operation has no effect.
    Enospc,
    /// `EIO` — the device failed. The operation's effect is unknowable;
    /// the scripted backend models the worst case (no effect for writes,
    /// lost durability for fsync).
    Eio,
    /// Write only a prefix of the bytes and **report success** — the
    /// torn-write lie of a filesystem that commits a rename before the
    /// data blocks. Only meaningful for `write`.
    Torn,
    /// Write only a prefix and report `ENOSPC` — an honest short write.
    /// Only meaningful for `write`.
    Short,
}

impl FaultKind {
    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "enospc" => FaultKind::Enospc,
            "eio" => FaultKind::Eio,
            "torn" => FaultKind::Torn,
            "short" => FaultKind::Short,
            _ => return None,
        })
    }

    fn as_error(self) -> io::Error {
        match self {
            // Raw OS errno so the message reads like the real failure
            // ("No space left on device", "Input/output error").
            FaultKind::Enospc | FaultKind::Short => injected(28, "ENOSPC"),
            FaultKind::Eio | FaultKind::Torn => injected(5, "EIO"),
        }
    }
}

fn injected(errno: i32, tag: &str) -> io::Error {
    #[cfg(unix)]
    {
        let _ = tag;
        io::Error::from_raw_os_error(errno)
    }
    #[cfg(not(unix))]
    {
        let _ = errno;
        io::Error::other(format!("injected {tag}"))
    }
}

/// Which occurrences of a `(site, op)` pair a rule fires on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Occurrence {
    /// Every occurrence.
    All,
    /// Exactly occurrence `n` (0-based).
    Exact(u64),
    /// Occurrences `from..=to`.
    Range(u64, u64),
    /// Occurrence `n` and everything after it.
    From(u64),
}

impl Occurrence {
    fn matches(&self, n: u64) -> bool {
        match *self {
            Occurrence::All => true,
            Occurrence::Exact(k) => n == k,
            Occurrence::Range(a, b) => (a..=b).contains(&n),
            Occurrence::From(k) => n >= k,
        }
    }

    fn parse(s: &str) -> Option<Self> {
        if s == "*" {
            return Some(Occurrence::All);
        }
        if let Some(n) = s.strip_suffix('+') {
            return Some(Occurrence::From(n.parse().ok()?));
        }
        if let Some((a, b)) = s.split_once('-') {
            return Some(Occurrence::Range(a.parse().ok()?, b.parse().ok()?));
        }
        Some(Occurrence::Exact(s.parse().ok()?))
    }
}

/// One scripted fault: fire `kind` on matching occurrences of `(site,
/// op)`. Site and op accept `*` as a wildcard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// Site label the caller passes (`snapshot`, `current`, ...), or `*`.
    pub site: String,
    /// Operation name (`write`, `fsync`, `rename`, `dirsync`), or `*`.
    pub op: String,
    /// Which occurrences fire.
    pub occurrence: Occurrence,
    /// The injected failure.
    pub kind: FaultKind,
}

impl FaultRule {
    fn applies(&self, site: &str, op: &str, n: u64) -> bool {
        (self.site == "*" || self.site == site)
            && (self.op == "*" || self.op == op)
            && self.occurrence.matches(n)
    }
}

/// A deterministic schedule of injected storage failures.
///
/// Text form: semicolon-separated rules `site:op:occurrence:kind`, e.g.
///
/// ```text
/// snapshot:fsync:1:eio;current:write:2-3:enospc;metrics:*:*:eio
/// ```
///
/// * `site` — caller label, or `*`
/// * `op` — `write` | `fsync` | `rename` | `dirsync`, or `*`
/// * `occurrence` — `N`, `N-M`, `N+`, or `*` (0-based, counted per
///   `(site, op)` pair)
/// * `kind` — `enospc` | `eio` | `torn` | `short` (`torn`/`short` only on
///   `write`)
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultScript {
    /// The rules, checked in order; the first match fires.
    pub rules: Vec<FaultRule>,
}

impl FaultScript {
    /// Parses the text form. Errors name the offending rule.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut rules = Vec::new();
        for part in s.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let fields: Vec<&str> = part.split(':').collect();
            let [site, op, occ, kind] = fields[..] else {
                return Err(format!(
                    "fault rule `{part}`: expected site:op:occurrence:kind"
                ));
            };
            if !matches!(op, "write" | "fsync" | "rename" | "dirsync" | "*") {
                return Err(format!("fault rule `{part}`: unknown op `{op}`"));
            }
            let occurrence = Occurrence::parse(occ)
                .ok_or_else(|| format!("fault rule `{part}`: bad occurrence `{occ}`"))?;
            let kind = FaultKind::parse(kind)
                .ok_or_else(|| format!("fault rule `{part}`: unknown kind `{kind}`"))?;
            if matches!(kind, FaultKind::Torn | FaultKind::Short) && op != "write" {
                return Err(format!(
                    "fault rule `{part}`: `{}` applies only to write",
                    if kind == FaultKind::Torn {
                        "torn"
                    } else {
                        "short"
                    }
                ));
            }
            rules.push(FaultRule {
                site: site.to_string(),
                op: op.to_string(),
                occurrence,
                kind,
            });
        }
        Ok(Self { rules })
    }
}

/// The scripted backend: a [`RealIo`] passthrough that consults a
/// [`FaultScript`] before every operation. Occurrence counters are per
/// `(site, op)` and advance on every call, matched or not, so a schedule
/// reads as "the Nth fsync of a snapshot" regardless of other rules.
#[derive(Debug)]
pub struct ScriptedIo {
    script: FaultScript,
    counters: Mutex<std::collections::HashMap<(String, String), u64>>,
    injected: AtomicU64,
}

impl ScriptedIo {
    /// A scripted plane replaying `script`.
    pub fn new(script: FaultScript) -> Self {
        Self {
            script,
            counters: Mutex::new(std::collections::HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Total faults injected so far — lets tests assert the schedule
    /// actually fired.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Advances the `(site, op)` counter and returns the fault to inject
    /// at this occurrence, if any.
    fn consult(&self, site: &str, op: &str) -> Option<FaultKind> {
        let mut counters = self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let n = counters
            .entry((site.to_string(), op.to_string()))
            .or_insert(0);
        let occurrence = *n;
        *n += 1;
        drop(counters);
        let kind = self
            .script
            .rules
            .iter()
            .find(|r| r.applies(site, op, occurrence))
            .map(|r| r.kind)?;
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(kind)
    }
}

impl IoPlane for ScriptedIo {
    fn write_file(&self, site: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.consult(site, "write") {
            None => RealIo.write_file(site, path, bytes),
            Some(FaultKind::Torn) => {
                // The lie: half the bytes land, the call reports success.
                RealIo.write_file(site, path, &bytes[..bytes.len() / 2])
            }
            Some(FaultKind::Short) => {
                let _ = RealIo.write_file(site, path, &bytes[..bytes.len() / 2]);
                Err(FaultKind::Short.as_error())
            }
            Some(kind) => Err(kind.as_error()),
        }
    }

    fn fsync(&self, site: &str, path: &Path) -> io::Result<()> {
        match self.consult(site, "fsync") {
            None => RealIo.fsync(site, path),
            // Model the fsyncgate worst case: the failed fsync dropped the
            // dirty pages on the floor — truncate the file so a caller that
            // wrongly trusts it anyway is caught by its checksum.
            Some(kind) => {
                let _ = std::fs::write(path, b"");
                Err(kind.as_error())
            }
        }
    }

    fn rename(&self, site: &str, from: &Path, to: &Path) -> io::Result<()> {
        match self.consult(site, "rename") {
            None => RealIo.rename(site, from, to),
            Some(kind) => Err(kind.as_error()),
        }
    }

    fn fsync_dir(&self, site: &str, dir: &Path) -> io::Result<()> {
        match self.consult(site, "dirsync") {
            None => RealIo.fsync_dir(site, dir),
            Some(kind) => Err(kind.as_error()),
        }
    }
}

/// The process's I/O plane: [`ScriptedIo`] when [`HAWKSET_IO_FAULT_SCRIPT`]
/// is set (a malformed script is an error — silently ignoring a chaos
/// schedule would make every chaos test vacuously green), [`RealIo`]
/// otherwise.
pub fn plane_from_env() -> Result<Arc<dyn IoPlane>, String> {
    match std::env::var(HAWKSET_IO_FAULT_SCRIPT) {
        Ok(s) if !s.trim().is_empty() => {
            let script =
                FaultScript::parse(&s).map_err(|e| format!("{HAWKSET_IO_FAULT_SCRIPT}: {e}"))?;
            Ok(Arc::new(ScriptedIo::new(script)))
        }
        _ => Ok(Arc::new(RealIo)),
    }
}

/// The one blessed durability sequence: `name.tmp` → write → fsync →
/// rename to `name` → fsync of `dir`. The rename is the commit point; the
/// directory fsync makes the rename durable. Every step goes through the
/// plane, so a scripted schedule can fail any of them.
pub fn write_atomic(
    plane: &dyn IoPlane,
    site: &str,
    dir: &Path,
    name: &str,
    bytes: &[u8],
) -> io::Result<()> {
    let path = dir.join(name);
    let tmp = dir.join(format!("{name}.tmp"));
    let result = (|| {
        plane.write_file(site, &tmp, bytes)?;
        plane.fsync(site, &tmp)?;
        plane.rename(site, &tmp, &path)?;
        plane.fsync_dir(site, dir)
    })();
    if result.is_err() {
        // A tmp file that never committed is garbage; a target whose
        // commit is in doubt (dirsync failure) is the caller's problem —
        // its checksum decides on the next read.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hwk-ioplane-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn script_parses_every_field_form() {
        let s = FaultScript::parse(
            "snapshot:fsync:1:eio;*:write:2-4:enospc;current:*:3+:eio;m:rename:*:enospc",
        )
        .unwrap();
        assert_eq!(s.rules.len(), 4);
        assert_eq!(s.rules[0].occurrence, Occurrence::Exact(1));
        assert_eq!(s.rules[1].occurrence, Occurrence::Range(2, 4));
        assert_eq!(s.rules[1].site, "*");
        assert_eq!(s.rules[2].occurrence, Occurrence::From(3));
        assert_eq!(s.rules[3].occurrence, Occurrence::All);
        // Empty segments are tolerated (trailing semicolons).
        assert_eq!(FaultScript::parse("  ;; ").unwrap().rules.len(), 0);
    }

    #[test]
    fn script_rejects_malformed_rules() {
        for bad in [
            "snapshot:fsync:1", // missing kind
            "snapshot:fsync:1:kaboom",
            "snapshot:open:1:eio",   // unknown op
            "snapshot:fsync:x:eio",  // bad occurrence
            "snapshot:fsync:1:torn", // torn only applies to write
            "snapshot:rename:1:short",
        ] {
            assert!(FaultScript::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn occurrences_count_per_site_op_pair() {
        let plane = ScriptedIo::new(FaultScript::parse("a:write:1:enospc").unwrap());
        let dir = tmpdir("occ");
        let p = dir.join("f");
        // Occurrence 0 at (a, write) passes; a different site does not
        // advance a's counter.
        plane.write_file("a", &p, b"x").unwrap();
        plane.write_file("b", &p, b"x").unwrap();
        let err = plane.write_file("a", &p, b"x").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        plane.write_file("a", &p, b"x").unwrap();
        assert_eq!(plane.injected(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_reports_success_with_half_the_bytes() {
        let plane = ScriptedIo::new(FaultScript::parse("s:write:0:torn").unwrap());
        let dir = tmpdir("torn");
        let p = dir.join("f");
        plane.write_file("s", &p, b"0123456789").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"01234");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_fsync_truncates_like_dropped_pages() {
        let plane = ScriptedIo::new(FaultScript::parse("s:fsync:0:eio").unwrap());
        let dir = tmpdir("fsyncgate");
        let p = dir.join("f");
        plane.write_file("s", &p, b"precious").unwrap();
        let err = plane.fsync("s", &p).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        assert_eq!(std::fs::read(&p).unwrap(), b"", "dirty pages are gone");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_commits_through_the_real_plane() {
        let dir = tmpdir("atomic");
        write_atomic(&RealIo, "s", &dir, "file.json", b"payload").unwrap();
        assert_eq!(std::fs::read(dir.join("file.json")).unwrap(), b"payload");
        assert!(!dir.join("file.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_failure_leaves_no_tmp_and_keeps_the_old_file() {
        let dir = tmpdir("atomic-fail");
        write_atomic(&RealIo, "s", &dir, "file.json", b"old").unwrap();
        for script in [
            "s:write:*:enospc",
            "s:fsync:*:eio",
            "s:rename:*:eio",
            "s:write:*:short",
        ] {
            let plane = ScriptedIo::new(FaultScript::parse(script).unwrap());
            let err = write_atomic(&plane, "s", &dir, "file.json", b"new").unwrap_err();
            assert!(err.raw_os_error().is_some(), "{script}");
            assert!(!dir.join("file.json.tmp").exists(), "{script}: tmp cleaned");
            assert_eq!(
                std::fs::read(dir.join("file.json")).unwrap(),
                b"old",
                "{script}: committed file untouched"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plane_from_env_requires_a_well_formed_script() {
        // Not using set_var: the test process is multi-threaded. Parse
        // coverage above stands in; here only the unset path is checked.
        assert!(plane_from_env().is_ok());
    }
}
