//! Quickstart: write a tiny concurrent PM program against the instrumented
//! runtime and let HawkSet find the persistency-induced race.
//!
//! The program is the paper's Figure 1c: thread T1 stores a PM variable
//! under lock A but persists it only after releasing the lock; thread T2
//! loads the variable under the same lock. Classical lockset analysis would
//! call this correct — both accesses share lock A — but the value T2 reads
//! is *visible yet not guaranteed durable*, so a crash can expose T2's side
//! effects without T1's store. HawkSet's effective lockset catches it.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use hawkset::core::analysis::Analyzer;
use hawkset::runtime::{PmEnv, PmMutex};

fn main() {
    let env = PmEnv::new();
    let pool = env.map_pool("/mnt/pmem/quickstart", 4096);
    let main = env.main_thread();
    let x = pool.base();
    let lock = Arc::new(PmMutex::new(&env, ()));

    // Ordinary setup: initialize and persist X before publishing it.
    pool.store_u64(&main, x, 0);
    pool.persist(&main, x, 8);

    // T1: store X under lock A ... persist too late.
    let (p, l) = (pool.clone(), Arc::clone(&lock));
    let t1 = env.spawn(&main, move |t| {
        let _op = t.frame("writer");
        {
            let _g = l.lock(t);
            p.store_u64(t, x, 42);
        } // lock released, X still not durable ...
        p.persist(t, x, 8); // ... persisted here, outside the critical section
    });

    // T2: load X under lock A and "reply to a client" based on it.
    let (p, l) = (pool.clone(), Arc::clone(&lock));
    let t2 = env.spawn(&main, move |t| {
        let _op = t.frame("reader");
        let _g = l.lock(t);
        p.load_u64(t, x)
    });

    t1.join(&main);
    let seen = t2.join(&main);
    println!("T2 observed X = {seen} (may be 0 or 42 depending on the schedule)\n");

    let trace = env.finish();
    let report = Analyzer::default().run(&trace);
    print!("{}", report.render(&trace));

    assert_eq!(report.races.len(), 1, "the Figure-1c race must be detected");
    println!(
        "\nNote: the race is reported regardless of which interleaving actually ran — \
         lockset analysis needs no lucky schedule, only coverage."
    );
}
