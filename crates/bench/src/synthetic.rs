//! Synthetic trace generation for microbenchmarks.
//!
//! The criterion benches need traces whose size and shape are controlled
//! precisely (number of threads, accesses, locking discipline, persist
//! discipline), independent of any application's logic.

use hawkset_core::addr::AddrRange;
use hawkset_core::trace::ThreadId;
use hawkset_core::trace::{EventKind, Frame, LockId, LockMode, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic trace.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticSpec {
    /// Worker threads (plus the main thread).
    pub threads: u32,
    /// PM operations per worker.
    pub ops_per_thread: u64,
    /// Distinct 8-byte PM locations.
    pub locations: u64,
    /// Fraction (percent) of operations that are stores.
    pub store_pct: u8,
    /// Fraction (percent) of stores persisted promptly (flush + fence in
    /// the same critical section).
    pub persist_pct: u8,
    /// Fraction (percent) of operations performed under a location lock.
    pub locked_pct: u8,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A balanced default: 4 threads, mixed discipline.
    pub fn medium(ops_per_thread: u64) -> Self {
        Self {
            threads: 4,
            ops_per_thread,
            locations: 256,
            store_pct: 40,
            persist_pct: 70,
            locked_pct: 60,
            seed: 7,
        }
    }
}

/// Generates an interleaved trace matching `spec`.
///
/// Threads are round-robin interleaved (a legal observation order), so the
/// trace exercises cross-thread window/load pairing heavily.
pub fn synthetic_trace(spec: &SyntheticSpec) -> Trace {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = TraceBuilder::new();
    let base = 0x1000_0000u64;
    let stack_store = b.intern_stack([Frame::new("synthetic::store", "synthetic.rs", 1)]);
    let stack_load = b.intern_stack([Frame::new("synthetic::load", "synthetic.rs", 2)]);
    let stack_sync = b.intern_stack([Frame::new("synthetic::sync", "synthetic.rs", 3)]);

    for t in 1..=spec.threads {
        b.push(
            ThreadId(0),
            stack_sync,
            EventKind::ThreadCreate { child: ThreadId(t) },
        );
    }
    for i in 0..spec.ops_per_thread {
        for t in 1..=spec.threads {
            let tid = ThreadId(t);
            let loc = rng.gen_range(0..spec.locations);
            let addr = base + loc * 8;
            let range = AddrRange::new(addr, 8);
            let lock = LockId(loc % 32 + 1);
            let locked = rng.gen_range(0..100u8) < spec.locked_pct;
            if locked {
                b.push(
                    tid,
                    stack_sync,
                    EventKind::Acquire {
                        lock,
                        mode: LockMode::Exclusive,
                    },
                );
            }
            if rng.gen_range(0..100u8) < spec.store_pct {
                b.push(
                    tid,
                    stack_store,
                    EventKind::Store {
                        range,
                        non_temporal: false,
                        atomic: false,
                    },
                );
                if rng.gen_range(0..100u8) < spec.persist_pct {
                    b.push(tid, stack_store, EventKind::Flush { addr });
                    b.push(tid, stack_store, EventKind::Fence);
                }
            } else {
                b.push(
                    tid,
                    stack_load,
                    EventKind::Load {
                        range,
                        atomic: false,
                    },
                );
            }
            if locked {
                b.push(tid, stack_sync, EventKind::Release { lock });
            }
            let _ = i;
        }
    }
    for t in 1..=spec.threads {
        b.push(
            ThreadId(0),
            stack_sync,
            EventKind::ThreadJoin { child: ThreadId(t) },
        );
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkset_core::analysis::Analyzer;

    #[test]
    fn synthetic_trace_is_valid_and_analyzable() {
        let trace = synthetic_trace(&SyntheticSpec::medium(200));
        assert!(trace.validate().is_ok());
        let report = Analyzer::default().run(&trace);
        // Unlocked / unpersisted stores against loads must yield races.
        assert!(!report.races.is_empty());
        assert!(report.stats.pairing.candidate_pairs > 0);
    }

    #[test]
    fn fully_disciplined_trace_is_clean() {
        let spec = SyntheticSpec {
            threads: 4,
            ops_per_thread: 100,
            locations: 64,
            store_pct: 40,
            persist_pct: 100,
            locked_pct: 100,
            seed: 3,
        };
        let trace = synthetic_trace(&spec);
        let report = Analyzer::default().run(&trace);
        assert!(
            report.is_clean(),
            "locked + promptly-persisted stores cannot race: {:?}",
            report.races.iter().map(|r| r.summary()).collect::<Vec<_>>()
        );
    }
}
