//! Experiment E1 — regenerates **Table 2**: the persistency-induced races
//! HawkSet detects across the nine applications.
//!
//! Each application runs its §5 workload (default 2 000 main-phase
//! operations, 8 threads; `--ops N` to change, `--full` for the paper's
//! 100k), the trace is analyzed, and every report matching a ground-truth
//! malign entry is printed in Table 2's format. The expected outcome is
//! all twenty bug ids, including the hard-to-reach TurboHash #3 (needs
//! `--full`-scale workloads to fill buckets) and Fast-Fair #2.

use hawkset_bench::{apps, arg_flag, arg_u64, run_app, TextTable};
use hawkset_core::analysis::AnalysisConfig;
use pm_apps::RaceClass;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = arg_flag(&args, "--full");
    let ops = arg_u64(&args, "--ops", if full { 100_000 } else { 2_000 });
    let seed = arg_u64(&args, "--seed", 42);
    let cfg = AnalysisConfig::default();

    println!("HawkSet reproduction — Table 2 (workload: {ops} ops, seed {seed})\n");
    let mut table = TextTable::new(&[
        "Application",
        "#",
        "New",
        "Store Access",
        "Load Access",
        "Description",
    ]);
    let mut detected_total = 0usize;
    let mut new_total = 0usize;

    for app in apps() {
        let run = run_app(app.as_ref(), ops, seed, &cfg);
        let known = app.known_races();
        let mut ids = run.breakdown.detected_ids.clone();
        ids.sort_unstable();
        for id in ids {
            // One row per (id, store site) as in the paper's Table 2.
            let mut sites: Vec<&pm_apps::KnownRace> = known
                .iter()
                .filter(|k| k.id == id && k.class == RaceClass::Malign)
                .filter(|k| run.report.races.iter().any(|r| k.matches(r)))
                .collect();
            sites.dedup_by_key(|k| k.store_fn);
            let store_sites = sites
                .iter()
                .map(|k| k.store_fn)
                .collect::<Vec<_>>()
                .join(", ");
            let load_sites = {
                let mut l: Vec<&str> = sites.iter().map(|k| k.load_fn).collect();
                l.dedup();
                l.join(", ")
            };
            let k = sites.first().expect("detected id has entries");
            table.row(vec![
                app.name().to_string(),
                id.to_string(),
                if k.new { "yes".into() } else { "no".into() },
                store_sites,
                load_sites,
                k.description.to_string(),
            ]);
            detected_total += 1;
            if k.new {
                new_total += 1;
            }
        }
        for missed in &run.breakdown.missed {
            eprintln!(
                "note: {}: bug #{} ({} -> {}) not detected at this workload size — \
                 expected for size-gated bugs (TurboHash #3 needs --full)",
                app.name(),
                missed.id,
                missed.store_fn,
                missed.load_fn,
            );
        }
    }

    println!("{}", table.render());
    println!("{detected_total} distinct Table-2 bugs detected ({new_total} previously unknown).");
    println!("Paper: 20 races, 7 previously unknown (store/load sites are frame names, not C line numbers).");
}
