//! Persistent-memory address arithmetic.
//!
//! HawkSet reasons about PM at two granularities: raw byte ranges (for
//! overlap-aware race pairing, §3.2 "partially overlapping races") and
//! 64-byte cache lines (for the worst-case persistence simulation, §3.2
//! stage 1). This module provides both.

use serde::{Deserialize, Serialize};

/// Size of a cache line in bytes on the simulated platform.
///
/// Intel Optane persistency operates at cache-line granularity: `clwb`,
/// `clflushopt` and `clflush` all write back one line.
pub const CACHE_LINE: u64 = 64;

/// A byte address inside the simulated persistent address space.
///
/// Addresses are plain `u64`s; the runtime assigns each mapped PM pool a
/// disjoint base so that addresses are globally unique across pools, exactly
/// like virtual addresses of `mmap`ed DAX files in the original tool.
pub type PmAddr = u64;

/// Identifier of a 64-byte cache line (the address divided by [`CACHE_LINE`]).
pub type LineId = u64;

/// Returns the cache line containing `addr`.
#[inline]
pub fn line_of(addr: PmAddr) -> LineId {
    addr / CACHE_LINE
}

/// Returns the first byte address of cache line `line`.
#[inline]
pub fn line_base(line: LineId) -> PmAddr {
    line * CACHE_LINE
}

/// A half-open byte range `[start, start + len)` in PM.
///
/// Ranges are the unit of access in the trace: every store and load carries
/// one. The analysis pairs accesses whose ranges overlap, which is how
/// HawkSet "detects partially overlapping races" (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AddrRange {
    /// First byte of the access.
    pub start: PmAddr,
    /// Length of the access in bytes. Always non-zero for real accesses.
    pub len: u32,
}

impl AddrRange {
    /// Creates a range covering `len` bytes starting at `start`.
    #[inline]
    pub const fn new(start: PmAddr, len: u32) -> Self {
        Self { start, len }
    }

    /// One byte past the end of the range.
    ///
    /// Saturating: a corrupt trace can carry a range whose end would wrap
    /// past the address space, and the analysis must degrade rather than
    /// panic on it (real accesses never get near the top of the space).
    #[inline]
    pub const fn end(&self) -> PmAddr {
        self.start.saturating_add(self.len as u64)
    }

    /// Returns `true` if the two ranges share at least one byte.
    #[inline]
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Returns `true` if `other` is fully contained in `self`.
    #[inline]
    pub fn contains(&self, other: &AddrRange) -> bool {
        self.start <= other.start && other.end() <= self.end()
    }

    /// Returns the overlapping sub-range, if any.
    pub fn intersection(&self, other: &AddrRange) -> Option<AddrRange> {
        let start = self.start.max(other.start);
        let end = self.end().min(other.end());
        if start < end {
            Some(AddrRange::new(start, (end - start) as u32))
        } else {
            None
        }
    }

    /// Subtracts `other` from `self`, yielding up to two remaining pieces.
    ///
    /// Used by the store-window tracker: an overwrite of the middle of an
    /// earlier store leaves the earlier store's head and tail still visible.
    pub fn subtract(&self, other: &AddrRange) -> (Option<AddrRange>, Option<AddrRange>) {
        let head = if other.start > self.start {
            let end = other.start.min(self.end());
            Some(AddrRange::new(self.start, (end - self.start) as u32))
        } else {
            None
        };
        let tail = if other.end() < self.end() {
            let start = other.end().max(self.start);
            Some(AddrRange::new(start, (self.end() - start) as u32))
        } else {
            None
        };
        (head, tail)
    }

    /// Iterates over the ids of every cache line the range touches.
    pub fn lines(&self) -> impl Iterator<Item = LineId> {
        let first = line_of(self.start);
        let last = line_of(self.end().saturating_sub(1).max(self.start));
        first..=last
    }

    /// Iterates over the 8-byte-aligned word ids the range touches.
    ///
    /// Words are the granularity of the Initialization Removal Heuristic's
    /// publication tracking (§3.1.3).
    pub fn words(&self) -> impl Iterator<Item = u64> {
        let first = self.start / 8;
        let last = self.end().saturating_sub(1).max(self.start) / 8;
        first..=last
    }

    /// Returns `true` if the range crosses a cache-line boundary.
    ///
    /// Cross-line accesses are what make TurboHash's bug #3 possible: the
    /// metadata flush covers only the first line of the bucket entry.
    pub fn crosses_line(&self) -> bool {
        line_of(self.start) != line_of(self.end().saturating_sub(1).max(self.start))
    }
}

impl core::fmt::Debug for AddrRange {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}+{}", self.start, self.len)
    }
}

impl core::fmt::Display for AddrRange {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(line_base(2), 128);
    }

    #[test]
    fn overlap_basic() {
        let a = AddrRange::new(0, 8);
        let b = AddrRange::new(4, 8);
        let c = AddrRange::new(8, 8);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn overlap_adjacent_is_disjoint() {
        let a = AddrRange::new(100, 4);
        let b = AddrRange::new(104, 4);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn contains_and_intersection() {
        let outer = AddrRange::new(0, 64);
        let inner = AddrRange::new(16, 8);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert_eq!(outer.intersection(&inner), Some(inner));
        assert_eq!(
            AddrRange::new(0, 8).intersection(&AddrRange::new(4, 8)),
            Some(AddrRange::new(4, 4))
        );
        assert_eq!(
            AddrRange::new(0, 4).intersection(&AddrRange::new(4, 4)),
            None
        );
    }

    #[test]
    fn subtract_middle_leaves_head_and_tail() {
        let whole = AddrRange::new(0, 24);
        let mid = AddrRange::new(8, 8);
        let (head, tail) = whole.subtract(&mid);
        assert_eq!(head, Some(AddrRange::new(0, 8)));
        assert_eq!(tail, Some(AddrRange::new(16, 8)));
    }

    #[test]
    fn subtract_full_cover_leaves_nothing() {
        let whole = AddrRange::new(8, 8);
        let cover = AddrRange::new(0, 32);
        assert_eq!(whole.subtract(&cover), (None, None));
    }

    #[test]
    fn subtract_prefix_and_suffix() {
        let whole = AddrRange::new(0, 16);
        let (head, tail) = whole.subtract(&AddrRange::new(0, 8));
        assert_eq!(head, None);
        assert_eq!(tail, Some(AddrRange::new(8, 8)));
        let (head, tail) = whole.subtract(&AddrRange::new(8, 8));
        assert_eq!(head, Some(AddrRange::new(0, 8)));
        assert_eq!(tail, None);
    }

    #[test]
    fn lines_iteration() {
        let r = AddrRange::new(60, 8); // crosses line 0 -> 1
        let lines: Vec<_> = r.lines().collect();
        assert_eq!(lines, vec![0, 1]);
        assert!(r.crosses_line());
        let r2 = AddrRange::new(0, 64);
        assert!(!r2.crosses_line());
        assert_eq!(r2.lines().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn words_iteration() {
        let r = AddrRange::new(6, 4); // words 0 and 1
        assert_eq!(r.words().collect::<Vec<_>>(), vec![0, 1]);
    }
}
