//! Differential test: the runtime's online shadow persistence state and
//! the analysis-side worst-case cache simulation implement the *same*
//! semantics, so for any instrumented execution the bytes the runtime
//! calls durable must be exactly the bytes whose windows the analysis
//! closed as persisted.

use hawkset::core::memsim::{simulate, CloseReason, SimConfig};
use hawkset::runtime::PmEnv;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Step {
    Store { word: u64, value: u64 },
    StoreNt { word: u64, value: u64 },
    Flush { word: u64 },
    Fence,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0u8..4, 0u64..32, any::<u64>()).prop_map(|(k, word, value)| match k {
            0 => Step::Store { word, value },
            1 => Step::StoreNt { word, value },
            2 => Step::Flush { word },
            _ => Step::Fence,
        }),
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-threaded differential run: after replaying random PM
    /// operations, (a) the crash image contains a word's latest value iff
    /// the analysis closed that word's newest window as Persisted, and
    /// (b) unpersisted words keep their previous durable value.
    #[test]
    fn crash_image_matches_analysis_windows(steps in arb_steps()) {
        let env = PmEnv::new();
        let pool = env.map_pool("/mnt/pmem/diff", 4096);
        let main = env.main_thread();
        let base = pool.base();

        for step in &steps {
            match step {
                Step::Store { word, value } => pool.store_u64(&main, base + word * 8, *value),
                Step::StoreNt { word, value } => {
                    pool.store_u64_nt(&main, base + word * 8, *value)
                }
                Step::Flush { word } => pool.flush(&main, base + word * 8),
                Step::Fence => main.fence(),
            }
        }

        let image = pool.crash_image();
        let trace = env.finish();
        let out = simulate(&trace, &SimConfig { irh: false, eadr: false, threads: 1, memory_budget: None });

        // For every word: the newest window decides durability.
        for word in 0..32u64 {
            let addr = base + word * 8;
            let newest = out
                .windows
                .iter()
                .filter(|w| w.range.start == addr)
                .max_by_key(|w| w.store_seq);
            let durable = u64::from_le_bytes(
                image[(word * 8) as usize..(word * 8 + 8) as usize].try_into().unwrap(),
            );
            match newest {
                Some(w) if w.close == CloseReason::Persisted => {
                    // Find the value of that store from the step list: the
                    // w.store_seq-th event is the store; rather than decode
                    // events, check agreement differently below.
                    let _ = durable;
                }
                Some(w) => {
                    // Newest window not persisted: the analysis says the
                    // latest value is NOT guaranteed durable. The runtime
                    // must agree: the volatile value may differ from the
                    // durable one, but the durable one must come from some
                    // OLDER persisted window (or be zero).
                    prop_assert_ne!(w.close, CloseReason::Persisted);
                }
                None => {
                    prop_assert_eq!(durable, 0, "never-written word must stay zero");
                }
            }
        }

        // Strong agreement: runtime-durable volatile==durable words are
        // exactly those whose newest analysis window persisted.
        let volatile = pool.volatile_image();
        for word in 0..32u64 {
            let addr = base + word * 8;
            let newest = out
                .windows
                .iter()
                .filter(|w| w.range.start == addr)
                .max_by_key(|w| w.store_seq);
            if let Some(w) = newest {
                let v = u64::from_le_bytes(
                    volatile[(word * 8) as usize..(word * 8 + 8) as usize].try_into().unwrap(),
                );
                let d = u64::from_le_bytes(
                    image[(word * 8) as usize..(word * 8 + 8) as usize].try_into().unwrap(),
                );
                if w.close == CloseReason::Persisted {
                    prop_assert_eq!(
                        v, d,
                        "word {}: analysis says persisted but runtime lost it", word
                    );
                }
                // (v == d can also hold by coincidence for unpersisted
                // windows — e.g. the same value was durable before — so no
                // converse assertion.)
            }
        }

        // Window accounting matches the runtime's dirty-entry view.
        prop_assert_eq!(
            out.stats.windows_created,
            out.stats.windows_persisted
                + out.stats.windows_overwritten
                + out.stats.windows_unpersisted
        );
    }
}
