//! End-to-end detection microbenchmark: instrumented execution + analysis
//! of a real application at small scale (the per-workload cost that
//! Table 3's "avg time per execution" measures).

use criterion::{criterion_group, criterion_main, Criterion};
use hawkset_core::analysis::Analyzer;
use pm_apps::{AppWorkload, Application};
use pm_workloads::WorkloadSpec;

fn bench_fastfair_end_to_end(c: &mut Criterion) {
    let app = pm_apps::fastfair::FastFairApp;
    let wl = app.default_workload(400, 7);
    c.bench_function("fastfair-400ops-exec+analyze", |b| {
        b.iter(|| {
            let trace = app.execute(&wl);
            Analyzer::default().run(&trace)
        })
    });
}

fn bench_analysis_only(c: &mut Criterion) {
    let app = pm_apps::pclht::PclhtApp;
    let wl = AppWorkload::Ycsb(WorkloadSpec::paper(1_000, 7).generate());
    let trace = app.execute(&wl);
    c.bench_function("pclht-1k-analysis-only", |b| {
        b.iter(|| Analyzer::default().run(&trace))
    });
}

criterion_group!(benches, bench_fastfair_end_to_end, bench_analysis_only);
criterion_main!(benches);
