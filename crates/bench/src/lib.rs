//! # hawkset-bench
//!
//! Experiment harnesses regenerating every table and figure of the
//! HawkSet evaluation (§5), plus shared plumbing for the criterion
//! microbenchmarks. One binary per paper artifact:
//!
//! | binary    | paper artifact | what it prints |
//! |-----------|----------------|----------------|
//! | `table2`  | Table 2        | per-app detected races with store/load sites |
//! | `table3`  | Table 3        | HawkSet vs the observation baseline on Fast-Fair, avg time to race, speedup |
//! | `table4`  | Table 4        | MR/BR/FP breakdown, IRH on vs off |
//! | `figure6` | Figure 6       | testing time and peak memory vs workload size |
//!
//! Absolute numbers differ from the paper's Optane testbed — the substrate
//! is a simulator — but the *shapes* (who wins, what the IRH prunes, how
//! cost scales) are the reproduction targets; see `EXPERIMENTS.md`.

pub mod synthetic;
pub mod trajectory;

use std::time::Instant;

use hawkset_core::analysis::{AnalysisConfig, AnalysisReport, Analyzer};
use pm_apps::{all_apps, score, Application, Breakdown};

/// One application run at one workload size, analyzed.
pub struct AppRun {
    /// Application name (Table 1).
    pub app: String,
    /// Main-phase operations.
    pub ops: u64,
    /// Events in the recorded trace.
    pub events: u64,
    /// Execution wall-clock seconds (instrumented run).
    pub exec_secs: f64,
    /// Analysis wall-clock seconds.
    pub analysis_secs: f64,
    /// The analysis report.
    pub report: AnalysisReport,
    /// Scored against the app's ground truth.
    pub breakdown: Breakdown,
}

/// Runs `app` with its §5 default workload of `ops` operations and
/// analyzes the trace.
pub fn run_app(app: &dyn Application, ops: u64, seed: u64, cfg: &AnalysisConfig) -> AppRun {
    let wl = app.default_workload(ops, seed);
    let started = Instant::now();
    let trace = app.execute(&wl);
    let exec_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let report = Analyzer::new(cfg.clone()).run(&trace);
    let analysis_secs = started.elapsed().as_secs_f64();
    let breakdown = score(&report.races, &app.known_races());
    AppRun {
        app: app.name().to_string(),
        ops,
        events: trace.events.len() as u64,
        exec_secs,
        analysis_secs,
        report,
        breakdown,
    }
}

/// Returns the nine applications, honouring the paper's P-ART workload cap
/// through each app's `default_workload`.
pub fn apps() -> Vec<Box<dyn Application>> {
    all_apps()
}

/// Executes one instrumented run and returns the trace (for experiments
/// that analyze the *same* execution under several settings, like the
/// Table 4 IRH comparison).
pub fn record_app(app: &dyn Application, ops: u64, seed: u64) -> (hawkset_core::Trace, f64) {
    let wl = app.default_workload(ops, seed);
    let started = Instant::now();
    let trace = app.execute(&wl);
    (trace, started.elapsed().as_secs_f64())
}

/// Analyzes a recorded trace and scores it against `app`'s ground truth.
pub fn analyze_for(
    app: &dyn Application,
    trace: &hawkset_core::Trace,
    cfg: &AnalysisConfig,
) -> (AnalysisReport, Breakdown) {
    let report = Analyzer::new(cfg.clone()).run(trace);
    let breakdown = score(&report.races, &app.known_races());
    (report, breakdown)
}

/// Simple fixed-width table rendering for the experiment binaries.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = line(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Parses `--key value`-style options from an argument list; returns the
/// value for `key` parsed as `u64` or the default.
pub fn arg_u64(args: &[String], key: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Returns `true` if the flag is present.
pub fn arg_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_padded_columns() {
        let mut t = TextTable::new(&["App", "Races"]);
        t.row(vec!["Fast-Fair".into(), "2".into()]);
        t.row(vec!["X".into(), "10".into()]);
        let out = t.render();
        assert!(out.contains("Fast-Fair  2"));
        assert!(out.lines().count() == 4);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--ops", "5000", "--full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_u64(&args, "--ops", 1), 5000);
        assert_eq!(arg_u64(&args, "--seeds", 7), 7);
        assert!(arg_flag(&args, "--full"));
        assert!(!arg_flag(&args, "--json"));
    }

    #[test]
    fn run_app_smoke() {
        let apps = apps();
        let ff = apps.iter().find(|a| a.name() == "Fast-Fair").unwrap();
        let run = run_app(ff.as_ref(), 200, 1, &AnalysisConfig::default());
        assert_eq!(run.ops, 200);
        assert!(run.events > 0);
        assert!(!run.report.races.is_empty());
    }
}
