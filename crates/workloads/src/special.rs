//! Non-key-value workloads: MadFS and memcached (§5, Workloads).
//!
//! "MadFS's benchmark performs 4kb write operations in a shared file
//! amongst all threads. The target offset of the operation is randomized
//! following a zipfian distribution." — and memcached's benchmark runs a
//! 1000-set load phase followed by the full operation palette (set, get,
//! add, replace, append, prepend, CAS, delete, increment, decrement) over
//! a zipfian key choice.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::zipfian::{KeyDistribution, Zipfian};

/// One MadFS file operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsOp {
    /// Write `len` bytes at block-aligned `offset`.
    Write {
        /// Byte offset into the shared file.
        offset: u64,
        /// Write size in bytes.
        len: u32,
    },
    /// Read `len` bytes at `offset`.
    Read {
        /// Byte offset into the shared file.
        offset: u64,
        /// Read size in bytes.
        len: u32,
    },
    /// Make everything written so far durable.
    Fsync,
}

/// Generates the MadFS benchmark: per-thread schedules of 4 KiB writes at
/// zipfian offsets into a shared file of `file_blocks` 4 KiB blocks, with a
/// sprinkling of reads and periodic fsync.
pub fn madfs_workload(ops: u64, threads: u32, file_blocks: u64, seed: u64) -> Vec<Vec<FsOp>> {
    const BLOCK: u64 = 4096;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dist = Zipfian::new(file_blocks.max(1));
    let mut per_thread = vec![Vec::new(); threads.max(1) as usize];
    for i in 0..ops {
        let t = (i % threads.max(1) as u64) as usize;
        let block = dist.next(&mut rng);
        let roll = rng.gen_range(0..100u8);
        let op = if roll < 70 {
            FsOp::Write {
                offset: block * BLOCK,
                len: BLOCK as u32,
            }
        } else if roll < 95 {
            FsOp::Read {
                offset: block * BLOCK,
                len: BLOCK as u32,
            }
        } else {
            FsOp::Fsync
        };
        per_thread[t].push(op);
    }
    per_thread
}

/// One memcached protocol operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheOp {
    /// Unconditional store.
    Set {
        /// Item key.
        key: u64,
        /// Item value.
        value: u64,
    },
    /// Point lookup.
    Get {
        /// Item key.
        key: u64,
    },
    /// Store only if absent.
    Add {
        /// Item key.
        key: u64,
        /// Item value.
        value: u64,
    },
    /// Store only if present.
    Replace {
        /// Item key.
        key: u64,
        /// Item value.
        value: u64,
    },
    /// Append to the existing value.
    Append {
        /// Item key.
        key: u64,
        /// Suffix payload.
        value: u64,
    },
    /// Prepend to the existing value.
    Prepend {
        /// Item key.
        key: u64,
        /// Prefix payload.
        value: u64,
    },
    /// Compare-and-swap on the item's cas token.
    Cas {
        /// Item key.
        key: u64,
        /// New value if the token matches.
        value: u64,
    },
    /// Remove the item.
    Delete {
        /// Item key.
        key: u64,
    },
    /// Numeric increment.
    Incr {
        /// Item key.
        key: u64,
    },
    /// Numeric decrement.
    Decr {
        /// Item key.
        key: u64,
    },
}

/// The memcached benchmark: a load phase of `load_sets` sets plus
/// per-thread zipfian schedules covering the whole operation palette.
pub fn memcached_workload(
    load_sets: u64,
    ops: u64,
    threads: u32,
    seed: u64,
) -> (Vec<CacheOp>, Vec<Vec<CacheOp>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let key_space = load_sets + ops / 4;
    let mut dist = Zipfian::new(key_space.max(1));
    let load: Vec<CacheOp> = (0..load_sets)
        .map(|k| CacheOp::Set {
            key: k,
            value: k.rotate_left(13) | 1,
        })
        .collect();
    let mut per_thread = vec![Vec::new(); threads.max(1) as usize];
    for i in 0..ops {
        let t = (i % threads.max(1) as u64) as usize;
        let key = dist.next(&mut rng);
        let value = key.wrapping_mul(0x9e37_79b9) | 1;
        let op = match rng.gen_range(0..10u8) {
            0 => CacheOp::Set { key, value },
            1 => CacheOp::Get { key },
            2 => CacheOp::Add { key, value },
            3 => CacheOp::Replace { key, value },
            4 => CacheOp::Append { key, value },
            5 => CacheOp::Prepend { key, value },
            6 => CacheOp::Cas { key, value },
            7 => CacheOp::Delete { key },
            8 => CacheOp::Incr { key },
            _ => CacheOp::Decr { key },
        };
        per_thread[t].push(op);
    }
    (load, per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn madfs_offsets_are_block_aligned_and_bounded() {
        let w = madfs_workload(1000, 8, 64, 11);
        assert_eq!(w.len(), 8);
        let total: usize = w.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
        for op in w.iter().flatten() {
            if let FsOp::Write { offset, len } | FsOp::Read { offset, len } = op {
                assert_eq!(offset % 4096, 0);
                assert_eq!(*len, 4096);
                assert!(*offset < 64 * 4096);
            }
        }
    }

    #[test]
    fn madfs_contains_fsync_and_reads() {
        let w = madfs_workload(2000, 4, 32, 3);
        let flat: Vec<&FsOp> = w.iter().flatten().collect();
        assert!(flat.iter().any(|op| matches!(op, FsOp::Fsync)));
        assert!(flat.iter().any(|op| matches!(op, FsOp::Read { .. })));
        assert!(flat.iter().any(|op| matches!(op, FsOp::Write { .. })));
    }

    #[test]
    fn memcached_covers_the_whole_palette() {
        let (load, main) = memcached_workload(1000, 5000, 8, 5);
        assert_eq!(load.len(), 1000);
        let flat: Vec<&CacheOp> = main.iter().flatten().collect();
        assert_eq!(flat.len(), 5000);
        let has = |f: fn(&CacheOp) -> bool| flat.iter().any(|op| f(op));
        assert!(has(|o| matches!(o, CacheOp::Set { .. })));
        assert!(has(|o| matches!(o, CacheOp::Get { .. })));
        assert!(has(|o| matches!(o, CacheOp::Add { .. })));
        assert!(has(|o| matches!(o, CacheOp::Replace { .. })));
        assert!(has(|o| matches!(o, CacheOp::Append { .. })));
        assert!(has(|o| matches!(o, CacheOp::Prepend { .. })));
        assert!(has(|o| matches!(o, CacheOp::Cas { .. })));
        assert!(has(|o| matches!(o, CacheOp::Delete { .. })));
        assert!(has(|o| matches!(o, CacheOp::Incr { .. })));
        assert!(has(|o| matches!(o, CacheOp::Decr { .. })));
    }

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(madfs_workload(100, 2, 8, 1), madfs_workload(100, 2, 8, 1));
        assert_eq!(
            memcached_workload(10, 100, 2, 1),
            memcached_workload(10, 100, 2, 1)
        );
    }
}
