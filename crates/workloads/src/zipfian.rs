//! Key distributions.
//!
//! The evaluation drives every key-value application with YCSB-style
//! workloads (§5, Workloads): zipfian-skewed key choice for the main phase,
//! and zipfian offsets for the MadFS shared-file benchmark. This module
//! implements the standard YCSB generators: uniform, zipfian (Gray et
//! al.'s rejection-free incremental algorithm, as used in YCSB's
//! `ZipfianGenerator`), and scrambled zipfian (zipfian rank hashed over the
//! key space so the hot keys are spread out).

use rand::Rng;

/// YCSB's default zipfian skew.
pub const DEFAULT_THETA: f64 = 0.99;

/// A distribution over `0..n`.
pub trait KeyDistribution {
    /// Draws the next value in `0..n` using `rng`.
    fn next(&mut self, rng: &mut impl Rng) -> u64;

    /// The exclusive upper bound of the distribution's range.
    fn range(&self) -> u64;
}

/// Uniform distribution over `0..n`.
#[derive(Clone, Debug)]
pub struct Uniform {
    n: u64,
}

impl Uniform {
    /// Creates a uniform distribution over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "empty key space");
        Self { n }
    }
}

impl KeyDistribution for Uniform {
    fn next(&mut self, rng: &mut impl Rng) -> u64 {
        rng.gen_range(0..self.n)
    }

    fn range(&self) -> u64 {
        self.n
    }
}

/// Zipfian distribution over `0..n` with parameter `theta`, favouring low
/// ranks (rank 0 is the hottest).
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
}

impl Zipfian {
    /// Creates a zipfian distribution over `0..n` with the YCSB default
    /// skew.
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, DEFAULT_THETA)
    }

    /// Creates a zipfian distribution with explicit skew `theta ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!(
            (0.0..1.0).contains(&theta) && theta > 0.0,
            "theta must be in (0, 1)"
        );
        let zeta_n = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        Self {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
        }
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

/// Harmonic partial sum `Σ 1/i^theta` for `i in 1..=n`.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl KeyDistribution for Zipfian {
    fn next(&mut self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    fn range(&self) -> u64 {
        self.n
    }
}

/// Scrambled zipfian: zipfian ranks hashed with FNV so the hottest keys are
/// scattered across the key space (YCSB's `ScrambledZipfianGenerator`).
#[derive(Clone, Debug)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Creates a scrambled zipfian over `0..n`.
    pub fn new(n: u64) -> Self {
        Self {
            inner: Zipfian::new(n),
        }
    }
}

/// 64-bit FNV-1a hash.
pub fn fnv1a(mut x: u64) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..8 {
        h ^= x & 0xff;
        h = h.wrapping_mul(PRIME);
        x >>= 8;
    }
    h
}

impl KeyDistribution for ScrambledZipfian {
    fn next(&mut self, rng: &mut impl Rng) -> u64 {
        let rank = self.inner.next(rng);
        fnv1a(rank) % self.inner.n
    }

    fn range(&self) -> u64 {
        self.inner.n
    }
}

/// The distribution choices exposed by workload specs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Distribution {
    /// Uniform over the key space.
    Uniform,
    /// Zipfian with the YCSB default skew, favouring low keys.
    Zipfian,
    /// Zipfian ranks scattered by hashing.
    ScrambledZipfian,
}

impl Distribution {
    /// Instantiates the distribution over `0..n`.
    pub fn build(self, n: u64) -> Box<dyn DynDistribution> {
        match self {
            Distribution::Uniform => Box::new(Uniform::new(n)),
            Distribution::Zipfian => Box::new(Zipfian::new(n)),
            Distribution::ScrambledZipfian => Box::new(ScrambledZipfian::new(n)),
        }
    }
}

/// Object-safe adapter over [`KeyDistribution`] for boxed use.
pub trait DynDistribution {
    /// Draws the next value with the given RNG.
    fn next_dyn(&mut self, rng: &mut rand::rngs::StdRng) -> u64;
}

impl<T: KeyDistribution> DynDistribution for T {
    fn next_dyn(&mut self, rng: &mut rand::rngs::StdRng) -> u64 {
        self.next(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_in_range_and_covers() {
        let mut d = Uniform::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = d.next(&mut rng);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws must cover 0..10");
    }

    #[test]
    fn zipfian_stays_in_range() {
        let mut d = Zipfian::new(1000);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(d.next(&mut rng) < 1000);
        }
    }

    #[test]
    fn zipfian_is_skewed_toward_low_ranks() {
        let mut d = Zipfian::new(1000);
        let mut rng = StdRng::seed_from_u64(3);
        let mut low = 0u32;
        const DRAWS: u32 = 20_000;
        for _ in 0..DRAWS {
            if d.next(&mut rng) < 10 {
                low += 1;
            }
        }
        // With theta=0.99 over 1000 keys, the top-10 ranks get far more
        // than their uniform share (1%); empirically ≈ 35–45%.
        assert!(
            low > DRAWS / 5,
            "zipfian skew missing: {low}/{DRAWS} in top 10"
        );
    }

    #[test]
    fn scrambled_zipfian_scatters_hot_keys() {
        let mut d = ScrambledZipfian::new(1000);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts[d.next(&mut rng) as usize] += 1;
        }
        // The hottest key exists but is not key 0 deterministically — it is
        // fnv1a(0) % 1000.
        let hottest = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0 as u64;
        assert_eq!(hottest, fnv1a(0) % 1000);
    }

    #[test]
    fn zeta_matches_manual_sum() {
        let z = zeta(3, 1.0_f64.min(0.99));
        let manual = 1.0 + 1.0 / 2f64.powf(0.99) + 1.0 / 3f64.powf(0.99);
        assert!((z - manual).abs() < 1e-12);
    }

    #[test]
    fn distribution_enum_builds_all_variants() {
        let mut rng = StdRng::seed_from_u64(5);
        for d in [
            Distribution::Uniform,
            Distribution::Zipfian,
            Distribution::ScrambledZipfian,
        ] {
            let mut g = d.build(100);
            for _ in 0..100 {
                assert!(g.next_dyn(&mut rng) < 100);
            }
        }
    }
}
