//! End-to-end crash-injection acceptance tests.
//!
//! 1. A registered application is crashed at injected crash points, each
//!    persisted-only image is restarted in a fresh environment and run
//!    through the application's own recovery + invariant audit:
//!    a race-free configuration passes at *every* injected point, while
//!    the known-racy configuration fails at points inside the bug window —
//!    and the failure is attributable to a race HawkSet reports on the
//!    same run's trace.
//! 2. A supervised campaign with an injected hung round and an injected
//!    panicking round completes the remaining rounds, records
//!    `TimedOut`/`Panicked`, and `--resume` re-runs only unfinished
//!    rounds.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use hawkset::apps::fastfair::{run_fastfair, FastFairApp, FastFairBugs};
use hawkset::apps::pclht::PclhtApp;
use hawkset::apps::turbohash::TurboHashApp;
use hawkset::apps::{Application, ExecOptions};
use hawkset::baseline::{
    attribute_races, load_checkpoint, run_crash_campaign, CrashCampaignConfig, FaultKind,
    InjectedFault, RoundOutcome,
};
use hawkset::core::analysis::Analyzer;
use hawkset::runtime::{CrashImage, CrashInjector, CrashMode, PmEnv};
use hawkset::workloads::WorkloadSpec;

/// Restarts `app` from a captured persisted-only image — every pool
/// remapped in its original mapping order, so recovered addresses match —
/// and runs recovery plus the invariant audit.
fn audit(app: &dyn Application, image: &CrashImage) -> Result<(), String> {
    let env = PmEnv::new();
    let pools: Vec<_> = image
        .pools
        .iter()
        .map(|p| env.map_pool_from_image(p.path.clone(), p.bytes.clone()))
        .collect();
    let pool = pools.first().expect("crash image holds at least one pool");
    let t = env.main_thread();
    app.recover(pool, &t)
        .map_err(|e| format!("crash at op {}: {e}", image.op_index))?;
    match app.check_invariants(pool, &t).first() {
        None => Ok(()),
        Some(v) => Err(format!("crash at op {}: {v}", image.op_index)),
    }
}

/// Runs Fast-Fair under dense continue-mode crash points, auditing every
/// captured image as it streams out (a sink, so images are never held in
/// memory together). Returns (audit failures, images captured, trace).
fn crash_sweep(
    bugs: FastFairBugs,
    workload_seed: u64,
    points: impl IntoIterator<Item = u64>,
) -> (Vec<String>, u64, hawkset::core::Trace) {
    let w = WorkloadSpec::paper(2000, workload_seed).generate();
    let injector = CrashInjector::at_points(points, CrashMode::Continue);
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_failures = Arc::clone(&failures);
    injector.set_sink(move |image| {
        if let Err(e) = audit(&FastFairApp, &image) {
            sink_failures.lock().expect("sink lock").push(e);
        }
    });
    let opts = ExecOptions {
        crash: Some(Arc::clone(&injector)),
        ..Default::default()
    };
    let result = run_fastfair(&w, &opts, bugs);
    let failures = failures.lock().expect("sink lock").clone();
    (failures, injector.images_captured(), result.trace)
}

/// Crash points across the single-threaded load phase and into the
/// concurrent main phase. The load phase alone issues thousands of PM
/// operations (1000 ascending inserts), so this covers root splits, leaf
/// splits, and backlog-drain boundaries.
fn dense_points() -> impl Iterator<Item = u64> {
    (0..40_000u64).step_by(97)
}

#[test]
fn race_free_configuration_recovers_at_every_injected_crash_point() {
    let (failures, captured, _trace) = crash_sweep(
        FastFairBugs {
            late_parent_persist: false,
        },
        11,
        dense_points(),
    );
    assert!(
        captured > 50,
        "the sweep must actually capture images, got {captured}"
    );
    assert!(
        failures.is_empty(),
        "with persists inside the critical sections every crash point must \
         recover cleanly; {} of {captured} failed, first: {}",
        failures.len(),
        failures[0]
    );
}

#[test]
fn racy_configuration_fails_recovery_audit_and_is_attributable() {
    let (failures, captured, trace) = crash_sweep(FastFairBugs::default(), 7, dense_points());
    assert!(
        captured > 50,
        "the sweep must actually capture images, got {captured}"
    );
    // (b) the known-racy configuration leaves crash windows: a split's
    // sibling/shrink persists are deferred past the lock release, so
    // points inside the window see a torn tree.
    assert!(
        !failures.is_empty(),
        "the buggy tree must fail its audit at some of {captured} crash points"
    );
    // ...and the failure is attributable: HawkSet reports the responsible
    // malign race on the very same run's trace.
    let report = Analyzer::default().run(&trace);
    let attributed = attribute_races(&report.races, &FastFairApp.known_races(), None);
    assert!(
        attributed.iter().any(|a| a.bug_id == 1 || a.bug_id == 2),
        "the audit failure must be attributable to Table 2 bug #1/#2, got {attributed:?}"
    );
}

#[test]
fn campaign_survives_hung_and_panicking_rounds_and_resumes() {
    let dir = std::env::temp_dir().join(format!("hawkset-crashtest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt = dir.join("campaign.json");
    let _ = std::fs::remove_file(&ckpt);

    let app: Arc<dyn Application> = Arc::new(FastFairApp);
    let cfg = CrashCampaignConfig {
        rounds: 4,
        crash_points: 2,
        main_ops: 24,
        seed: 9,
        round_timeout: Duration::from_secs(30),
        max_retries: 0,
        retry_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        checkpoint: Some(ckpt.clone()),
        resume: false,
        analysis_threads: 1,
        suggest_fixes: false,
        faults: vec![
            InjectedFault {
                round: 1,
                kind: FaultKind::Hang,
                first_attempts: u32::MAX,
            },
            InjectedFault {
                round: 2,
                kind: FaultKind::Panic,
                first_attempts: u32::MAX,
            },
        ],
        ..Default::default()
    };
    // The hung round must actually hit the watchdog, so give IT a short
    // deadline while healthy rounds get a comfortable one — the fault
    // hangs for 4x the timeout, so a short timeout keeps the test fast.
    let cfg = CrashCampaignConfig {
        round_timeout: Duration::from_secs(5),
        ..cfg
    };

    let first = run_crash_campaign(&app, &cfg).expect("campaign runs");
    assert_eq!(first.records.len(), 4, "all four rounds must be recorded");
    assert_eq!(
        first.records[1].outcome,
        RoundOutcome::TimedOut,
        "hung round times out"
    );
    assert!(
        matches!(&first.records[2].outcome, RoundOutcome::Panicked { message } if message.contains("injected fault")),
        "panicking round records its payload: {:?}",
        first.records[2].outcome
    );
    for healthy in [0usize, 3] {
        assert!(
            !first.records[healthy].outcome.is_transient(),
            "round {healthy} must complete despite its misbehaving neighbours: {:?}",
            first.records[healthy].outcome
        );
        assert!(first.records[healthy].images_captured > 0);
    }

    // The checkpoint on disk reflects every finished round.
    let ck = load_checkpoint(&ckpt).expect("checkpoint parses");
    assert_eq!(ck.app, app.name());
    assert_eq!(ck.completed.len(), 4);

    // Resume with two more rounds: the four recorded rounds are loaded,
    // not re-run — only rounds 4 and 5 execute.
    let resumed_cfg = CrashCampaignConfig {
        rounds: 6,
        resume: true,
        faults: Vec::new(),
        ..cfg
    };
    let resumed = run_crash_campaign(&app, &resumed_cfg).expect("resume runs");
    assert!(resumed.resumed_from_checkpoint);
    assert_eq!(
        resumed.executed_this_run, 2,
        "only the two unfinished rounds run"
    );
    assert_eq!(resumed.records.len(), 6);
    for (a, b) in first.records.iter().zip(&resumed.records) {
        assert_eq!(
            a.outcome, b.outcome,
            "round {} must be loaded, not re-run",
            a.round
        );
        assert_eq!(
            a.duration_ms, b.duration_ms,
            "round {}'s record must be byte-identical to the checkpointed one",
            a.round
        );
    }
    // A seed mismatch is rejected rather than silently mixing campaigns.
    let wrong_seed = CrashCampaignConfig {
        seed: 10,
        ..resumed_cfg
    };
    let err = run_crash_campaign(&app, &wrong_seed).expect_err("seed mismatch must fail");
    assert!(err.contains("seed"), "error names the mismatch: {err}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Baseline campaign parameters for the steering acceptance tests.
fn campaign_cfg(seed: u64, rounds: u64) -> CrashCampaignConfig {
    CrashCampaignConfig {
        rounds,
        crash_points: 3,
        main_ops: 24,
        seed,
        round_timeout: Duration::from_secs(120),
        max_retries: 1,
        retry_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        analysis_threads: 1,
        ..Default::default()
    }
}

/// Acceptance: at an equal round budget and the same seed, the
/// coverage-guided campaign must discover strictly more distinct race
/// sites than the uniform baseline. PCLHT is the vehicle: its uniform
/// runs are byte-reproducible at this size (4 sites), while steered runs
/// land on 7–8 — comfortably above the strict bound even when an
/// interleaving-dependent site flickers.
#[test]
fn steered_campaign_discovers_strictly_more_sites_than_uniform() {
    let app: Arc<dyn Application> = Arc::new(PclhtApp);
    let uniform = run_crash_campaign(&app, &campaign_cfg(5, 12)).expect("uniform campaign runs");
    let steered_cfg = CrashCampaignConfig {
        steer: true,
        ..campaign_cfg(5, 12)
    };
    let steered = run_crash_campaign(&app, &steered_cfg).expect("steered campaign runs");

    let u = uniform.coverage_report();
    let s = steered.coverage_report();
    assert!(
        u.race_sites >= 1,
        "the uniform baseline must find something to compare against"
    );
    assert!(
        s.race_sites > u.race_sites,
        "steering must discover strictly more race sites than uniform at \
         the same budget: steered {} vs uniform {} ({:?} vs {:?})",
        s.race_sites,
        u.race_sites,
        s.sites,
        u.sites
    );
    // Steering explores *around* the uniform baseline (derived plans graft
    // perturbations onto the same per-round workloads), so it should keep
    // a corpus and a discovery timeline worth reporting.
    assert!(
        s.corpus_size >= 1,
        "coverage-adding rounds enter the corpus"
    );
    assert_eq!(
        s.timeline.len(),
        12,
        "one discovery tick per round, got {:?}",
        s.timeline
    );
    let replayed: u64 = s.timeline.iter().map(|t| t.new_points).sum();
    assert_eq!(
        replayed, s.points_total,
        "ticks must partition the coverage set"
    );
    for w in s.timeline.windows(2) {
        assert!(
            w[1].total_points >= w[0].total_points,
            "cumulative coverage is monotone: {:?}",
            s.timeline
        );
    }
}

/// Acceptance: a campaign interrupted mid-flight and resumed from its
/// checkpoint converges to the same coverage set, site list, and
/// per-round outcomes as the uninterrupted run — the corpus is rebuilt
/// from the checkpointed plans, so steering continues exactly.
///
/// TurboHash is the vehicle: comparing an interrupted+resumed campaign
/// against an uninterrupted one compares two *independent executions*,
/// so the app's traces must be byte-reproducible even under steered
/// (delayed, mutated) rounds. TurboHash's are; PCLHT's occasionally
/// flicker one interleaving-dependent site, which would flake the exact
/// equality this test exists to assert.
#[test]
fn interrupted_steered_campaign_resumes_to_identical_coverage() {
    let dir = std::env::temp_dir().join(format!("hawkset-steer-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let app: Arc<dyn Application> = Arc::new(TurboHashApp);

    // The reference: 12 steered rounds, never interrupted.
    let full_cfg = CrashCampaignConfig {
        steer: true,
        ..campaign_cfg(5, 12)
    };
    let full = run_crash_campaign(&app, &full_cfg).expect("uninterrupted campaign runs");

    // The interrupted run: the same campaign stops after round 4 (as if
    // SIGKILLed; the checkpoint is written after every round, so stopping
    // at a round boundary is exactly the on-disk state a kill leaves),
    // then resumes to the full 12.
    let ckpt = dir.join("steer.json");
    let _ = std::fs::remove_file(&ckpt);
    let partial_cfg = CrashCampaignConfig {
        checkpoint: Some(ckpt.clone()),
        ..CrashCampaignConfig {
            steer: true,
            ..campaign_cfg(5, 5)
        }
    };
    run_crash_campaign(&app, &partial_cfg).expect("partial campaign runs");
    let resumed_cfg = CrashCampaignConfig {
        rounds: 12,
        resume: true,
        ..partial_cfg.clone()
    };
    let resumed = run_crash_campaign(&app, &resumed_cfg).expect("resumed campaign runs");
    assert!(resumed.resumed_from_checkpoint);
    assert_eq!(
        resumed.executed_this_run, 7,
        "only the seven unfinished rounds run after resume"
    );

    let a = full.coverage_report();
    let b = resumed.coverage_report();
    assert_eq!(
        a.sites, b.sites,
        "kill + resume must converge to the uninterrupted run's race sites"
    );
    assert_eq!(a, b, "the full coverage reports (timeline included) match");
    let outcomes = |r: &hawkset::baseline::CrashCampaignResult| {
        r.records
            .iter()
            .map(|x| x.outcome.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        outcomes(&full),
        outcomes(&resumed),
        "per-round outcomes match round for round"
    );

    // A steered resume whose config changed what rounds do is refused —
    // the corpus rebuilt from the records would diverge from the rounds
    // that produced them.
    let drifted = CrashCampaignConfig {
        main_ops: 32,
        ..resumed_cfg.clone()
    };
    let err = run_crash_campaign(&app, &drifted).expect_err("fingerprint drift must fail");
    assert!(
        err.contains("fingerprint"),
        "error names the fingerprint mismatch: {err}"
    );

    // A checkpoint written before steering existed carries no plans to
    // rebuild the corpus from; a steered resume refuses it.
    let mut old = load_checkpoint(&ckpt).expect("checkpoint parses");
    old.fingerprint = None;
    std::fs::write(
        &ckpt,
        serde_json::to_string_pretty(&old).expect("checkpoint serializes"),
    )
    .expect("checkpoint rewrites");
    let err = run_crash_campaign(&app, &resumed_cfg).expect_err("pre-steering checkpoint refused");
    assert!(
        err.contains("steer"),
        "error explains the checkpoint predates steering: {err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
