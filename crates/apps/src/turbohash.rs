//! TurboHash: a cell-based persistent hash table (SYSTOR'23).
//!
//! TurboHash packs 16-byte entry cells into multi-line buckets, performs
//! efficient out-of-place updates, and synchronizes writers with its own
//! bucket spinlocks while readers probe lock-free. Like the original
//! evaluation (§5.5), the custom primitives need a small sync configuration
//! — see [`turbohash_sync_config`].
//!
//! Reproduced bug (Table 2 **#3**, new): an insert writes its 16-byte cell
//! and then flushes *from the cell's starting line* — when the cell sits at
//! the end of the bucket such that it straddles a cache-line boundary, the
//! cell's tail on the next line is never written back
//! (`turbo_hash_pmem_pmdk.h:2238` store, `:2546` load). The bug manifests
//! only once buckets fill up to the straddling cell, which is why the paper
//! saw it only under the 100k-operation workload: the straddling cell is
//! the *last* one filled.

use std::collections::HashMap;
use std::sync::Arc;

use hawkset_core::addr::PmAddr;
use hawkset_core::sync_config::SyncConfig;
use pm_runtime::{run_workers, CustomSpinLock, PmEnv, PmPool, PmThread};
use pm_workloads::{Op, Workload, WorkloadSpec};

use crate::app::{
    env_for, AppWorkload, Application, ExecOptions, ExecResult, InvariantViolation, RecoveryError,
};
use crate::registry::KnownRace;

/// Bucket geometry: two cache lines.
///
/// ```text
/// +0   meta bitmap (u64)
/// +8   cell 0   +24 cell 1   +40 cell 2      (line 0)
/// +56  cell 3  ← straddles the line boundary at +64
/// +72  cell 4   +88 cell 5   +104 cell 6     (line 1)
/// ```
const BUCKET_SIZE: u64 = 128;
const CELLS: u64 = 7;
const OFF_META: u64 = 0;
/// Fill order: the straddling cell (index 3 by address) is used last.
const FILL_ORDER: [u64; CELLS as usize] = [0, 1, 2, 4, 5, 6, 3];

fn cell_off(i: u64) -> u64 {
    8 + i * 16
}

/// The §5.5-style configuration for TurboHash's custom spinlocks.
pub fn turbohash_sync_config() -> SyncConfig {
    SyncConfig::from_json(
        r#"{
            "primitives": [
                {"function": "turbo_bucket_lock", "kind": "acquire", "mode": "Exclusive"},
                {"function": "turbo_bucket_unlock", "kind": "release"}
            ]
        }"#,
    )
    .expect("static config parses")
}

/// Behaviour switches; bug #3 present by default.
#[derive(Clone, Copy, Debug)]
pub struct TurboBugs {
    /// Flush only the cell's starting line (the historical bug). The fixed
    /// version flushes every line the cell touches.
    pub flush_first_line_only: bool,
}

impl Default for TurboBugs {
    fn default() -> Self {
        Self {
            flush_first_line_only: true,
        }
    }
}

/// A TurboHash table in a PM pool: a fixed directory of multi-line buckets
/// with linear probing across buckets.
pub struct TurboHash {
    env: PmEnv,
    pool: PmPool,
    nbuckets: u64,
    locks: parking_lot::Mutex<HashMap<u64, Arc<CustomSpinLock>>>,
    bugs: TurboBugs,
}

impl TurboHash {
    /// Creates a zeroed table with `nbuckets` buckets.
    pub fn create(
        env: &PmEnv,
        pool: &PmPool,
        t: &PmThread,
        nbuckets: u64,
        bugs: TurboBugs,
    ) -> Self {
        assert!(
            pool.len() >= nbuckets * BUCKET_SIZE,
            "pool too small for directory"
        );
        let ht = Self {
            env: env.clone(),
            pool: pool.clone(),
            nbuckets,
            locks: parking_lot::Mutex::new(HashMap::new()),
            bugs,
        };
        let _f = t.frame("turbohash::create");
        // Directory starts zeroed (fresh pool); persist the meta words so
        // recovery sees a valid empty table.
        for b in 0..nbuckets {
            ht.pool.flush(t, ht.bucket_addr(b) + OFF_META);
        }
        t.fence();
        ht
    }

    /// Reopens the table persisted in `pool` (recovery path). TurboHash
    /// keeps no superblock: the directory *is* the pool, so the bucket
    /// count is derived from the pool size.
    pub fn open(env: &PmEnv, pool: &PmPool, bugs: TurboBugs) -> Self {
        Self {
            env: env.clone(),
            pool: pool.clone(),
            nbuckets: pool.len() / BUCKET_SIZE,
            locks: parking_lot::Mutex::new(HashMap::new()),
            bugs,
        }
    }

    /// Minimal post-crash reopen check: the pool must hold at least one
    /// whole bucket.
    pub fn recovery_probe(&self, t: &PmThread) -> Result<(), RecoveryError> {
        let _f = t.frame("turbohash::recover");
        if self.nbuckets == 0 {
            return Err(RecoveryError(format!(
                "pool of {} bytes holds no complete bucket",
                self.pool.len()
            )));
        }
        Ok(())
    }

    /// Structural audit of the directory as persisted: reserved meta bits
    /// must be zero, every meta-visible cell must hold a written key, and
    /// no key may be meta-visible in two cells (the single-`u64` meta flip
    /// is what makes out-of-place updates atomic; two visible copies means
    /// that atomicity was violated).
    pub fn check_invariants(&self, t: &PmThread) -> Vec<InvariantViolation> {
        let _f = t.frame("turbohash::check_invariants");
        let mut out = Vec::new();
        let mut seen: HashMap<u64, PmAddr> = HashMap::new();
        let reserved: u64 = !((1 << CELLS) - 1) & !(1 << 63);
        for b in 0..self.nbuckets {
            let bucket = self.bucket_addr(b);
            let meta = self.pool.load_u64(t, bucket + OFF_META);
            if meta & reserved != 0 {
                out.push(InvariantViolation {
                    invariant: "meta-reserved".into(),
                    detail: format!("bucket {b} meta {meta:#x} has reserved bits set"),
                });
                continue;
            }
            for i in 0..CELLS {
                if meta & (1 << i) == 0 {
                    continue;
                }
                let cell = bucket + cell_off(i);
                let k = self.pool.load_u64(t, cell);
                if k == 0 {
                    out.push(InvariantViolation {
                        invariant: "empty-occupied-cell".into(),
                        detail: format!("bucket {b} cell {i} is meta-visible but holds no key"),
                    });
                    continue;
                }
                if let Some(other) = seen.insert(k, cell) {
                    out.push(InvariantViolation {
                        invariant: "duplicate-key".into(),
                        detail: format!("key {} durable in cells {other:#x} and {cell:#x}", k - 1),
                    });
                }
            }
        }
        out
    }

    fn bucket_addr(&self, idx: u64) -> PmAddr {
        self.pool.base() + idx * BUCKET_SIZE
    }

    fn lock_of(&self, idx: u64) -> Arc<CustomSpinLock> {
        let mut map = self.locks.lock();
        Arc::clone(map.entry(idx).or_insert_with(|| {
            Arc::new(CustomSpinLock::new(
                &self.env,
                "turbo_bucket_lock",
                "turbo_bucket_unlock",
            ))
        }))
    }

    fn home_bucket(&self, key: u64) -> u64 {
        pm_workloads::zipfian::fnv1a(key) % self.nbuckets
    }

    /// Lock-free probe — the load site of bug #3
    /// (`turbo_hash_pmem_pmdk.h:2546`).
    pub fn get(&self, t: &PmThread, key: u64) -> Option<u64> {
        let _f = t.frame("turbohash::probe");
        let home = self.home_bucket(key);
        for d in 0..self.nbuckets.min(8) {
            let b = (home + d) % self.nbuckets;
            let bucket = self.bucket_addr(b);
            let meta = self.pool.load_u64(t, bucket + OFF_META);
            for i in 0..CELLS {
                if meta & (1 << i) != 0 {
                    let k = self.pool.load_u64(t, bucket + cell_off(i));
                    if k == key + 1 {
                        return Some(self.pool.load_u64(t, bucket + cell_off(i) + 8));
                    }
                }
            }
            if meta & (1 << 63) == 0 {
                // No overflow marker: the probe chain ends here.
                return None;
            }
        }
        None
    }

    /// Inserts or updates out-of-place: write a fresh cell, then flip the
    /// meta bitmap. **Bug #3 lives in the cell persist.**
    pub fn put(&self, t: &PmThread, key: u64, value: u64) -> bool {
        let _f = t.frame("turbohash::put");
        let home = self.home_bucket(key);
        for d in 0..self.nbuckets.min(8) {
            let b = (home + d) % self.nbuckets;
            let bucket = self.bucket_addr(b);
            let lock = self.lock_of(b);
            lock.lock(t);
            let meta = self.pool.load_u64(t, bucket + OFF_META);
            // Existing cell for the key? Out-of-place update if possible.
            let mut existing = None;
            for i in 0..CELLS {
                if meta & (1 << i) != 0 && self.pool.load_u64(t, bucket + cell_off(i)) == key + 1 {
                    existing = Some(i);
                    break;
                }
            }
            let free = FILL_ORDER.iter().copied().find(|&i| meta & (1 << i) == 0);
            match (existing, free) {
                (Some(old), Some(fresh)) => {
                    self.write_cell(t, bucket, fresh, key, value);
                    // Atomic meta flip: new cell in, old cell out.
                    let new_meta = (meta | (1 << fresh)) & !(1 << old);
                    self.write_meta(t, bucket, new_meta);
                    lock.unlock(t);
                    return true;
                }
                (Some(old), None) => {
                    // No free cell: in-place update (degraded path).
                    let _w = t.frame("turbohash::insert_entry");
                    self.pool.store_u64(t, bucket + cell_off(old) + 8, value);
                    self.flush_cell(t, bucket + cell_off(old));
                    t.fence();
                    lock.unlock(t);
                    return true;
                }
                (None, Some(fresh)) => {
                    self.write_cell(t, bucket, fresh, key, value);
                    self.write_meta(t, bucket, meta | (1 << fresh));
                    lock.unlock(t);
                    return true;
                }
                (None, None) => {
                    // Bucket full: mark the overflow bit and probe onward.
                    if meta & (1 << 63) == 0 {
                        self.write_meta(t, bucket, meta | (1 << 63));
                    }
                    lock.unlock(t);
                }
            }
        }
        false
    }

    /// Stores a 16-byte cell and flushes it — with the bug, only from its
    /// starting line (`turbo_hash_pmem_pmdk.h:2238`).
    fn write_cell(&self, t: &PmThread, bucket: PmAddr, i: u64, key: u64, value: u64) {
        let _f = t.frame("turbohash::insert_entry");
        let cell = bucket + cell_off(i);
        self.pool.store_u64(t, cell, key + 1);
        self.pool.store_u64(t, cell + 8, value);
        self.flush_cell(t, cell);
        t.fence();
    }

    fn flush_cell(&self, t: &PmThread, cell: PmAddr) {
        if self.bugs.flush_first_line_only {
            self.pool.flush(t, cell);
        } else {
            self.pool.flush_range(t, cell, 16);
        }
    }

    /// Persists the meta bitmap (always fully, it sits on line 0).
    fn write_meta(&self, t: &PmThread, bucket: PmAddr, meta: u64) {
        let _f = t.frame("turbohash::insert_meta");
        self.pool.store_u64(t, bucket + OFF_META, meta);
        self.pool.flush(t, bucket + OFF_META);
        t.fence();
    }

    /// Clears the key's cell bit.
    pub fn delete(&self, t: &PmThread, key: u64) -> bool {
        let _f = t.frame("turbohash::delete");
        let home = self.home_bucket(key);
        for d in 0..self.nbuckets.min(8) {
            let b = (home + d) % self.nbuckets;
            let bucket = self.bucket_addr(b);
            let lock = self.lock_of(b);
            lock.lock(t);
            let meta = self.pool.load_u64(t, bucket + OFF_META);
            for i in 0..CELLS {
                if meta & (1 << i) != 0 && self.pool.load_u64(t, bucket + cell_off(i)) == key + 1 {
                    self.write_meta(t, bucket, meta & !(1 << i));
                    lock.unlock(t);
                    return true;
                }
            }
            let overflow = meta & (1 << 63) != 0;
            lock.unlock(t);
            if !overflow {
                return false;
            }
        }
        false
    }

    /// Executes one workload operation.
    pub fn run_op(&self, t: &PmThread, op: &Op) {
        match op {
            // TurboHash treats inserts and updates identically (§5).
            Op::Insert { key, value } | Op::Update { key, value } => {
                self.put(t, *key, *value);
            }
            Op::Get { key } => {
                self.get(t, *key);
            }
            Op::Delete { key } => {
                self.delete(t, *key);
            }
        }
    }
}

/// The Table 1 driver for TurboHash.
pub struct TurboHashApp;

impl Application for TurboHashApp {
    fn name(&self) -> &'static str {
        "TurboHash"
    }

    fn sync_method(&self) -> &'static str {
        "Lock/Lock-Free"
    }

    fn known_races(&self) -> Vec<KnownRace> {
        vec![
            KnownRace::malign(
                3,
                true,
                "turbohash::insert_entry",
                "turbohash::probe",
                "load unpersisted value",
            ),
            KnownRace::benign(
                "turbohash::insert_meta",
                "turbohash::probe",
                "meta flip is persisted before the fence",
            ),
            KnownRace::benign(
                "turbohash::delete",
                "turbohash::probe",
                "meta clear vs probe",
            ),
            KnownRace::benign(
                "turbohash::create",
                "turbohash::probe",
                "directory initialization",
            ),
        ]
    }

    fn default_workload(&self, main_ops: u64, seed: u64) -> AppWorkload {
        AppWorkload::Ycsb(WorkloadSpec::paper(main_ops, seed).generate())
    }

    fn execute_with(&self, workload: &AppWorkload, opts: &ExecOptions) -> ExecResult {
        let AppWorkload::Ycsb(w) = workload else {
            panic!("TurboHash consumes YCSB workloads")
        };
        run_turbohash(w, opts, TurboBugs::default(), 4096)
    }

    fn supports_recovery(&self) -> bool {
        true
    }

    fn recover(&self, pool: &PmPool, t: &PmThread) -> Result<(), RecoveryError> {
        TurboHash::open(pool.env(), pool, TurboBugs::default()).recovery_probe(t)
    }

    fn check_invariants(&self, pool: &PmPool, t: &PmThread) -> Vec<InvariantViolation> {
        TurboHash::open(pool.env(), pool, TurboBugs::default()).check_invariants(t)
    }
}

/// Runs a YCSB workload against a fresh table.
pub fn run_turbohash(
    w: &Workload,
    opts: &ExecOptions,
    bugs: TurboBugs,
    nbuckets: u64,
) -> ExecResult {
    let env = env_for(opts);
    env.add_sync_config(turbohash_sync_config());
    let pool = env.map_pool("/mnt/pmem/turbohash", nbuckets * BUCKET_SIZE);
    let main = env.main_thread();
    let ht = Arc::new(TurboHash::create(&env, &pool, &main, nbuckets, bugs));
    for op in &w.load {
        ht.run_op(&main, op);
    }
    let schedules = Arc::new(w.per_thread.clone());
    let ht2 = Arc::clone(&ht);
    run_workers(&env, &main, w.per_thread.len(), move |i, t| {
        for op in &schedules[i] {
            ht2.run_op(t, op);
        }
    });
    let observations = env.take_observations();
    ExecResult {
        trace: env.finish(),
        observations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::score;
    use hawkset_core::analysis::Analyzer;

    fn fresh(nbuckets: u64) -> (PmEnv, Arc<TurboHash>, PmThread) {
        let env = PmEnv::new();
        env.add_sync_config(turbohash_sync_config());
        let pool = env.map_pool("/mnt/pmem/turbo-test", nbuckets * BUCKET_SIZE);
        let main = env.main_thread();
        let ht = Arc::new(TurboHash::create(
            &env,
            &pool,
            &main,
            nbuckets,
            TurboBugs::default(),
        ));
        (env, ht, main)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (_env, ht, t) = fresh(64);
        for k in 0..100u64 {
            assert!(ht.put(&t, k, k + 7));
        }
        for k in 0..100u64 {
            assert_eq!(ht.get(&t, k), Some(k + 7), "key {k}");
        }
        assert!(ht.delete(&t, 5));
        assert_eq!(ht.get(&t, 5), None);
        assert!(!ht.delete(&t, 5));
    }

    #[test]
    fn out_of_place_update_changes_value() {
        let (_env, ht, t) = fresh(64);
        ht.put(&t, 1, 10);
        ht.put(&t, 1, 20);
        assert_eq!(ht.get(&t, 1), Some(20));
    }

    #[test]
    fn straddling_cell_is_filled_last() {
        // Cell 3 (offset 56) straddles lines and must be the 7th fill.
        assert_eq!(FILL_ORDER[FILL_ORDER.len() - 1], 3);
        let r = hawkset_core::addr::AddrRange::new(cell_off(3), 16);
        assert!(r.crosses_line());
        for i in [0u64, 1, 2, 4, 5, 6] {
            assert!(!hawkset_core::addr::AddrRange::new(cell_off(i), 16).crosses_line());
        }
    }

    #[test]
    fn bug3_needs_a_full_bucket() {
        // Direct white-box check of the §5.1 claim: with few keys per
        // bucket the straddling cell is never used and the malign pair is
        // absent; force-filling one bucket exposes it.
        let env = PmEnv::new();
        env.add_sync_config(turbohash_sync_config());
        let pool = env.map_pool("/mnt/pmem/turbo-fill", 4 * BUCKET_SIZE);
        let main = env.main_thread();
        let ht = Arc::new(TurboHash::create(
            &env,
            &pool,
            &main,
            4,
            TurboBugs::default(),
        ));
        // Load phase: enough distinct keys to fill every cell of every
        // bucket including the straddler (64 keys over 4×7 cells).
        for k in 0..64u64 {
            ht.put(&main, k, k);
        }
        let ht2 = Arc::clone(&ht);
        run_workers(&env, &main, 2, move |i, t| {
            for k in 0..64u64 {
                if i == 0 {
                    ht2.put(t, k, k + 100);
                } else {
                    ht2.get(t, k);
                }
            }
        });
        let report = Analyzer::default().run(&env.finish());
        let b = score(&report.races, &TurboHashApp.known_races());
        assert!(
            b.detected_ids.contains(&3),
            "bug #3 must appear once buckets fill"
        );
        // The report for the malign pair must carry the never-persisted
        // signature: the straddling tail has no flush at all.
        let malign = report
            .races
            .iter()
            .find(|r| {
                r.store_site
                    .as_ref()
                    .is_some_and(|f| f.function == "turbohash::insert_entry")
                    && r.load_site
                        .as_ref()
                        .is_some_and(|f| f.function == "turbohash::probe")
            })
            .expect("malign pair reported");
        assert!(malign.store_never_persisted);
    }

    #[test]
    fn fixed_flush_removes_the_unpersisted_tail() {
        let env = PmEnv::new();
        env.add_sync_config(turbohash_sync_config());
        let pool = env.map_pool("/mnt/pmem/turbo-fixed", 4 * BUCKET_SIZE);
        let main = env.main_thread();
        let ht = Arc::new(TurboHash::create(
            &env,
            &pool,
            &main,
            4,
            TurboBugs {
                flush_first_line_only: false,
            },
        ));
        for k in 0..64u64 {
            ht.put(&main, k, k);
        }
        let ht2 = Arc::clone(&ht);
        run_workers(&env, &main, 2, move |i, t| {
            for k in 0..64u64 {
                if i == 0 {
                    ht2.put(t, k, k + 100);
                } else {
                    ht2.get(t, k);
                }
            }
        });
        let report = Analyzer::default().run(&env.finish());
        for race in &report.races {
            let is_entry_pair = race
                .store_site
                .as_ref()
                .is_some_and(|f| f.function == "turbohash::insert_entry");
            if is_entry_pair {
                assert!(
                    !race.store_never_persisted,
                    "fixed flush must persist every cell byte: {}",
                    race.summary()
                );
            }
        }
    }

    #[test]
    fn concurrent_puts_disjoint_keys_survive() {
        let (env, ht, main) = fresh(256);
        let ht2 = Arc::clone(&ht);
        run_workers(&env, &main, 4, move |i, t| {
            for k in 0..80u64 {
                ht2.put(t, i as u64 * 500 + k, k + 1);
            }
        });
        for i in 0..4u64 {
            for k in 0..80u64 {
                assert_eq!(
                    ht.get(&main, i * 500 + k),
                    Some(k + 1),
                    "thread {i} key {k}"
                );
            }
        }
    }
}
