//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset the test suites use: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, `prop_assert*` macros,
//! [`Strategy`] implemented for integer ranges and tuples, `any::<T>()`,
//! `prop_map`, and `proptest::collection::vec`.
//!
//! Sampling is deterministic (seeded from the test name), there is no
//! shrinking, and a failing case reports its index so it can be replayed by
//! reducing the case count.

/// Deterministic split-mix/xoshiro RNG used to drive strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(mut seed: u64) -> Self {
        let mut next = || {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Derives a stable per-test seed from the test's name (FNV-1a).
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::from_seed(h)
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let draw = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "anything goes" strategy (stand-in for
/// `Arbitrary` + the `Standard` distribution).
pub trait ArbitraryValue: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing vectors whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    /// Per-`proptest!` block configuration (only the case count is used).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Creates a configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real default (256) is overkill for an offline stand-in
            // running in the tier-1 suite; 64 keeps runs fast.
            Self { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

pub use test_runner::Config as ProptestConfig;

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let ($($arg,)*) =
                        ( $( $crate::Strategy::sample(&($strat), &mut __rng), )* );
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body }),
                    );
                    if let ::std::result::Result::Err(__panic) = __result {
                        eprintln!(
                            "proptest {}: failed at case {}/{} (deterministic seed)",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Declares deterministic property tests, mirroring the real macro's
/// surface: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! {
            (<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges and tuples stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 0u64..100, b in 1u32..7, c in any::<bool>()) {
            prop_assert!(a < 100);
            prop_assert!((1..7).contains(&b));
            let _ = c;
        }

        /// prop_map and collection::vec compose.
        #[test]
        fn mapped_vec(v in collection::vec((0u8..4, any::<u64>()).prop_map(|(a, _)| a), 0..9)) {
            prop_assert!(v.len() < 9);
            for x in v {
                prop_assert!(x < 4, "x = {x}");
            }
        }
    }

    proptest! {
        /// Default config path compiles and runs.
        #[test]
        fn default_config(x in 0usize..3) {
            prop_assert_ne!(x, 99);
            prop_assert_eq!(x.min(2), x);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let s = (0u64..1000, 0u64..1000);
        let mut r1 = crate::rng_for("t");
        let mut r2 = crate::rng_for("t");
        for _ in 0..100 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
