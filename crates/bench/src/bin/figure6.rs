//! Experiment E2 — regenerates **Figure 6**: HawkSet's testing time (6a)
//! and peak memory usage (6b) across workload sizes, per application.
//!
//! Workload sizes default to 1k / 4k / 16k (`--full` runs the paper's
//! 1k / 10k / 100k). Peak memory is measured with a counting global
//! allocator — the same number `/usr/bin/time -v` style peak-RSS tracking
//! would approximate — reset before each analysis so the figure reflects
//! the *analysis* cost like the paper's testing-cost study. Both axes of
//! the paper's plot are logarithmic; the expected shape is sublinear-to-
//! linear growth in both metrics.

use hawkset_bench::{apps, arg_flag, arg_u64, run_app, TextTable};
use hawkset_core::analysis::AnalysisConfig;
use hawkset_core::stats::{format_bytes, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = arg_flag(&args, "--full");
    let seed = arg_u64(&args, "--seed", 42);
    let sizes: Vec<u64> = if full {
        vec![1_000, 10_000, 100_000]
    } else {
        vec![1_000, 4_000, 16_000]
    };
    let cfg = AnalysisConfig::default();

    println!("HawkSet reproduction — Figure 6 (sizes {sizes:?}, seed {seed})\n");
    let mut time_table = TextTable::new(&[
        "Application",
        "1st size (s)",
        "2nd size (s)",
        "3rd size (s)",
    ]);
    let mut mem_table = TextTable::new(&["Application", "1st size", "2nd size", "3rd size"]);
    let mut csv = String::from("app,ops,events,exec_s,analysis_s,total_s,peak_bytes\n");

    for app in apps() {
        let mut times = Vec::new();
        let mut mems = Vec::new();
        for &ops in &sizes {
            ALLOC.reset_peak();
            let run = run_app(app.as_ref(), ops, seed, &cfg);
            let peak = ALLOC.peak_bytes();
            let total = run.exec_secs + run.analysis_secs;
            times.push(format!("{total:.3}"));
            mems.push(format_bytes(peak));
            csv.push_str(&format!(
                "{},{},{},{:.4},{:.4},{:.4},{}\n",
                run.app, run.ops, run.events, run.exec_secs, run.analysis_secs, total, peak
            ));
        }
        time_table.row({
            let mut r = vec![app.name().to_string()];
            r.extend(times);
            r
        });
        mem_table.row({
            let mut r = vec![app.name().to_string()];
            r.extend(mems);
            r
        });
    }

    println!(
        "(a) Testing time (execution + analysis):\n{}",
        time_table.render()
    );
    println!(
        "(b) Peak memory usage during testing:\n{}",
        mem_table.render()
    );
    println!("CSV:\n{csv}");
    println!(
        "Paper shape: both metrics grow sublinearly on log-log axes; the largest paper \
         run (100k ops) took ~3 min and ~4 GiB on the authors' testbed."
    );
    println!("Note: P-ART is capped at 1k operations, as in the paper (it hangs beyond that).");
}
