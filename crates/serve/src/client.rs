//! Minimal submission client: one blocking round trip over any stream.
//!
//! Used by `hawkset submit`, the CI smoke step, and the e2e tests. The
//! protocol is strictly sequential per connection, so the client is a
//! straight-line function — no state machine.

use std::io::{self, Read, Write};

use crate::frame::{read_frame, write_frame, Frame, FrameKind};

/// Size of one DATA frame's payload when streaming a trace.
pub const DATA_CHUNK: usize = 256 * 1024;

/// Bound on server reply payloads (reports can be large; traces are not
/// echoed back).
const MAX_REPLY: usize = 64 << 20;

/// Outcome of one submission round trip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job ran to completion; findings are durable server-side.
    Done {
        /// Job id assigned at admission.
        job_id: String,
        /// No races reported.
        clean: bool,
        /// Schema-v1 report JSON.
        report_json: String,
    },
    /// The daemon refused the submission (backpressure) — retry later.
    Shed {
        /// The daemon's reason line (leading token is machine-stable).
        reason: String,
    },
    /// The daemon accepted but the job failed (or the protocol did).
    Error {
        /// Job id when the failure happened after admission.
        job_id: Option<String>,
        /// The daemon's message.
        message: String,
    },
}

/// Submits one trace as `tenant` over an established stream and blocks for
/// the verdict. The caller owns connection setup (unix vs TCP) and
/// timeouts (socket read timeouts surface as `Err`).
pub fn submit<S: Read + Write>(
    stream: &mut S,
    tenant: &str,
    trace: &[u8],
) -> io::Result<SubmitOutcome> {
    write_frame(
        stream,
        &Frame::new(FrameKind::Submit, tenant.as_bytes().to_vec()),
    )?;
    stream.flush()?;
    let verdict = expect_frame(stream)?;
    let job_id = match verdict.kind {
        FrameKind::Accepted => verdict.text(),
        FrameKind::Shed => {
            return Ok(SubmitOutcome::Shed {
                reason: verdict.text(),
            })
        }
        FrameKind::Error => {
            return Ok(SubmitOutcome::Error {
                job_id: None,
                message: verdict.text(),
            })
        }
        other => {
            return Err(protocol_err(format!(
                "expected ACCEPTED/SHED, got {other:?}"
            )))
        }
    };
    for chunk in trace.chunks(DATA_CHUNK.max(1)) {
        write_frame(stream, &Frame::new(FrameKind::Data, chunk.to_vec()))?;
    }
    write_frame(stream, &Frame::empty(FrameKind::End))?;
    stream.flush()?;
    let result = expect_frame(stream)?;
    match result.kind {
        FrameKind::Result => {
            let (status, json) = result
                .payload
                .split_first()
                .ok_or_else(|| protocol_err("empty RESULT payload".into()))?;
            Ok(SubmitOutcome::Done {
                job_id,
                clean: *status == 0,
                report_json: String::from_utf8_lossy(json).into_owned(),
            })
        }
        FrameKind::Error => Ok(SubmitOutcome::Error {
            job_id: Some(job_id),
            message: result.text(),
        }),
        other => Err(protocol_err(format!(
            "expected RESULT/ERROR, got {other:?}"
        ))),
    }
}

/// One PING/PONG liveness round trip.
pub fn ping<S: Read + Write>(stream: &mut S) -> io::Result<()> {
    write_frame(stream, &Frame::empty(FrameKind::Ping))?;
    stream.flush()?;
    let f = expect_frame(stream)?;
    if f.kind == FrameKind::Pong {
        Ok(())
    } else {
        Err(protocol_err(format!("expected PONG, got {:?}", f.kind)))
    }
}

fn expect_frame<S: Read>(stream: &mut S) -> io::Result<Frame> {
    read_frame(stream, MAX_REPLY)?
        .ok_or_else(|| protocol_err("daemon closed the connection mid-exchange".into()))
}

fn protocol_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}
