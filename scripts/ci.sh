#!/usr/bin/env bash
# The repo's full gate, in the order a developer wants failures surfaced:
# cheap style first, then compile, then the whole test suite.
# Everything runs offline — third-party deps are vendored under vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "ci: all green"
