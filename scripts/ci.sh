#!/usr/bin/env bash
# The repo's full gate, in the order a developer wants failures surfaced:
# cheap style first, then compile, then the whole test suite.
# Everything runs offline — third-party deps are vendored under vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> bench smoke (pairing throughput, 1 vs 4 threads, fixed seed)"
# Prints events/sec so perf regressions show up in CI logs; fails if the
# parallel report diverges from the sequential one, or if a multi-core
# host measures less than the 1.5x pairing speedup floor.
cargo run --release -q -p hawkset-bench --bin smoke -- --threads 4 --min-speedup 1.5

echo "ci: all green"
