//! Replay-validated repair suggestions (DESIGN.md §4k).
//!
//! HawkSet reports unprotected-store races but leaves the repair to the
//! developer. This module computes, for each reported [`Race`], the minimal
//! instrumentation-level patch that would close it — a
//! [`FixKind::FlushFence`] insertion that persists the store before the
//! conflicting access can observe the open window, or a
//! [`FixKind::LockExtension`] that moves a lock boundary so the store's
//! effective lockset becomes non-empty — and **proves** the patch by
//! replaying the trace with it applied ([`crate::memsim::patch`]) and
//! re-running the pairing analysis.
//!
//! Validity is defined operationally, not syntactically: a suggestion is
//! `validated` only when the patched replay (a) no longer reports the
//! targeted race and (b) reports no race key absent from the baseline
//! report. Suggestions that fail replay validation are **demoted** to
//! [`FixStatus::Candidate`] and carry `validated: false` — they are never
//! silently emitted as fixes. Store-store pairs get no suggestion at all
//! (there is no store→persist window to close on the "load" side, and
//! HawkSet's default analysis deliberately skips them).
//!
//! The replay validates the *recorded schedule* with patched events; it
//! does not explore alternative interleavings the patch might force (a
//! hoisted lock acquisition can serialize threads that ran concurrently in
//! the recording). That caveat is inherent to trace-level validation and
//! is documented with the demotion rules in DESIGN.md §4k.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::addr::{line_base, line_of};
use crate::memsim::patch::{simulate_patched, EventPatch, SyntheticEvent};
use crate::memsim::{AccessSet, LoadAccess, SimConfig, StoreWindow};
use crate::obs::MetricsRegistry;
use crate::trace::{Event, EventKind, LockId, TraceView};
use crate::vclock::ClockOrder;

use super::report::{AnalysisReport, Race, RaceKey};
use super::{engine, AnalysisConfig};

/// Version of the `fixes` section's own schema (the section is an optional
/// addition to report schema v1, exactly like `metrics`).
pub const FIX_SCHEMA_VERSION: u64 = 1;

/// The instrumentation-level repair shapes.
///
/// Sequence numbers refer to the analyzed event stream (after lenient-mode
/// quarantine and event-budget truncation) — the same numbering the
/// simulator replayed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FixKind {
    /// Insert a flush of `line` followed by a fence immediately after the
    /// store event at `after_seq`, closing the store→persist window at the
    /// store point itself.
    ///
    /// When `after_seq` names a store event, the patch is applied at
    /// *every* dynamic store sharing that event's backtrace (the
    /// instrumentation-level stand-in for inserting the flush at the store's
    /// source line); `after_seq`/`line` record the first racy occurrence.
    /// When it names any other event the flush/fence lands literally after
    /// that event — which is how the validator proves wrong insertion
    /// points fail.
    FlushFence {
        /// Sequence number of the witnessed racy store.
        after_seq: u64,
        /// Base address of the cache line to flush.
        line: u64,
    },
    /// Move the `Acquire` of `lock` found at `from_seq` to immediately
    /// before the event at `to_seq` (the racy store), extending the
    /// critical section backwards so the store→persist window runs inside
    /// it and the effective lockset becomes non-empty. (If `from_seq`
    /// names the lock's `Release`, it is moved to immediately *after*
    /// `to_seq` instead — the forward extension.)
    LockExtension {
        /// The lock whose critical section is extended.
        lock: u64,
        /// Sequence number of the moved `Acquire`/`Release` event.
        from_seq: u64,
        /// Sequence number the critical section is extended to cover.
        to_seq: u64,
    },
}

impl FixKind {
    /// One-line human rendering, used by the CLI and crashtest output.
    pub fn summary(&self) -> String {
        match self {
            FixKind::FlushFence { after_seq, line } => {
                format!("flush+fence after seq {after_seq} (line {line:#x})")
            }
            FixKind::LockExtension {
                lock,
                from_seq,
                to_seq,
            } => {
                format!(
                    "extend lock {lock:#x}: move boundary at seq {from_seq} to cover seq {to_seq}"
                )
            }
        }
    }
}

/// Whether a suggestion survived replay validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FixStatus {
    /// Proven by replay: race gone, no new races.
    Fix,
    /// Best attempt that failed replay validation — demoted, never to be
    /// applied blindly.
    Candidate,
}

/// One repair suggestion for one reported race.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FixSuggestion {
    /// The targeted race (stack-pair identity, resolvable via the trace).
    pub race: RaceKey,
    /// The proposed patch.
    pub kind: FixKind,
    /// `true` only when the patched replay kills the race and introduces
    /// no new findings.
    pub validated: bool,
    /// [`FixStatus::Fix`] iff `validated` (the demotion rule).
    pub status: FixStatus,
}

impl FixSuggestion {
    fn new(race: RaceKey, kind: FixKind, validated: bool) -> Self {
        Self {
            race,
            kind,
            validated,
            status: if validated {
                FixStatus::Fix
            } else {
                FixStatus::Candidate
            },
        }
    }

    /// One-line human rendering.
    pub fn summary(&self) -> String {
        format!(
            "{} [{}]",
            self.kind.summary(),
            if self.validated {
                "validated"
            } else {
                "candidate"
            }
        )
    }
}

/// The optional `fixes` section of the schema-v1 JSON envelope:
/// self-versioned, present only when at least one suggestion exists.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FixReport {
    /// [`FIX_SCHEMA_VERSION`].
    pub version: u64,
    /// One entry per non-store-store race, in report order.
    pub suggestions: Vec<FixSuggestion>,
}

impl FixReport {
    /// Wraps suggestions in the versioned envelope.
    pub fn new(suggestions: Vec<FixSuggestion>) -> Self {
        Self {
            version: FIX_SCHEMA_VERSION,
            suggestions,
        }
    }
}

/// Replay-validation of one proposed patch: replays the analyzed event
/// stream with the patch applied as synthetic events and re-runs the
/// pairing analysis under a determinism-preserving copy of `cfg`.
pub struct RepairValidator<'a> {
    view: &'a TraceView<'a>,
    cfg: AnalysisConfig,
    baseline: BTreeSet<RaceKey>,
}

impl<'a> RepairValidator<'a> {
    /// A validator over the analyzed view and the baseline report's race
    /// set (`races` must be the report the suggestions target).
    pub fn new(view: &'a TraceView<'a>, races: &[Race], cfg: &AnalysisConfig) -> Self {
        Self {
            view,
            cfg: replay_config(cfg),
            baseline: races.iter().map(|r| r.key).collect(),
        }
    }

    /// Replays the view with `kind` applied and returns the re-analysis
    /// report, or `None` when the patch is inapplicable (its anchor event
    /// does not exist or has the wrong kind).
    pub fn replay(&self, kind: &FixKind) -> Option<AnalysisReport> {
        let patch = build_patch(self.view, kind)?;
        let access = simulate_patched(
            self.view,
            &patch,
            &SimConfig {
                irh: self.cfg.irh,
                eadr: self.cfg.eadr,
                threads: self.cfg.threads,
                memory_budget: self.cfg.budget.memory_budget,
            },
        );
        let reg = MetricsRegistry::new();
        Some(engine::run_pairing(
            self.view.stacks,
            &access,
            &self.cfg,
            &reg,
        ))
    }

    /// The full verdict: `true` iff the patched replay no longer reports
    /// `target` and reports no race key outside the baseline set.
    pub fn validates(&self, kind: &FixKind, target: RaceKey) -> bool {
        match self.replay(kind) {
            Some(patched) => patched
                .races
                .iter()
                .all(|r| r.key != target && self.baseline.contains(&r.key)),
            None => false,
        }
    }
}

/// Computes one suggestion per non-store-store race in `races`, each
/// validated by replay. `access` must be the access set the report was
/// derived from (the witnesses are matched against it), and `view` the
/// event stream that produced it.
pub fn suggest(
    view: &TraceView<'_>,
    access: &AccessSet,
    races: &[Race],
    cfg: &AnalysisConfig,
) -> Vec<FixSuggestion> {
    if races.is_empty() || cfg.eadr {
        return Vec::new();
    }
    let validator = RepairValidator::new(view, races, cfg);
    let mut out = Vec::new();
    for race in races {
        if race.store_store {
            continue;
        }
        let Some((win, load)) = find_witness(access, cfg, race) else {
            continue;
        };
        let flush = FixKind::FlushFence {
            after_seq: win.store_seq,
            line: line_base(line_of(win.range.start)),
        };
        if validator.validates(&flush, race.key) {
            out.push(FixSuggestion::new(race.key, flush, true));
            continue;
        }
        // The flush alone does not protect the window (no shared lock, no
        // happens-before). If the store's thread enters a critical section
        // the loader also uses *after* the store, hoisting that acquisition
        // over the store gives the window a non-empty effective lockset.
        let mut fixed = false;
        for entry in access.locksets.get(load.ls).iter() {
            let Some(acq_seq) = first_acquire_after(view, win, entry.lock) else {
                continue;
            };
            let ext = FixKind::LockExtension {
                lock: entry.lock.0,
                from_seq: acq_seq,
                to_seq: win.store_seq,
            };
            if validator.validates(&ext, race.key) {
                out.push(FixSuggestion::new(race.key, ext, true));
                fixed = true;
                break;
            }
        }
        if !fixed {
            // Neither shape survives replay: emit the flush as a demoted
            // candidate so the race is still actionable, never as a fix.
            out.push(FixSuggestion::new(race.key, flush, false));
        }
    }
    out
}

/// A determinism-preserving copy of `cfg` for the validation replays:
/// wall-clock budgets, interrupts and fault injection are stripped (a
/// replay must be a pure function of the patched event stream), the event
/// budget is dropped (the view is already the analyzed prefix, and the
/// patch adds events), and `suggest_fixes` is cleared so a replayed
/// analysis never recurses.
fn replay_config(cfg: &AnalysisConfig) -> AnalysisConfig {
    let mut out = cfg.clone();
    out.budget.max_events = None;
    out.budget.deadline = None;
    out.budget.stage_timeout = None;
    out.interrupt = None;
    out.stall_injection = None;
    out.checkpoint_every = None;
    out.stream = Default::default();
    out.suggest_fixes = false;
    out
}

/// First racy (window, load) pair backing `race`, in deterministic
/// (store_seq, load seq) order — the concrete witness the patch anchors
/// to. Mirrors the engine's Algorithm 1 pair predicate on the raw access
/// set (`protects_against` ignores acquisition timestamps, so locksets
/// need no normalization here).
fn find_witness<'a>(
    access: &'a AccessSet,
    cfg: &AnalysisConfig,
    race: &Race,
) -> Option<(&'a StoreWindow, &'a LoadAccess)> {
    let mut loads: Vec<&LoadAccess> = access
        .loads
        .iter()
        .filter(|ld| {
            ld.stack == race.key.load_stack && ld.live() && (cfg.include_atomics || !ld.atomic)
        })
        .collect();
    loads.sort_by_key(|ld| ld.seq);
    let mut windows: Vec<&StoreWindow> = access
        .windows
        .iter()
        .filter(|w| {
            w.stack == race.key.store_stack && w.live() && (cfg.include_atomics || !w.atomic)
        })
        .collect();
    windows.sort_by_key(|w| w.store_seq);
    for win in windows {
        for ld in &loads {
            if ld.tid == win.tid || !win.range.overlaps(&ld.range) {
                continue;
            }
            if cfg.use_hb && hb_ordered(access, win, ld) {
                continue;
            }
            let eff = access.locksets.get(win.effective_ls);
            if eff.protects_against(access.locksets.get(ld.ls)) {
                continue;
            }
            return Some((win, ld));
        }
    }
    None
}

/// Full-clock happens-before filter (Algorithm 1 line 17): ordered iff the
/// load happened-before the store became visible, or the window was closed
/// before the load could run. Never-persisted windows are unbounded.
fn hb_ordered(access: &AccessSet, win: &StoreWindow, ld: &LoadAccess) -> bool {
    let load_vc = access.vclocks.get(ld.vc);
    if matches!(
        load_vc.compare(access.vclocks.get(win.store_vc)),
        ClockOrder::Before | ClockOrder::Equal
    ) {
        return true;
    }
    match win.close_vc {
        Some(cvc) => matches!(
            access.vclocks.get(cvc).compare(load_vc),
            ClockOrder::Before | ClockOrder::Equal
        ),
        None => false,
    }
}

/// Sequence number of the first `Acquire` of `lock` by the window's thread
/// after its store — the candidate acquisition a [`FixKind::LockExtension`]
/// hoists.
fn first_acquire_after(view: &TraceView<'_>, win: &StoreWindow, lock: LockId) -> Option<u64> {
    view.events.iter().find_map(|ev| {
        (ev.seq > win.store_seq
            && ev.tid == win.tid
            && matches!(ev.kind, EventKind::Acquire { lock: l, .. } if l == lock))
        .then_some(ev.seq)
    })
}

/// The event with sequence number `seq` in `view`, if present.
fn find_event(view: &TraceView<'_>, seq: u64) -> Option<Event> {
    let i = view.events.seqs().binary_search(&seq).ok()?;
    view.events.try_get(i)
}

/// Lowers a [`FixKind`] to the event-level edit script the simulator
/// replays, or `None` when the anchor events do not exist or have an
/// incompatible kind (an inapplicable patch can never validate).
pub fn build_patch(view: &TraceView<'_>, kind: &FixKind) -> Option<EventPatch> {
    let mut patch = EventPatch::new();
    match *kind {
        FixKind::FlushFence { after_seq, line } => {
            let anchor = find_event(view, after_seq)?;
            if matches!(anchor.kind, EventKind::Store { .. }) {
                // Source-level interpretation: the fix lands after every
                // dynamic store at the anchor's backtrace, flushing exactly
                // the lines that occurrence wrote.
                for ev in view.events.iter() {
                    if ev.stack != anchor.stack {
                        continue;
                    }
                    let EventKind::Store { range, .. } = ev.kind else {
                        continue;
                    };
                    for l in range.lines() {
                        patch.insert_after(
                            ev.seq,
                            SyntheticEvent {
                                tid: ev.tid,
                                stack: ev.stack,
                                kind: EventKind::Flush { addr: line_base(l) },
                            },
                        );
                    }
                    patch.insert_after(
                        ev.seq,
                        SyntheticEvent {
                            tid: ev.tid,
                            stack: ev.stack,
                            kind: EventKind::Fence,
                        },
                    );
                }
            } else {
                // Literal placement at a non-store anchor: flush the named
                // line right there. This is what makes wrong insertion
                // points falsifiable instead of silently ignored.
                patch.insert_after(
                    after_seq,
                    SyntheticEvent {
                        tid: anchor.tid,
                        stack: anchor.stack,
                        kind: EventKind::Flush { addr: line },
                    },
                );
                patch.insert_after(
                    after_seq,
                    SyntheticEvent {
                        tid: anchor.tid,
                        stack: anchor.stack,
                        kind: EventKind::Fence,
                    },
                );
            }
            Some(patch)
        }
        FixKind::LockExtension {
            lock,
            from_seq,
            to_seq,
        } => {
            let moved = find_event(view, from_seq)?;
            find_event(view, to_seq)?;
            match moved.kind {
                EventKind::Acquire { lock: l, mode } if l.0 == lock => {
                    patch.remove(from_seq);
                    patch.insert_before(
                        to_seq,
                        SyntheticEvent {
                            tid: moved.tid,
                            stack: moved.stack,
                            kind: EventKind::Acquire { lock: l, mode },
                        },
                    );
                    Some(patch)
                }
                EventKind::Release { lock: l } if l.0 == lock => {
                    patch.remove(from_seq);
                    patch.insert_after(
                        to_seq,
                        SyntheticEvent {
                            tid: moved.tid,
                            stack: moved.stack,
                            kind: EventKind::Release { lock: l },
                        },
                    );
                    Some(patch)
                }
                _ => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::memsim::simulate_view;

    /// The Figure 1c trace from the analysis tests: store under lock A,
    /// persisted after the critical section, load under the same lock.
    fn fig1c() -> crate::trace::Trace {
        use crate::addr::AddrRange;
        use crate::trace::{EventKind, Frame, LockId, LockMode, PmRegion, ThreadId, TraceBuilder};
        let mut b = TraceBuilder::new();
        b.add_region(PmRegion {
            base: 0x1000,
            len: 0x1000,
            path: "/mnt/pmem/repair".into(),
        });
        let st = b.intern_stack([Frame::new("writer", "f.rs", 1)]);
        let ld = b.intern_stack([Frame::new("reader", "f.rs", 2)]);
        let t0 = ThreadId(0);
        let t1 = ThreadId(1);
        let a = LockId(0xa);
        b.push(t0, st, EventKind::ThreadCreate { child: t1 });
        b.push(
            t0,
            st,
            EventKind::Acquire {
                lock: a,
                mode: LockMode::Exclusive,
            },
        );
        b.push(
            t0,
            st,
            EventKind::Store {
                range: AddrRange::new(0x1000, 8),
                non_temporal: false,
                atomic: false,
            },
        );
        b.push(t0, st, EventKind::Release { lock: a });
        b.push(
            t1,
            ld,
            EventKind::Acquire {
                lock: a,
                mode: LockMode::Exclusive,
            },
        );
        b.push(
            t1,
            ld,
            EventKind::Load {
                range: AddrRange::new(0x1000, 8),
                atomic: false,
            },
        );
        b.push(t1, ld, EventKind::Release { lock: a });
        b.push(t0, st, EventKind::Flush { addr: 0x1000 });
        b.push(t0, st, EventKind::Fence);
        b.push(t0, st, EventKind::ThreadJoin { child: t1 });
        b.finish()
    }

    #[test]
    fn fig1c_gets_a_validated_flush_fence() {
        let trace = fig1c();
        let cfg = AnalysisConfig::default();
        let report = Analyzer::new(cfg.clone()).run(&trace);
        assert_eq!(report.races.len(), 1);
        let view = TraceView::full(&trace);
        let access = simulate_view(
            view,
            &SimConfig {
                irh: cfg.irh,
                eadr: cfg.eadr,
                threads: cfg.threads,
                memory_budget: None,
            },
        );
        let fixes = suggest(&view, &access, &report.races, &cfg);
        assert_eq!(fixes.len(), 1);
        let fix = &fixes[0];
        assert!(fix.validated, "fig1c is fixable by an in-section flush");
        assert_eq!(fix.status, FixStatus::Fix);
        assert_eq!(fix.race, report.races[0].key);
        assert!(
            matches!(
                fix.kind,
                FixKind::FlushFence {
                    after_seq: 2,
                    line: 0x1000
                }
            ),
            "witness is the seq-2 store: {:?}",
            fix.kind
        );
    }

    #[test]
    fn wrong_insertion_point_is_rejected() {
        let trace = fig1c();
        let cfg = AnalysisConfig::default();
        let report = Analyzer::new(cfg.clone()).run(&trace);
        let view = TraceView::full(&trace);
        let validator = RepairValidator::new(&view, &report.races, &cfg);
        let target = report.races[0].key;
        // Flushing *before* the store exists (anchored at the seq-0
        // ThreadCreate) persists nothing: the line is still clean, the
        // window opens afterwards and closes as late as ever, and the race
        // must survive the replay.
        let early = FixKind::FlushFence {
            after_seq: 0,
            line: 0x1000,
        };
        assert!(!validator.validates(&early, target));
        // A patch anchored to a nonexistent event can never validate.
        let missing = FixKind::FlushFence {
            after_seq: 999,
            line: 0x1000,
        };
        assert!(!validator.validates(&missing, target));
    }

    #[test]
    fn unlocked_concurrent_race_demotes_to_candidate() {
        use crate::addr::AddrRange;
        use crate::trace::{EventKind, Frame, PmRegion, ThreadId, TraceBuilder};
        // No locks, no happens-before: no instrumentation-level patch can
        // close the window before a truly concurrent load. IRH is disabled:
        // with it on, a flush right after the store persists the line before
        // any other thread touches it and the window is (correctly)
        // discarded as initialization — the demotion path needs the window
        // to stay live.
        let mut b = TraceBuilder::new();
        b.add_region(PmRegion {
            base: 0x1000,
            len: 0x1000,
            path: "/mnt/pmem/repair".into(),
        });
        let st = b.intern_stack([Frame::new("writer", "f.rs", 1)]);
        let ld = b.intern_stack([Frame::new("reader", "f.rs", 2)]);
        let t0 = ThreadId(0);
        let t1 = ThreadId(1);
        b.push(t0, st, EventKind::ThreadCreate { child: t1 });
        b.push(
            t0,
            st,
            EventKind::Store {
                range: AddrRange::new(0x1000, 8),
                non_temporal: false,
                atomic: false,
            },
        );
        b.push(
            t1,
            ld,
            EventKind::Load {
                range: AddrRange::new(0x1000, 8),
                atomic: false,
            },
        );
        b.push(t0, st, EventKind::ThreadJoin { child: t1 });
        let trace = b.finish();

        let cfg = AnalysisConfig {
            irh: false,
            ..Default::default()
        };
        let report = Analyzer::new(cfg.clone()).run(&trace);
        assert_eq!(report.races.len(), 1);
        let view = TraceView::full(&trace);
        let access = simulate_view(
            view,
            &SimConfig {
                irh: false,
                ..SimConfig::default()
            },
        );
        let fixes = suggest(&view, &access, &report.races, &cfg);
        assert_eq!(fixes.len(), 1);
        assert!(!fixes[0].validated);
        assert_eq!(fixes[0].status, FixStatus::Candidate);
    }

    #[test]
    fn lock_extension_hoists_a_late_acquire() {
        use crate::addr::AddrRange;
        use crate::trace::{EventKind, Frame, LockId, LockMode, PmRegion, ThreadId, TraceBuilder};
        // Store outside any critical section; the loader's critical
        // section of lock A runs *before* the writer later persists the
        // line inside its own section of A. The pair is concurrent (the
        // writer acquires A only after the loader released it, so no
        // release→acquire edge reaches the load) and the window's
        // effective lockset is empty: a race. A flush right after the
        // store closes the window with the store's empty lockset and no
        // happens-before edge to the load, so FlushFence fails validation.
        // Hoisting the writer's later acquire of A over the store makes
        // the whole window run under A, which the loader holds: validated.
        // (IRH off: an immediate flush would otherwise discard the window
        // as initialization and mask the lock-extension path.)
        let mut b = TraceBuilder::new();
        b.add_region(PmRegion {
            base: 0x1000,
            len: 0x1000,
            path: "/mnt/pmem/repair".into(),
        });
        let st = b.intern_stack([Frame::new("writer", "f.rs", 1)]);
        let ld = b.intern_stack([Frame::new("reader", "f.rs", 2)]);
        let t0 = ThreadId(0);
        let t1 = ThreadId(1);
        let a = LockId(0xa);
        b.push(t0, st, EventKind::ThreadCreate { child: t1 });
        b.push(
            t0,
            st,
            EventKind::Store {
                range: AddrRange::new(0x1000, 8),
                non_temporal: false,
                atomic: false,
            },
        );
        b.push(
            t1,
            ld,
            EventKind::Acquire {
                lock: a,
                mode: LockMode::Exclusive,
            },
        );
        b.push(
            t1,
            ld,
            EventKind::Load {
                range: AddrRange::new(0x1000, 8),
                atomic: false,
            },
        );
        b.push(t1, ld, EventKind::Release { lock: a });
        b.push(
            t0,
            st,
            EventKind::Acquire {
                lock: a,
                mode: LockMode::Exclusive,
            },
        );
        b.push(t0, st, EventKind::Flush { addr: 0x1000 });
        b.push(t0, st, EventKind::Fence);
        b.push(t0, st, EventKind::Release { lock: a });
        b.push(t0, st, EventKind::ThreadJoin { child: t1 });
        let trace = b.finish();

        let cfg = AnalysisConfig {
            irh: false,
            ..Default::default()
        };
        let report = Analyzer::new(cfg.clone()).run(&trace);
        assert_eq!(report.races.len(), 1, "the unprotected window races");
        let view = TraceView::full(&trace);
        let access = simulate_view(
            view,
            &SimConfig {
                irh: false,
                ..SimConfig::default()
            },
        );
        let fixes = suggest(&view, &access, &report.races, &cfg);
        assert_eq!(fixes.len(), 1);
        let fix = &fixes[0];
        assert!(fix.validated, "hoisting the acquire must validate");
        assert!(
            matches!(
                fix.kind,
                FixKind::LockExtension {
                    lock: 0xa,
                    from_seq: 5,
                    to_seq: 1
                }
            ),
            "{:?}",
            fix.kind
        );
    }

    #[test]
    fn fix_status_follows_validation_verdict() {
        let key = RaceKey {
            store_stack: 1,
            load_stack: 2,
        };
        let kind = FixKind::FlushFence {
            after_seq: 0,
            line: 0,
        };
        assert_eq!(FixSuggestion::new(key, kind, true).status, FixStatus::Fix);
        assert_eq!(
            FixSuggestion::new(key, kind, false).status,
            FixStatus::Candidate
        );
    }
}
