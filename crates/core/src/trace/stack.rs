//! Interned call stacks.
//!
//! The original tool replaces the prohibitively expensive `PIN_Backtrace`
//! with call/return instrumentation (§4). Either way, every PM access in a
//! trace carries a call stack, and because the same program points execute
//! millions of times, stacks are heavily duplicated. We intern frames and
//! stacks into dense `u32` ids so that comparing, hashing and storing a
//! stack is O(1) — one of the §4 optimizations that makes the analysis
//! scale.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use super::event::StackId;

/// One stack frame: a function plus the source location of the call site
/// (or of the PM access itself for the innermost frame).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Frame {
    /// Function (or labeled operation) name.
    pub function: String,
    /// Source file.
    pub file: String,
    /// Line number.
    pub line: u32,
}

impl Frame {
    /// Creates a frame.
    pub fn new(function: impl Into<String>, file: impl Into<String>, line: u32) -> Self {
        Self {
            function: function.into(),
            file: file.into(),
            line,
        }
    }

    /// A compact `file:line (function)` rendering.
    pub fn render(&self) -> String {
        format!("{}:{} ({})", self.file, self.line, self.function)
    }
}

impl core::fmt::Display for Frame {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{} ({})", self.file, self.line, self.function)
    }
}

/// Interned frame identifier.
pub type FrameId = u32;

/// Hash-consed table of frames and stacks.
///
/// Stacks are stored innermost-frame-first: `stack[0]` is the PM access
/// site, `stack[last]` is the outermost caller.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StackTable {
    frames: Vec<Frame>,
    #[serde(skip)]
    frame_ids: HashMap<Frame, FrameId>,
    stacks: Vec<Vec<FrameId>>,
    #[serde(skip)]
    stack_ids: HashMap<Vec<FrameId>, StackId>,
}

impl StackTable {
    /// Creates an empty table containing only the empty stack (id 0).
    pub fn new() -> Self {
        let mut t = Self::default();
        let id = t.intern_frames(Vec::new());
        debug_assert_eq!(id, EMPTY_STACK);
        t
    }

    /// Interns a single frame, returning its id.
    pub fn intern_frame(&mut self, frame: Frame) -> FrameId {
        if let Some(&id) = self.frame_ids.get(&frame) {
            return id;
        }
        let id = self.frames.len() as FrameId;
        self.frame_ids.insert(frame.clone(), id);
        self.frames.push(frame);
        id
    }

    /// Interns a stack given as frame ids (innermost first).
    pub fn intern_frames(&mut self, frames: Vec<FrameId>) -> StackId {
        if let Some(&id) = self.stack_ids.get(&frames) {
            return id;
        }
        let id = self.stacks.len() as StackId;
        self.stack_ids.insert(frames.clone(), id);
        self.stacks.push(frames);
        id
    }

    /// Interns a stack given as frames (innermost first).
    pub fn intern_stack(&mut self, frames: impl IntoIterator<Item = Frame>) -> StackId {
        let ids: Vec<FrameId> = frames.into_iter().map(|f| self.intern_frame(f)).collect();
        self.intern_frames(ids)
    }

    /// Returns the frame for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn frame(&self, id: FrameId) -> &Frame {
        &self.frames[id as usize]
    }

    /// Returns the frame ids of stack `id` (innermost first).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn stack(&self, id: StackId) -> &[FrameId] {
        &self.stacks[id as usize]
    }

    /// Returns the frames of stack `id`, innermost first.
    pub fn frames_of(&self, id: StackId) -> impl Iterator<Item = &Frame> {
        self.stacks[id as usize]
            .iter()
            .map(|&f| &self.frames[f as usize])
    }

    /// The innermost frame of stack `id` — the PM access site itself.
    pub fn site(&self, id: StackId) -> Option<&Frame> {
        self.stacks[id as usize]
            .first()
            .map(|&f| &self.frames[f as usize])
    }

    /// Renders stack `id` as a multi-line backtrace, innermost first.
    pub fn render(&self, id: StackId) -> String {
        let mut out = String::new();
        for (depth, frame) in self.frames_of(id).enumerate() {
            out.push_str(&format!("  #{depth} {frame}\n"));
        }
        if out.is_empty() {
            out.push_str("  <no stack>\n");
        }
        out
    }

    /// Number of distinct frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Number of distinct stacks.
    pub fn stack_count(&self) -> usize {
        self.stacks.len()
    }

    /// Rebuilds the lookup maps after deserialization (they are not stored).
    pub fn rebuild_index(&mut self) {
        self.frame_ids = self
            .frames
            .iter()
            .enumerate()
            .map(|(i, f)| (f.clone(), i as FrameId))
            .collect();
        self.stack_ids = self
            .stacks
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as StackId))
            .collect();
    }

    /// Approximate heap footprint in bytes, for the Figure 6 cost study.
    pub fn approx_bytes(&self) -> usize {
        let frames: usize = self
            .frames
            .iter()
            .map(|f| f.function.len() + f.file.len() + std::mem::size_of::<Frame>())
            .sum();
        let stacks: usize = self
            .stacks
            .iter()
            .map(|s| s.len() * 4 + std::mem::size_of::<Vec<FrameId>>())
            .sum();
        frames + stacks
    }
}

/// Id of the empty stack, present in every table.
pub const EMPTY_STACK: StackId = 0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stack_is_id_zero() {
        let t = StackTable::new();
        assert_eq!(t.stack(EMPTY_STACK), &[] as &[FrameId]);
        assert_eq!(t.site(EMPTY_STACK), None);
    }

    #[test]
    fn interning_dedups() {
        let mut t = StackTable::new();
        let s1 = t.intern_stack([
            Frame::new("insert", "btree.h", 560),
            Frame::new("main", "m.c", 1),
        ]);
        let s2 = t.intern_stack([
            Frame::new("insert", "btree.h", 560),
            Frame::new("main", "m.c", 1),
        ]);
        let s3 = t.intern_stack([Frame::new("insert", "btree.h", 571)]);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(t.frame_count(), 3);
        assert_eq!(t.stack_count(), 3); // empty + two distinct
    }

    #[test]
    fn site_is_innermost() {
        let mut t = StackTable::new();
        let s = t.intern_stack([
            Frame::new("leaf", "a.rs", 10),
            Frame::new("caller", "b.rs", 20),
        ]);
        assert_eq!(t.site(s).unwrap().function, "leaf");
        let rendered = t.render(s);
        assert!(rendered.contains("#0 a.rs:10 (leaf)"));
        assert!(rendered.contains("#1 b.rs:20 (caller)"));
    }

    #[test]
    fn rebuild_index_roundtrip() {
        let mut t = StackTable::new();
        let s = t.intern_stack([Frame::new("f", "x.rs", 1)]);
        let json = serde_json::to_string(&t).unwrap();
        let mut back: StackTable = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        // Interning the same stack again must return the same id.
        let s2 = back.intern_stack([Frame::new("f", "x.rs", 1)]);
        assert_eq!(s, s2);
    }
}
