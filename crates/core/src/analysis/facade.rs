//! The library's front door: [`Analyzer`] owns an [`AnalysisConfig`] and
//! runs the full pipeline (simulation → IRH → sharded pairing) or its
//! pairing stage alone. It replaces the `analyze` / `try_analyze` / `pair`
//! free functions, which survive as thin deprecated wrappers.

use std::sync::{Arc, Mutex};

use crate::error::HawkSetError;
use crate::memsim::{simulate_view, AccessSet, SimConfig};
use crate::obs::{MetricsRegistry, MetricsSnapshot, ObsHook, Stage};
use crate::trace::{Trace, TraceView};

use super::{engine, quarantine, AnalysisConfig, AnalysisReport, BudgetExceeded, Strictness};

/// Configured analysis pipeline.
///
/// ```
/// use hawkset_core::analysis::{AnalysisConfig, Analyzer};
/// use hawkset_core::trace::TraceBuilder;
///
/// let analyzer = Analyzer::new(AnalysisConfig::default()).threads(2);
/// let report = analyzer.run(&TraceBuilder::new().finish());
/// assert!(report.is_clean());
/// let metrics = analyzer.metrics().expect("run() records a snapshot");
/// assert!(metrics.conservation_violations().is_empty());
/// ```
#[derive(Default)]
pub struct Analyzer {
    cfg: AnalysisConfig,
    hooks: Vec<Arc<dyn ObsHook>>,
    /// Snapshot of the most recent run, shared across clones of the
    /// cheaply-cloneable facade.
    last_metrics: Arc<Mutex<Option<MetricsSnapshot>>>,
}

impl Clone for Analyzer {
    /// Clones share the hook list and the last-metrics slot.
    fn clone(&self) -> Self {
        Self {
            cfg: self.cfg.clone(),
            hooks: self.hooks.clone(),
            last_metrics: Arc::clone(&self.last_metrics),
        }
    }
}

impl std::fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyzer")
            .field("cfg", &self.cfg)
            .field("hooks", &self.hooks.len())
            .finish_non_exhaustive()
    }
}

impl Analyzer {
    /// An analyzer over an explicit configuration. See also
    /// [`AnalysisConfig::builder`].
    pub fn new(cfg: AnalysisConfig) -> Self {
        Self {
            cfg,
            hooks: Vec::new(),
            last_metrics: Arc::new(Mutex::new(None)),
        }
    }

    /// Sets the worker-thread count for the parallel stages (`0` = use
    /// [`std::thread::available_parallelism`]). Reports are bit-identical
    /// for every value; this knob trades wall-clock for cores only.
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n;
        self
    }

    /// Subscribes a tracing hook to every subsequent run: stage
    /// start/end callbacks (with wall-clock durations) and the final
    /// counter flush. Hooks run inline on the pipeline thread.
    pub fn hook(mut self, hook: Arc<dyn ObsHook>) -> Self {
        self.hooks.push(hook);
        self
    }

    /// The configuration this analyzer runs with.
    pub fn config(&self) -> &AnalysisConfig {
        &self.cfg
    }

    /// The metrics snapshot of the most recent [`run`](Self::run) /
    /// [`try_run`](Self::try_run) / [`run_pairing`](Self::run_pairing) on
    /// this analyzer (or any clone of it); `None` before the first run.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.last_metrics.lock().unwrap().clone()
    }

    fn registry(&self) -> MetricsRegistry {
        MetricsRegistry::with_hooks(self.hooks.clone())
    }

    /// Flushes `reg` into a frozen snapshot, stores it as the analyzer's
    /// last-run metrics and attaches it to `report`.
    fn seal_metrics(&self, reg: &MetricsRegistry, report: &mut AnalysisReport) {
        let snapshot = reg.flush();
        *self.last_metrics.lock().unwrap() = Some(snapshot.clone());
        report.metrics = Some(snapshot);
    }

    /// Runs the full pipeline on a trace assumed well-formed
    /// (builder-produced or validated). For traces of unknown provenance
    /// use [`Analyzer::try_run`], which honors
    /// [`AnalysisConfig::strictness`].
    pub fn run(&self, trace: &Trace) -> AnalysisReport {
        let reg = self.registry();
        let mut report = self.run_with(trace, &reg);
        self.seal_metrics(&reg, &mut report);
        report
    }

    /// [`run`](Self::run) against a caller-owned registry; does not seal.
    fn run_with(&self, trace: &Trace, reg: &MetricsRegistry) -> AnalysisReport {
        let started = std::time::Instant::now();
        let total_stage = reg.stage(Stage::Total);
        let events_total = trace.events.len() as u64;
        // max_events caps the trace through a borrowed sub-slice view — no
        // clone of the event vector, which on capped multi-gigabyte traces
        // used to be the single largest allocation of the run.
        let view = match self.cfg.budget.max_events {
            Some(max) if events_total > max => TraceView::prefix(trace, max as usize),
            _ => TraceView::full(trace),
        };
        let events_analyzed = view.events.len() as u64;
        reg.ingest.events_decoded.set(events_total);
        reg.ingest.events_analyzed.set(events_analyzed);
        reg.ingest
            .events_truncated
            .set(events_total - events_analyzed);
        let access = {
            let _stage = reg.stage(Stage::Simulate);
            simulate_view(
                view,
                &SimConfig {
                    irh: self.cfg.irh,
                    eadr: self.cfg.eadr,
                    threads: self.cfg.threads,
                },
            )
        };
        reg.record_sim(&access.stats);
        let mut report = engine::run_pairing(view, &access, &self.cfg, reg);
        report.stats.sim = access.stats.clone();
        report.coverage.events_analyzed = events_analyzed;
        report.coverage.events_total = events_total;
        if events_analyzed < events_total {
            report.coverage.truncated = true;
            report.coverage.reason = Some(BudgetExceeded::Events);
        }
        drop(total_stage);
        report.stats.duration = started.elapsed();
        report
    }

    /// Runs the pipeline with up-front strictness handling.
    ///
    /// Under [`Strictness::Strict`] an ill-formed trace is rejected with a
    /// typed [`HawkSetError::Validate`]. Under [`Strictness::Lenient`] the
    /// ill-formed events are [quarantined](quarantine) — counted per
    /// category in [`PipelineStats::quarantine`] and in the metrics'
    /// `ingest.events_quarantined` (keeping the ingest conservation law
    /// exact over the *original* event count) — and the remaining
    /// well-formed majority is analyzed normally.
    ///
    /// [`PipelineStats::quarantine`]: super::PipelineStats::quarantine
    pub fn try_run(&self, trace: &Trace) -> Result<AnalysisReport, HawkSetError> {
        match self.cfg.strictness {
            Strictness::Strict => {
                trace.validate()?;
                Ok(self.run(trace))
            }
            Strictness::Lenient => {
                let reg = self.registry();
                let (kept, stats) = quarantine(trace);
                let mut report = self.run_with(&kept, &reg);
                // Re-base the ingest accounting on the original trace:
                // decoded = kept (analyzed + truncated) + quarantined.
                reg.ingest.events_decoded.set(trace.events.len() as u64);
                reg.ingest.events_quarantined.set(stats.total());
                report.stats.quarantine = stats;
                self.seal_metrics(&reg, &mut report);
                Ok(report)
            }
        }
    }

    /// Runs stage 3 (the sharded pairing) alone over a precomputed
    /// [`AccessSet`] — the benchmarking entry point. The report carries
    /// pairing stats, coverage and a pairing-only metrics snapshot
    /// (simulation counters reflect the provided access set; event
    /// coverage and duration stay at their defaults).
    pub fn run_pairing(&self, trace: &Trace, access: &AccessSet) -> AnalysisReport {
        let reg = self.registry();
        reg.record_sim(&access.stats);
        let mut report = engine::run_pairing(TraceView::full(trace), access, &self.cfg, &reg);
        self.seal_metrics(&reg, &mut report);
        report
    }
}

/// Builder for [`AnalysisConfig`]; `AnalysisConfig::builder().build()`
/// equals `AnalysisConfig::default()`.
///
/// ```
/// use hawkset_core::analysis::{AnalysisBudget, AnalysisConfig, Strictness};
///
/// let cfg = AnalysisConfig::builder()
///     .irh(false)
///     .strictness(Strictness::Lenient)
///     .budget(AnalysisBudget {
///         max_candidate_pairs: Some(1_000_000),
///         ..Default::default()
///     })
///     .threads(4)
///     .build();
/// assert!(!cfg.irh);
/// assert_eq!(cfg.threads, 4);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AnalysisConfigBuilder {
    cfg: AnalysisConfig,
}

impl AnalysisConfig {
    /// Starts a builder from the default configuration.
    pub fn builder() -> AnalysisConfigBuilder {
        AnalysisConfigBuilder::default()
    }
}

impl AnalysisConfigBuilder {
    /// See [`AnalysisConfig::irh`].
    pub fn irh(mut self, on: bool) -> Self {
        self.cfg.irh = on;
        self
    }

    /// See [`AnalysisConfig::include_atomics`].
    pub fn include_atomics(mut self, on: bool) -> Self {
        self.cfg.include_atomics = on;
        self
    }

    /// See [`AnalysisConfig::eadr`].
    pub fn eadr(mut self, on: bool) -> Self {
        self.cfg.eadr = on;
        self
    }

    /// See [`AnalysisConfig::use_hb`].
    pub fn use_hb(mut self, on: bool) -> Self {
        self.cfg.use_hb = on;
        self
    }

    /// See [`AnalysisConfig::check_store_store`].
    pub fn check_store_store(mut self, on: bool) -> Self {
        self.cfg.check_store_store = on;
        self
    }

    /// See [`AnalysisConfig::strictness`].
    pub fn strictness(mut self, s: Strictness) -> Self {
        self.cfg.strictness = s;
        self
    }

    /// See [`AnalysisConfig::budget`].
    pub fn budget(mut self, b: super::AnalysisBudget) -> Self {
        self.cfg.budget = b;
        self
    }

    /// See [`AnalysisConfig::threads`].
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> AnalysisConfig {
        self.cfg
    }

    /// Finalizes straight into an [`Analyzer`].
    pub fn build_analyzer(self) -> Analyzer {
        Analyzer::new(self.cfg)
    }
}
