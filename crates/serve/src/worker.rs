//! Panic-isolated, watchdogged worker pool.
//!
//! Same supervision architecture as `pmrace`'s crash-test harness: the
//! actual analysis runs on a *detached* thread behind `catch_unwind`, the
//! supervising worker waits on a channel with `recv_timeout`, and the two
//! failure modes that machinery distinguishes — a caught panic and a hung
//! stage — are both **transient**: the job goes back into the scheduler
//! with capped exponential backoff instead of taking the daemon (or the
//! client's connection) down with it. Deterministic failures — a trace
//! that does not decode, a violated resource limit — are **terminal** on
//! first sight: retrying a parse error buys latency, not success.
//!
//! The durability contract lives here too: a worker sends the job's
//! `RESULT` only after the merged findings hit the stable root (with the
//! default checkpoint cadence of one job). A client that saw `RESULT` can
//! crash the daemon immediately and the finding survives; a client that
//! did not must assume nothing and resubmit — which is exactly what makes
//! resubmission after a SIGKILL converge instead of duplicating.

use std::io::Cursor;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use hawkset_core::analysis::AnalysisConfig;
use hawkset_core::HawkSetError;

use crate::db::RaceDb;
use crate::health::StorageHealth;
use crate::metrics::ServeMetrics;
use crate::sched::{Job, JobReply, Pop, Scheduler};

/// Poison-safe database lock. A worker that panicked mid-`persist` held
/// this mutex, but the database's own invariant is stronger than the
/// poison bit: `working`/`stable` are plain values that are only replaced
/// whole (merge mutates in place, but a failed checkpoint rolls the merge
/// back before the panic can propagate through `persist`'s caller — and
/// the supervised-run architecture means analysis panics never happen
/// under this lock at all). Recovering the guard keeps one crashed job
/// from wedging every later submission and the final drain checkpoint.
pub(crate) fn lock_db(db: &Mutex<RaceDb>) -> MutexGuard<'_, RaceDb> {
    db.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning for the pool and each job's analysis run.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Worker threads (each runs one single-threaded analysis at a time,
    /// so this is also the analysis parallelism bound).
    pub workers: usize,
    /// Retries after transient failures before declaring a job failed.
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_start: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Whole-job watchdog: a run exceeding this is a transient failure.
    pub job_timeout: Duration,
    /// Per-job analysis memory budget (bytes).
    pub memory_budget: Option<u64>,
    /// Per-stage analysis watchdog.
    pub stage_timeout: Option<Duration>,
    /// Ceiling on one submission's trace bytes.
    pub max_trace_bytes: Option<u64>,
    /// Checkpoint the database once this many jobs are merged. `1` (the
    /// default) makes RESULT imply durability; larger trades that for
    /// throughput.
    pub checkpoint_every_jobs: u64,
    /// Compute replay-validated repair suggestions for each racy job and
    /// persist them alongside the findings (the report's optional `fixes`
    /// section and the database records' fix provenance).
    pub suggest_fixes: bool,
    /// Test hook (`HAWKSET_TEST_JOB_DELAY_MS` on the daemon): sleep this
    /// long at the start of every analysis, so tests can saturate a small
    /// pool deterministically.
    pub job_delay: Option<Duration>,
    /// Test hook (`HAWKSET_TEST_PANIC_FIRST_ATTEMPT`): panic every job's
    /// first attempt, driving the retry/backoff path end to end.
    pub panic_first_attempt: bool,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_retries: 2,
            backoff_start: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            job_timeout: Duration::from_secs(120),
            memory_budget: None,
            stage_timeout: None,
            max_trace_bytes: None,
            checkpoint_every_jobs: 1,
            suggest_fixes: false,
            job_delay: None,
            panic_first_attempt: false,
        }
    }
}

impl WorkerConfig {
    /// Reads the test hooks from the daemon's environment. Called once at
    /// startup — hooks are process-scoped, like the streaming pipeline's
    /// `HAWKSET_TEST_SHARD_DELAY_MS`.
    pub fn with_env_hooks(mut self) -> Self {
        self.job_delay = std::env::var("HAWKSET_TEST_JOB_DELAY_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis);
        self.panic_first_attempt = std::env::var_os("HAWKSET_TEST_PANIC_FIRST_ATTEMPT").is_some();
        self
    }
}

/// How far one supervised run got.
enum RunOutcome {
    /// A report (clean or racy) — the job's terminal success.
    Finished(Box<hawkset_core::AnalysisReport>),
    /// Deterministic failure; retrying cannot help.
    Terminal(String),
    /// The analysis thread panicked.
    Panicked(String),
    /// The watchdog expired while the analysis thread was still running.
    TimedOut,
}

/// The running pool; [`join`](WorkerPool::join) after the scheduler
/// drains.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Starts `cfg.workers` supervising threads.
    pub fn spawn(
        cfg: WorkerConfig,
        sched: Arc<Scheduler>,
        db: Arc<Mutex<RaceDb>>,
        metrics: Arc<ServeMetrics>,
        health: Arc<StorageHealth>,
    ) -> Self {
        let handles = (0..cfg.workers.max(1))
            .map(|i| {
                let (cfg, sched, db, metrics, health) = (
                    cfg.clone(),
                    sched.clone(),
                    db.clone(),
                    metrics.clone(),
                    health.clone(),
                );
                std::thread::Builder::new()
                    .name(format!("hawkset-worker-{i}"))
                    .spawn(move || worker_loop(&cfg, &sched, &db, &metrics, &health))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { handles }
    }

    /// Waits for every worker to observe pool closure and exit.
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    cfg: &WorkerConfig,
    sched: &Scheduler,
    db: &Mutex<RaceDb>,
    metrics: &ServeMetrics,
    health: &StorageHealth,
) {
    loop {
        match sched.pop(Duration::from_millis(100)) {
            Pop::Closed => break,
            Pop::Idle => {}
            Pop::Job(job) => handle_job(cfg, sched, db, metrics, health, job),
        }
        metrics.queue_depth.set(sched.depth() as u64);
    }
}

fn handle_job(
    cfg: &WorkerConfig,
    sched: &Scheduler,
    db: &Mutex<RaceDb>,
    metrics: &ServeMetrics,
    health: &StorageHealth,
    mut job: Job,
) {
    match run_supervised(cfg, &job) {
        RunOutcome::Finished(report) => {
            match persist(cfg, db, metrics, health, &job, &report) {
                Ok(()) => {
                    if report.is_clean() {
                        metrics.completed_clean.add(1);
                    } else {
                        metrics.completed_races.add(1);
                    }
                    let _ = job.reply.send(JobReply::Done {
                        clean: report.is_clean(),
                        report_json: report.to_json(),
                    });
                }
                Err(message) => {
                    // The analysis succeeded but durability did not — the
                    // one case where RESULT would lie. Fail the job; the
                    // client resubmits and the dedupe absorbs the overlap.
                    metrics.failed.add(1);
                    let _ = job.reply.send(JobReply::Failed { message });
                }
            }
            sched.resolve();
        }
        RunOutcome::Terminal(message) => {
            metrics.failed.add(1);
            let _ = job.reply.send(JobReply::Failed { message });
            sched.resolve();
        }
        transient @ (RunOutcome::Panicked(_) | RunOutcome::TimedOut) => {
            let why = match &transient {
                RunOutcome::Panicked(msg) => {
                    metrics.worker_panics.add(1);
                    format!("worker panicked: {msg}")
                }
                _ => {
                    metrics.watchdog_fires.add(1);
                    format!("watchdog expired after {:?}", cfg.job_timeout)
                }
            };
            if job.attempts >= cfg.max_retries {
                metrics.failed.add(1);
                let _ = job.reply.send(JobReply::Failed {
                    message: format!("{why} (gave up after {} attempts)", job.attempts + 1),
                });
                sched.resolve();
            } else {
                std::thread::sleep(backoff_for(cfg, job.attempts));
                job.attempts += 1;
                metrics.retries.add(1);
                sched.requeue(job);
            }
        }
    }
}

/// Capped exponential backoff: `start * 2^attempts`, never above the cap.
fn backoff_for(cfg: &WorkerConfig, attempts: u32) -> Duration {
    let mut backoff = cfg.backoff_start;
    for _ in 0..attempts {
        backoff = (backoff * 2).min(cfg.backoff_cap);
    }
    backoff.min(cfg.backoff_cap)
}

/// Runs one analysis on a detached thread and supervises it. The thread is
/// deliberately not joined on timeout — a hung stage must not hang the
/// supervisor; the orphan finishes (or panics) into a dropped channel.
fn run_supervised(cfg: &WorkerConfig, job: &Job) -> RunOutcome {
    let (tx, rx) = channel();
    let bytes = job.trace.clone();
    let attempts = job.attempts;
    let cfg_run = cfg.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("hawkset-job-{}", job.id))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_analysis(&cfg_run, &bytes, attempts)
            }));
            let outcome = match result {
                Ok(Ok(report)) => RunOutcome::Finished(Box::new(report)),
                Ok(Err(e)) => RunOutcome::Terminal(classify_terminal(&e)),
                Err(payload) => RunOutcome::Panicked(panic_message(payload.as_ref())),
            };
            let _ = tx.send(outcome);
        });
    if spawned.is_err() {
        // Thread spawn failure is resource pressure: transient.
        return RunOutcome::TimedOut;
    }
    match rx.recv_timeout(cfg.job_timeout) {
        Ok(outcome) => outcome,
        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
            RunOutcome::TimedOut
        }
    }
}

fn run_analysis(
    cfg: &WorkerConfig,
    bytes: &[u8],
    attempts: u32,
) -> Result<hawkset_core::AnalysisReport, HawkSetError> {
    if attempts == 0 && cfg.panic_first_attempt {
        panic!("injected first-attempt panic (HAWKSET_TEST_PANIC_FIRST_ATTEMPT)");
    }
    if let Some(delay) = cfg.job_delay {
        std::thread::sleep(delay);
    }
    let mut builder = AnalysisConfig::builder()
        .threads(1)
        .suggest_fixes(cfg.suggest_fixes);
    if let Some(bytes) = cfg.memory_budget {
        builder = builder.memory_budget(bytes);
    }
    if let Some(timeout) = cfg.stage_timeout {
        builder = builder.stage_timeout(timeout);
    }
    if let Some(limit) = cfg.max_trace_bytes {
        builder = builder.stream_max_bytes(limit);
    }
    let analyzer = builder.build_analyzer();
    let mut report = analyzer.try_run_stream(Cursor::new(bytes.to_vec()))?;
    if cfg.suggest_fixes && !report.is_clean() {
        // The streaming run consumed its reader, but the submission's
        // bytes are still in hand — decode them once more and validate a
        // repair per race by patched replay. A decode failure here cannot
        // happen for bytes the stream just analyzed, but if it did the
        // report simply ships without a `fixes` section.
        if let Ok(trace) = hawkset_core::trace::io::decode(bytes) {
            analyzer.attach_fixes(&trace, &mut report);
        }
    }
    Ok(report)
}

/// Merges the report into the database and checkpoints per the cadence.
/// On success the findings are durable (cadence 1) or scheduled (cadence
/// > 1); on error the caller fails the job.
///
/// A failed checkpoint is the storage fault plane's main event, and two
/// things must happen before the client hears about it. First, the merge
/// is **rolled back**: the client is told to resubmit, so leaving the
/// findings in the working set would double-count them when a later
/// checkpoint finally lands. Second, the daemon **degrades to
/// read-only**: a disk that just ate a checkpoint will eat the next one
/// too, so admission stops promising durability until a probe (or a real
/// checkpoint, below) proves the storage healthy again.
fn persist(
    cfg: &WorkerConfig,
    db: &Mutex<RaceDb>,
    metrics: &ServeMetrics,
    health: &StorageHealth,
    job: &Job,
    report: &hawkset_core::AnalysisReport,
) -> Result<(), String> {
    let mut db = lock_db(db);
    let prior = db.working().clone();
    db.merge_report(&job.tenant, &report.races, report.fixes.as_ref());
    if db.jobs_since_checkpoint() >= cfg.checkpoint_every_jobs.max(1) {
        if let Err(e) = db.checkpoint() {
            db.restore_working(prior);
            metrics.poisoned_generations.set(db.poisoned_generations());
            health.mark_degraded(&format!("checkpoint failed: {e}"));
            return Err(format!(
                "storage failure: findings are not durable ({e}); resubmit when storage recovers"
            ));
        }
        metrics.checkpoints.add(1);
        metrics.poisoned_generations.set(db.poisoned_generations());
        // A checkpoint that landed is better evidence than any probe.
        health.mark_healthy("checkpoint landed");
    }
    metrics.snapshot_generation.set(db.stable().generation);
    metrics.snapshot_age_jobs.set(db.jobs_since_checkpoint());
    Ok(())
}

/// Renders a terminal analysis error for the ERROR frame.
fn classify_terminal(e: &HawkSetError) -> String {
    format!("analysis failed: {e}")
}

/// Extracts a panic payload's message (same downcast ladder as the
/// crash-test harness).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Scheduler;
    use hawkset_core::addr::AddrRange;
    use hawkset_core::trace::{io, EventKind, Frame, LockId, LockMode, ThreadId, TraceBuilder};
    use std::sync::mpsc::Receiver;

    /// The Figure-1c racy trace, encoded to wire bytes.
    fn racy_trace_bytes() -> Vec<u8> {
        let mut b = TraceBuilder::new();
        let x = AddrRange::new(0x1000, 8);
        let a = LockId(0xa);
        let st = b.intern_stack([Frame::new("writer", "f.rs", 1)]);
        let ld = b.intern_stack([Frame::new("reader", "f.rs", 2)]);
        b.push(
            ThreadId(0),
            st,
            EventKind::ThreadCreate { child: ThreadId(1) },
        );
        b.push(
            ThreadId(0),
            st,
            EventKind::Acquire {
                lock: a,
                mode: LockMode::Exclusive,
            },
        );
        b.push(
            ThreadId(0),
            st,
            EventKind::Store {
                range: x,
                non_temporal: false,
                atomic: false,
            },
        );
        b.push(ThreadId(0), st, EventKind::Release { lock: a });
        b.push(
            ThreadId(1),
            ld,
            EventKind::Acquire {
                lock: a,
                mode: LockMode::Exclusive,
            },
        );
        b.push(
            ThreadId(1),
            ld,
            EventKind::Load {
                range: x,
                atomic: false,
            },
        );
        b.push(ThreadId(1), ld, EventKind::Release { lock: a });
        b.push(ThreadId(0), st, EventKind::Flush { addr: x.start });
        b.push(ThreadId(0), st, EventKind::Fence);
        b.push(
            ThreadId(0),
            st,
            EventKind::ThreadJoin { child: ThreadId(1) },
        );
        io::encode(&b.finish()).to_vec()
    }

    fn pool_fixture(
        tag: &str,
        cfg: WorkerConfig,
    ) -> (
        Arc<Scheduler>,
        Arc<Mutex<RaceDb>>,
        Arc<ServeMetrics>,
        WorkerPool,
        std::path::PathBuf,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "hwk-worker-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let sched = Arc::new(Scheduler::new(16, 16));
        let db = Arc::new(Mutex::new(RaceDb::open(&dir).unwrap()));
        let metrics = Arc::new(ServeMetrics::new());
        let health = Arc::new(StorageHealth::new(
            &dir,
            Arc::new(hawkset_core::RealIo),
            0,
            Duration::from_millis(10),
        ));
        let pool = WorkerPool::spawn(cfg, sched.clone(), db.clone(), metrics.clone(), health);
        (sched, db, metrics, pool, dir)
    }

    fn submit(sched: &Scheduler, tenant: &str, bytes: Vec<u8>) -> Receiver<JobReply> {
        let res = sched.reserve(tenant).unwrap();
        let (tx, rx) = channel();
        sched.commit(res, bytes, tx);
        rx
    }

    #[test]
    fn racy_job_completes_durably_and_replies() {
        let (sched, db, metrics, pool, dir) = pool_fixture("ok", WorkerConfig::default());
        let rx = submit(&sched, "t1", racy_trace_bytes());
        let reply = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let JobReply::Done { clean, report_json } = reply else {
            panic!("expected Done, got {reply:?}");
        };
        assert!(!clean);
        assert!(report_json.contains("\"races\""));
        // RESULT implies durability: the stable root already has the race.
        {
            let db = db.lock().unwrap();
            assert_eq!(db.stable().records.len(), 1);
            assert_eq!(db.stable().records[0].occurrences, 1);
            assert_eq!(db.jobs_since_checkpoint(), 0);
        }
        sched.begin_drain();
        pool.join();
        assert_eq!(metrics.completed_races.get(), 1);
        assert_eq!(metrics.failed.get(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suggest_fixes_persists_validated_fix_records_with_provenance() {
        let cfg = WorkerConfig {
            suggest_fixes: true,
            ..WorkerConfig::default()
        };
        let (sched, db, _metrics, pool, dir) = pool_fixture("fixes", cfg);
        let rx = submit(&sched, "t1", racy_trace_bytes());
        let reply = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let JobReply::Done { clean, report_json } = reply else {
            panic!("expected Done, got {reply:?}");
        };
        assert!(!clean);
        assert!(
            report_json.contains("\"fixes\""),
            "the returned report carries the fixes section: {report_json}"
        );
        {
            // The fix record rode the same checkpoint as the finding: it
            // is already durable in the stable root when RESULT arrives.
            let db = db.lock().unwrap();
            let rec = &db.stable().records[0];
            assert_eq!(rec.fixes.len(), 1);
            assert_eq!(rec.fixes[0].kind, "flush_fence");
            assert!(rec.fixes[0].validated, "fig1c's repair replays clean");
            assert_eq!(rec.fixes[0].occurrences, 1);
            assert_eq!(rec.fixes[0].tenants.len(), 1);
            assert_eq!(rec.fixes[0].tenants[0].tenant, "t1");
        }
        // The same submission with fixes disabled must not grow records.
        let rx = submit(&sched, "t2", racy_trace_bytes());
        let _ = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        {
            let db = db.lock().unwrap();
            let rec = &db.stable().records[0];
            assert_eq!(rec.occurrences, 2);
            assert_eq!(
                rec.fixes[0].occurrences, 2,
                "the pool config applies to every job"
            );
        }
        sched.begin_drain();
        pool.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_trace_fails_terminally_without_retry() {
        let (sched, _db, metrics, pool, dir) = pool_fixture("garbage", WorkerConfig::default());
        let rx = submit(&sched, "t1", b"not a trace at all".to_vec());
        let reply = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let JobReply::Failed { message } = reply else {
            panic!("expected Failed, got {reply:?}");
        };
        assert!(message.contains("analysis failed"), "{message}");
        sched.begin_drain();
        pool.join();
        assert_eq!(metrics.failed.get(), 1);
        assert_eq!(metrics.retries.get(), 0, "decode errors are terminal");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = WorkerConfig {
            backoff_start: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(35),
            ..WorkerConfig::default()
        };
        assert_eq!(backoff_for(&cfg, 0), Duration::from_millis(10));
        assert_eq!(backoff_for(&cfg, 1), Duration::from_millis(20));
        assert_eq!(backoff_for(&cfg, 2), Duration::from_millis(35));
        assert_eq!(backoff_for(&cfg, 10), Duration::from_millis(35));
    }

    #[test]
    fn watchdog_times_out_and_exhausts_retries() {
        let cfg = WorkerConfig {
            workers: 1,
            max_retries: 1,
            backoff_start: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            job_timeout: Duration::from_millis(200),
            // A job that cannot finish inside the 200ms watchdog.
            job_delay: Some(Duration::from_secs(10)),
            ..WorkerConfig::default()
        };
        let (sched, _db, metrics, pool, dir) = pool_fixture("watchdog", cfg);
        let rx = submit(&sched, "t1", racy_trace_bytes());
        let reply = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let JobReply::Failed { message } = reply else {
            panic!("expected Failed, got {reply:?}");
        };
        assert!(message.contains("watchdog"), "{message}");
        assert!(message.contains("gave up"), "{message}");
        sched.begin_drain();
        pool.join();
        assert_eq!(metrics.watchdog_fires.get(), 2, "initial + 1 retry");
        assert_eq!(metrics.retries.get(), 1);
        assert_eq!(metrics.failed.get(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panic_is_transient_and_the_retry_succeeds() {
        let cfg = WorkerConfig {
            workers: 1,
            max_retries: 2,
            backoff_start: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            panic_first_attempt: true,
            ..WorkerConfig::default()
        };
        let (sched, db, metrics, pool, dir) = pool_fixture("panic-retry", cfg);
        let rx = submit(&sched, "t1", racy_trace_bytes());
        let reply = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(
            matches!(reply, JobReply::Done { clean: false, .. }),
            "retry after the injected panic must succeed: {reply:?}"
        );
        assert_eq!(db.lock().unwrap().stable().records.len(), 1);
        sched.begin_drain();
        pool.join();
        assert_eq!(metrics.worker_panics.get(), 1);
        assert_eq!(metrics.retries.get(), 1);
        assert_eq!(metrics.completed_races.get(), 1);
        assert_eq!(metrics.failed.get(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn storage_failure_fails_the_job_degrades_and_resubmission_converges() {
        let dir = std::env::temp_dir().join(format!(
            "hwk-worker-storage-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Occurrence 0 of every site/op pair is consumed by the gen-0
        // bootstrap inside open_with; occurrence 1 is the first real
        // checkpoint's CURRENT swap — the moment durability is claimed.
        let script = hawkset_core::FaultScript::parse("current:rename:1:enospc").unwrap();
        let plane: Arc<dyn hawkset_core::IoPlane> = Arc::new(hawkset_core::ScriptedIo::new(script));
        let db = Arc::new(Mutex::new(RaceDb::open_with(&dir, plane.clone()).unwrap()));
        let sched = Arc::new(Scheduler::new(16, 16));
        let metrics = Arc::new(ServeMetrics::new());
        let health = Arc::new(StorageHealth::new(&dir, plane, 0, Duration::from_millis(1)));
        let pool = WorkerPool::spawn(
            WorkerConfig::default(),
            sched.clone(),
            db.clone(),
            metrics.clone(),
            health.clone(),
        );

        let rx = submit(&sched, "t1", racy_trace_bytes());
        let reply = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let JobReply::Failed { message } = reply else {
            panic!("expected Failed on the eaten checkpoint, got {reply:?}");
        };
        assert!(message.contains("storage failure"), "{message}");
        assert!(message.contains("resubmit"), "{message}");
        assert!(health.is_degraded(), "a lost checkpoint must degrade");
        {
            let db = lock_db(&db);
            assert_eq!(db.working().records.len(), 0, "merge rolled back");
            assert_eq!(db.jobs_since_checkpoint(), 0);
            assert_eq!(db.poisoned_generations(), 1);
        }

        // Blind resubmission (what the retrying client does) converges:
        // the fault was one-shot, so the next checkpoint lands and heals.
        let rx = submit(&sched, "t1", racy_trace_bytes());
        let reply = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(
            matches!(reply, JobReply::Done { clean: false, .. }),
            "resubmission must succeed once storage recovers: {reply:?}"
        );
        assert!(!health.is_degraded(), "a landed checkpoint heals");
        {
            let db = lock_db(&db);
            assert_eq!(db.stable().records.len(), 1);
            assert_eq!(
                db.stable().records[0].occurrences,
                1,
                "rollback must prevent the double count"
            );
        }
        sched.begin_drain();
        pool.join();
        assert_eq!(metrics.failed.get(), 1);
        assert_eq!(metrics.completed_races.get(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panic_message_downcasts() {
        let p: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(p.as_ref()), "boom");
        let p: Box<dyn std::any::Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(panic_message(p.as_ref()), "kaboom");
        let p: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(p.as_ref()), "opaque panic payload");
    }
}
