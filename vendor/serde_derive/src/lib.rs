//! Offline stand-in for the `serde_derive` crate.
//!
//! The build environment has no access to crates.io, so these derive macros
//! are hand-rolled on top of `proc_macro` alone (no `syn`/`quote`). They
//! target the companion vendored `serde` crate's Value-based traits and
//! support exactly the shapes this workspace uses:
//!
//! - named-field structs, tuple structs (newtypes serialize transparently),
//!   and unit structs;
//! - enums with unit / newtype / tuple / struct variants, externally tagged
//!   by default or internally tagged via `#[serde(tag = "...")]`;
//! - the attributes `skip`, `default`, `skip_serializing_if = "path"`,
//!   `flatten`, and `rename_all = "snake_case"` (on enums).
//!
//! Generics are intentionally unsupported — the workspace derives only on
//! concrete types — and hitting one panics with a clear message at compile
//! time rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One `key` or `key = "value"` entry from a `#[serde(...)]` attribute.
#[derive(Clone, Debug)]
struct SerdeMeta {
    key: String,
    value: Option<String>,
}

#[derive(Clone, Debug)]
struct Field {
    name: String,
    metas: Vec<SerdeMeta>,
}

impl Field {
    fn has(&self, key: &str) -> bool {
        self.metas.iter().any(|m| m.key == key)
    }

    fn value_of(&self, key: &str) -> Option<&str> {
        self.metas
            .iter()
            .find(|m| m.key == key)
            .and_then(|m| m.value.as_deref())
    }
}

#[derive(Clone, Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Clone, Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Clone, Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        tag: Option<String>,
        rename_all: Option<String>,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }

    /// Consumes leading attributes, returning the serde metas among them.
    fn eat_attrs(&mut self) -> Vec<SerdeMeta> {
        let mut metas = Vec::new();
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let mut inner = Cursor::new(g.stream());
                    if let Some(TokenTree::Ident(head)) = inner.peek() {
                        if head.to_string() == "serde" {
                            inner.next();
                            if let Some(TokenTree::Group(args)) = inner.next() {
                                metas.extend(parse_serde_metas(args.stream()));
                            }
                        }
                    }
                }
                other => panic!("serde derive: malformed attribute, found {other:?}"),
            }
        }
        metas
    }

    /// Consumes an optional `pub` / `pub(...)` visibility.
    fn eat_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    /// Skips tokens up to a `,` at angle-bracket depth 0 (used to skip a
    /// field's type). The comma itself is consumed.
    fn skip_type(&mut self) {
        let mut depth: i32 = 0;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn parse_serde_metas(stream: TokenStream) -> Vec<SerdeMeta> {
    let mut cur = Cursor::new(stream);
    let mut metas = Vec::new();
    while !cur.at_end() {
        let key = cur.expect_ident("serde attribute key");
        let value = if cur.eat_punct('=') {
            match cur.next() {
                Some(TokenTree::Literal(l)) => {
                    let s = l.to_string();
                    Some(s.trim_matches('"').to_string())
                }
                other => panic!("serde derive: expected literal after `=`, found {other:?}"),
            }
        } else {
            None
        };
        metas.push(SerdeMeta { key, value });
        cur.eat_punct(',');
    }
    metas
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let metas = cur.eat_attrs();
        if cur.at_end() {
            break;
        }
        cur.eat_visibility();
        let name = cur.expect_ident("field name");
        if !cur.eat_punct(':') {
            panic!("serde derive: expected `:` after field `{name}`");
        }
        cur.skip_type();
        fields.push(Field { name, metas });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    loop {
        cur.eat_attrs();
        if cur.at_end() {
            break;
        }
        cur.eat_visibility();
        count += 1;
        cur.skip_type();
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.eat_attrs();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("variant name");
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = parse_tuple_fields(g.stream());
                cur.next();
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        };
        cur.eat_punct(',');
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    let item_metas = cur.eat_attrs();
    cur.eat_visibility();
    let kw = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic type `{name}` is not supported");
        }
    }
    match kw.as_str() {
        "struct" => {
            let shape = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let tag = item_metas
                .iter()
                .find(|m| m.key == "tag")
                .and_then(|m| m.value.clone());
            let rename_all = item_metas
                .iter()
                .find(|m| m.key == "rename_all")
                .and_then(|m| m.value.clone());
            let variants = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde derive: expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                tag,
                rename_all,
                variants,
            }
        }
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    }
}

/// Applies `rename_all = "snake_case"` (the only convention the workspace
/// uses) to a variant name.
fn rename(name: &str, convention: Option<&str>) -> String {
    match convention {
        Some("snake_case") => {
            let mut out = String::new();
            for (i, ch) in name.chars().enumerate() {
                if ch.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(ch.to_ascii_lowercase());
                } else {
                    out.push(ch);
                }
            }
            out
        }
        Some(other) => panic!("serde derive (vendored): rename_all = \"{other}\" not supported"),
        None => name.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

/// Emits statements that insert `fields` (reachable via `prefix`, e.g.
/// `&self.name` or a match binding) into a `Map` named `__m`.
fn ser_named_fields(out: &mut String, fields: &[Field], expr_of: impl Fn(&str) -> String) {
    for f in fields {
        if f.has("skip") {
            continue;
        }
        let expr = expr_of(&f.name);
        let insert = format!(
            "__m.insert(\"{}\", ::serde::Serialize::serialize_value({expr}));\n",
            f.name
        );
        if f.has("flatten") {
            out.push_str(&format!(
                "match ::serde::Serialize::serialize_value({expr}) {{\n\
                     ::serde::Value::Object(__inner) => {{ for (__k, __v) in __inner {{ __m.insert(__k, __v); }} }}\n\
                     __other => {{ __m.insert(\"{}\", __other); }}\n\
                 }}\n",
                f.name
            ));
        } else if let Some(pred) = f.value_of("skip_serializing_if") {
            out.push_str(&format!("if !{pred}({expr}) {{ {insert} }}\n"));
        } else {
            out.push_str(&insert);
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    let name = match item {
        Item::Struct { name, shape } => {
            match shape {
                Shape::Unit => body.push_str("::serde::Value::Null\n"),
                Shape::Tuple(1) => {
                    body.push_str("::serde::Serialize::serialize_value(&self.0)\n");
                }
                Shape::Tuple(n) => {
                    body.push_str("::serde::Value::Array(vec![\n");
                    for i in 0..*n {
                        body.push_str(&format!(
                            "::serde::Serialize::serialize_value(&self.{i}),\n"
                        ));
                    }
                    body.push_str("])\n");
                }
                Shape::Named(fields) => {
                    body.push_str("let mut __m = ::serde::Map::new();\n");
                    ser_named_fields(&mut body, fields, |f| format!("&self.{f}"));
                    body.push_str("::serde::Value::Object(__m)\n");
                }
            }
            name
        }
        Item::Enum {
            name,
            tag,
            rename_all,
            variants,
        } => {
            body.push_str("match self {\n");
            for v in variants {
                let vname = rename(&v.name, rename_all.as_deref());
                match (&v.shape, tag) {
                    (Shape::Unit, None) => {
                        body.push_str(&format!(
                            "{name}::{} => ::serde::Value::String(\"{vname}\".to_string()),\n",
                            v.name
                        ));
                    }
                    (Shape::Unit, Some(tag)) => {
                        body.push_str(&format!(
                            "{name}::{} => {{ let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{tag}\", ::serde::Value::String(\"{vname}\".to_string()));\n\
                             ::serde::Value::Object(__m) }}\n",
                            v.name
                        ));
                    }
                    (Shape::Named(fields), None) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        body.push_str(&format!(
                            "{name}::{} {{ {} }} => {{ let mut __m = ::serde::Map::new();\n",
                            v.name,
                            binds.join(", ")
                        ));
                        ser_named_fields(&mut body, fields, |f| f.to_string());
                        body.push_str(&format!(
                            "let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(\"{vname}\", ::serde::Value::Object(__m));\n\
                             ::serde::Value::Object(__outer) }}\n"
                        ));
                    }
                    (Shape::Named(fields), Some(tag)) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        body.push_str(&format!(
                            "{name}::{} {{ {} }} => {{ let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{tag}\", ::serde::Value::String(\"{vname}\".to_string()));\n",
                            v.name,
                            binds.join(", ")
                        ));
                        ser_named_fields(&mut body, fields, |f| f.to_string());
                        body.push_str("::serde::Value::Object(__m) }\n");
                    }
                    (Shape::Tuple(n), None) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize_value(__x0)".to_string()
                        } else {
                            format!(
                                "::serde::Value::Array(vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        body.push_str(&format!(
                            "{name}::{}({}) => {{ let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(\"{vname}\", {inner});\n\
                             ::serde::Value::Object(__outer) }}\n",
                            v.name,
                            binds.join(", ")
                        ));
                    }
                    (Shape::Tuple(_), Some(_)) => panic!(
                        "serde derive (vendored): tuple variants cannot be internally tagged"
                    ),
                }
            }
            body.push_str("}\n");
            name
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

/// Emits a `name: expr,` struct-literal line per field, reading from a map
/// named `__obj` (and the whole value `__whole` for `flatten`).
fn de_named_fields(out: &mut String, fields: &[Field]) {
    for f in fields {
        let n = &f.name;
        if f.has("skip") {
            out.push_str(&format!("{n}: ::std::default::Default::default(),\n"));
        } else if f.has("flatten") {
            out.push_str(&format!(
                "{n}: ::serde::Deserialize::deserialize_value(__whole)?,\n"
            ));
        } else if f.has("default") {
            out.push_str(&format!(
                "{n}: match __obj.get(\"{n}\") {{\n\
                     Some(__x) if !__x.is_null() => ::serde::Deserialize::deserialize_value(__x)?,\n\
                     _ => ::std::default::Default::default(),\n\
                 }},\n"
            ));
        } else {
            out.push_str(&format!(
                "{n}: ::serde::Deserialize::deserialize_value(\
                     __obj.get(\"{n}\").unwrap_or(&::serde::Value::Null))\
                     .map_err(|__e| ::serde::DeError::new(\
                         format!(\"field `{n}`: {{__e}}\")))?,\n"
            ));
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let mut body = String::new();
    let name = match item {
        Item::Struct { name, shape } => {
            match shape {
                Shape::Unit => body.push_str(&format!(
                    "::std::result::Result::Ok({name})\n"
                )),
                Shape::Tuple(1) => body.push_str(&format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))\n"
                )),
                Shape::Tuple(n) => {
                    body.push_str(&format!(
                        "let __arr = __v.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"array for {name}\", __v))?;\n\
                         if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::new(\"wrong tuple length for {name}\")); }}\n\
                         ::std::result::Result::Ok({name}(\n"
                    ));
                    for i in 0..*n {
                        body.push_str(&format!(
                            "::serde::Deserialize::deserialize_value(&__arr[{i}])?,\n"
                        ));
                    }
                    body.push_str("))\n");
                }
                Shape::Named(fields) => {
                    body.push_str(&format!(
                        "let __whole = __v;\n\
                         let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object for {name}\", __v))?;\n\
                         let _ = (__whole, __obj);\n\
                         ::std::result::Result::Ok({name} {{\n"
                    ));
                    de_named_fields(&mut body, fields);
                    body.push_str("})\n");
                }
            }
            name
        }
        Item::Enum {
            name,
            tag,
            rename_all,
            variants,
        } => {
            match tag {
                None => {
                    // Externally tagged: a bare string for unit variants, a
                    // single-key object otherwise.
                    body.push_str(
                        "match __v {\n::serde::Value::String(__s) => match __s.as_str() {\n",
                    );
                    for v in variants {
                        if matches!(v.shape, Shape::Unit) {
                            let vname = rename(&v.name, rename_all.as_deref());
                            body.push_str(&format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{}),\n",
                                v.name
                            ));
                        }
                    }
                    body.push_str(&format!(
                        "__other => ::std::result::Result::Err(::serde::DeError::new(\
                             format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n"
                    ));
                    body.push_str(
                        "::serde::Value::Object(__m) if __m.len() == 1 => {\n\
                             let (__k, __inner) = __m.iter().next().unwrap();\n\
                             match __k.as_str() {\n",
                    );
                    for v in variants {
                        let vname = rename(&v.name, rename_all.as_deref());
                        match &v.shape {
                            Shape::Unit => {
                                body.push_str(&format!(
                                    "\"{vname}\" => ::std::result::Result::Ok({name}::{}),\n",
                                    v.name
                                ));
                            }
                            Shape::Tuple(1) => {
                                body.push_str(&format!(
                                    "\"{vname}\" => ::std::result::Result::Ok({name}::{}(\
                                         ::serde::Deserialize::deserialize_value(__inner)?)),\n",
                                    v.name
                                ));
                            }
                            Shape::Tuple(n) => {
                                body.push_str(&format!(
                                    "\"{vname}\" => {{\n\
                                         let __arr = __inner.as_array().ok_or_else(|| \
                                             ::serde::DeError::expected(\"array\", __inner))?;\n\
                                         if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                                             ::serde::DeError::new(\"wrong tuple length\")); }}\n\
                                         ::std::result::Result::Ok({name}::{}(\n",
                                    v.name
                                ));
                                for i in 0..*n {
                                    body.push_str(&format!(
                                        "::serde::Deserialize::deserialize_value(&__arr[{i}])?,\n"
                                    ));
                                }
                                body.push_str("))\n}\n");
                            }
                            Shape::Named(fields) => {
                                body.push_str(&format!(
                                    "\"{vname}\" => {{\n\
                                         let __whole = __inner;\n\
                                         let __obj = __inner.as_object().ok_or_else(|| \
                                             ::serde::DeError::expected(\"object\", __inner))?;\n\
                                         let _ = (__whole, __obj);\n\
                                         ::std::result::Result::Ok({name}::{} {{\n",
                                    v.name
                                ));
                                de_named_fields(&mut body, fields);
                                body.push_str("})\n}\n");
                            }
                        }
                    }
                    body.push_str(&format!(
                        "__other => ::std::result::Result::Err(::serde::DeError::new(\
                             format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n}}\n\
                         __other => ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"{name}\", __other)),\n}}\n"
                    ));
                }
                Some(tag) => {
                    body.push_str(&format!(
                        "let __whole = __v;\n\
                         let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object for {name}\", __v))?;\n\
                         let _ = __whole;\n\
                         let __tag = __obj.get(\"{tag}\").and_then(|__t| __t.as_str()).ok_or_else(|| \
                             ::serde::DeError::new(\"missing `{tag}` tag for {name}\"))?;\n\
                         match __tag {{\n"
                    ));
                    for v in variants {
                        let vname = rename(&v.name, rename_all.as_deref());
                        match &v.shape {
                            Shape::Unit => {
                                body.push_str(&format!(
                                    "\"{vname}\" => ::std::result::Result::Ok({name}::{}),\n",
                                    v.name
                                ));
                            }
                            Shape::Named(fields) => {
                                body.push_str(&format!(
                                    "\"{vname}\" => ::std::result::Result::Ok({name}::{} {{\n",
                                    v.name
                                ));
                                de_named_fields(&mut body, fields);
                                body.push_str("}),\n");
                            }
                            Shape::Tuple(_) => panic!(
                                "serde derive (vendored): tuple variants cannot be internally tagged"
                            ),
                        }
                    }
                    body.push_str(&format!(
                        "__other => ::std::result::Result::Err(::serde::DeError::new(\
                             format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n"
                    ));
                }
            }
            name
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Derives `serde::Serialize` for the subset of shapes this workspace uses.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for the subset of shapes this workspace uses.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl must parse")
}
