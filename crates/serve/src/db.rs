//! Crash-safe cumulative race database with copy-on-write snapshots.
//!
//! The daemon outlives any single analysis, so its findings store must
//! survive SIGKILL at any instruction. The design is the two-root
//! checkpoint scheme of log-structured B-trees (stable root / working
//! root, atomic root swap):
//!
//! * **Stable root** — the file named by `CURRENT`. Immutable: once a
//!   snapshot file is part of the stable history it is never rewritten, so
//!   a reader (`hawkset query`, a crashed daemon restarting) can always
//!   load it without coordinating with the writer.
//! * **Working root** — the in-memory accumulation of merges since the
//!   last checkpoint. It references the stable state by value (records are
//!   copied on first modification of the run) and is lost on a crash by
//!   design: everything in it is reconstructible by resubmitting the
//!   traces whose results had not been checkpointed.
//! * **Checkpoint = atomic root swap** — the working state is serialized
//!   to a *new* generation file (`snapshot-NNNNNN.json`, tmp + fsync +
//!   rename), and only then `CURRENT` is swapped (tmp + fsync + rename) to
//!   name it. A crash before the swap leaves an orphan snapshot that
//!   recovery ignores and deletes; a crash during either rename leaves
//!   either the old or the new file — never a torn one.
//!
//! Every snapshot carries a version and a checksum over its canonical
//! content, so recovery can detect a torn or truncated file (possible if
//! the filesystem reorders the rename past the data blocks, or if an
//! operator copies files around) and fall back: first to the snapshot
//! `CURRENT` names, then to the highest-generation snapshot that
//! validates, then to an empty store. Recovered state is therefore always
//! a **prefix of the checkpoint history** — never a blend of two
//! generations, never a half-applied merge.
//!
//! Records are deduplicated **across runs and tenants** by the race's
//! stable identity — the (store site, load site) frame pair — with an
//! occurrence count and per-tenant provenance, which is what keeps the
//! database bounded by the number of *distinct* races rather than the
//! number of submissions.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use hawkset_core::analysis::{FixKind, FixReport, FixSuggestion, Race};
use hawkset_core::ioplane::{self, IoPlane, RealIo};
use serde::{Deserialize, Serialize};

/// Version of the snapshot file format. Recovery refuses other versions
/// (an unreadable generation is skipped exactly like a torn one).
pub const DB_VERSION: u32 = 1;

/// Stable snapshot generations kept on disk beyond the current one.
/// History is for operators and post-mortems; recovery only ever needs
/// the newest valid file.
const RETAIN_SNAPSHOTS: u64 = 2;

/// Name of the root-pointer file.
const CURRENT: &str = "CURRENT";

/// The cross-trace identity of a race: the store and load *sites*. Stack
/// ids are trace-local and useless across runs; the innermost frames are
/// what Table 2 of the paper names races by, and what two different
/// executions of the same program agree on.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RaceSiteKey {
    /// Store-site function name.
    pub store_function: String,
    /// Store-site source file.
    pub store_file: String,
    /// Store-site line.
    pub store_line: u32,
    /// Load-site function name (second store for store/store pairs).
    pub load_function: String,
    /// Load-site source file.
    pub load_file: String,
    /// Load-site line.
    pub load_line: u32,
    /// `true` for store/store pairs — a different finding kind, so it
    /// never dedupes against a store/load pair at the same sites.
    pub store_store: bool,
}

impl RaceSiteKey {
    /// The key of a reported race. Unresolvable sites (stripped stacks)
    /// collapse to a placeholder, which keeps them mergeable rather than
    /// unique-per-submission.
    pub fn of(race: &Race) -> Self {
        let site = |f: &Option<hawkset_core::trace::Frame>| match f {
            Some(f) => (f.function.clone(), f.file.clone(), f.line),
            None => ("<unknown>".to_string(), String::new(), 0),
        };
        let (store_function, store_file, store_line) = site(&race.store_site);
        let (load_function, load_file, load_line) = site(&race.load_site);
        Self {
            store_function,
            store_file,
            store_line,
            load_function,
            load_file,
            load_line,
            store_store: race.store_store,
        }
    }

    /// `store -> load` rendering for logs and the query listing.
    pub fn render(&self) -> String {
        format!(
            "{}:{} ({}) -> {}:{} ({})",
            self.store_file,
            self.store_line,
            self.store_function,
            self.load_file,
            self.load_line,
            self.load_function
        )
    }
}

/// Per-tenant provenance of one record.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantCount {
    /// Tenant name as presented at submission.
    pub tenant: String,
    /// Reported race entries merged from this tenant's submissions.
    pub submissions: u64,
}

/// One deduplicated repair suggestion attributed to a record's race site.
///
/// The cross-run identity is the patch *shape* plus its verdict: the event
/// sequence numbers inside a [`FixKind`] are trace-local and differ
/// between submissions of different recordings, so two runs agree only on
/// the kind discriminant and on whether the replay proved the patch.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixRecord {
    /// Patch shape: `"flush_fence"` or `"lock_extension"` (the same
    /// discriminant names the report's `fixes` section uses).
    pub kind: String,
    /// `true` when the submissions carrying this record replayed the
    /// patch and the race disappeared; demoted candidates persist with
    /// `false` and are never presented as fixes.
    pub validated: bool,
    /// First-seen concrete rendering — illustrative only, since its
    /// event sequence numbers are local to that submission's trace.
    pub example: String,
    /// Submissions whose report carried a suggestion of this shape.
    pub occurrences: u64,
    /// Per-tenant provenance, sorted by tenant name.
    pub tenants: Vec<TenantCount>,
}

/// One deduplicated race across every submission that ever reported it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RaceRecord {
    /// Cross-run identity.
    pub key: RaceSiteKey,
    /// Submissions whose report contained this race (the dedupe count).
    pub occurrences: u64,
    /// Concrete racy (window, load) pairs summed over all submissions.
    pub pair_count_total: u64,
    /// OR over submissions: some racy window was never persisted at all.
    pub store_never_persisted: bool,
    /// OR over submissions: some racy window had an empty effective
    /// lockset.
    pub effective_lockset_empty: bool,
    /// OR over submissions: the store was atomic.
    pub store_atomic: bool,
    /// OR over submissions: the load was atomic.
    pub load_atomic: bool,
    /// OR over submissions: the store was non-temporal.
    pub store_non_temporal: bool,
    /// Per-tenant provenance, sorted by tenant name.
    pub tenants: Vec<TenantCount>,
    /// Deduplicated repair suggestions merged from fix-bearing reports,
    /// sorted by (kind, validated). Skipped from serialization while
    /// empty, so snapshots written before any fix arrived — including
    /// every pre-fix-era file on disk — keep their exact bytes and
    /// therefore their checksums.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub fixes: Vec<FixRecord>,
}

impl RaceRecord {
    fn new(key: RaceSiteKey) -> Self {
        Self {
            key,
            occurrences: 0,
            pair_count_total: 0,
            store_never_persisted: false,
            effective_lockset_empty: false,
            store_atomic: false,
            load_atomic: false,
            store_non_temporal: false,
            tenants: Vec::new(),
            fixes: Vec::new(),
        }
    }

    fn merge(&mut self, tenant: &str, race: &Race, fix: Option<&FixSuggestion>) {
        self.occurrences += 1;
        self.pair_count_total += race.pair_count;
        self.store_never_persisted |= race.store_never_persisted;
        self.effective_lockset_empty |= race.effective_lockset_empty;
        self.store_atomic |= race.store_atomic;
        self.load_atomic |= race.load_atomic;
        self.store_non_temporal |= race.store_non_temporal;
        bump_tenant(&mut self.tenants, tenant);
        if let Some(s) = fix {
            self.merge_fix(tenant, s);
        }
    }

    fn merge_fix(&mut self, tenant: &str, s: &FixSuggestion) {
        let kind = fix_kind_name(&s.kind);
        let probe = (kind, s.validated);
        let i = match self
            .fixes
            .binary_search_by(|f| (f.kind.as_str(), f.validated).cmp(&probe))
        {
            Ok(i) => i,
            Err(i) => {
                self.fixes.insert(
                    i,
                    FixRecord {
                        kind: kind.to_string(),
                        validated: s.validated,
                        example: s.kind.summary(),
                        occurrences: 0,
                        tenants: Vec::new(),
                    },
                );
                i
            }
        };
        self.fixes[i].occurrences += 1;
        bump_tenant(&mut self.fixes[i].tenants, tenant);
    }
}

/// The wire name of a fix's shape — matches the serde tag of [`FixKind`],
/// so the database speaks the same vocabulary as the report's `fixes`
/// section.
fn fix_kind_name(kind: &FixKind) -> &'static str {
    match kind {
        FixKind::FlushFence { .. } => "flush_fence",
        FixKind::LockExtension { .. } => "lock_extension",
    }
}

/// Sorted-insert-or-bump for a per-tenant provenance list.
fn bump_tenant(tenants: &mut Vec<TenantCount>, tenant: &str) {
    match tenants.binary_search_by(|t| t.tenant.as_str().cmp(tenant)) {
        Ok(i) => tenants[i].submissions += 1,
        Err(i) => tenants.insert(
            i,
            TenantCount {
                tenant: tenant.to_string(),
                submissions: 1,
            },
        ),
    }
}

/// One serialized root: the whole record set at a checkpoint boundary.
/// Small enough to rewrite wholesale — the record count is bounded by
/// *distinct* races, not submissions — which buys the strongest possible
/// torn-write story: one file, one checksum, valid or not.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DbSnapshot {
    /// [`DB_VERSION`] at write time.
    pub version: u32,
    /// Monotonic checkpoint generation; generation 0 is the empty
    /// bootstrap snapshot.
    pub generation: u64,
    /// Submissions merged into this snapshot over its whole history.
    pub jobs_recorded: u64,
    /// Records sorted by [`RaceSiteKey`] — the canonical order, so equal
    /// states serialize to equal bytes.
    pub records: Vec<RaceRecord>,
    /// FNV-1a 64 over the canonical content (see [`content_digest`]);
    /// detects torn and truncated files on recovery.
    pub checksum: String,
}

impl DbSnapshot {
    fn empty() -> Self {
        let mut s = Self {
            version: DB_VERSION,
            ..Self::default()
        };
        s.checksum = content_digest(&s);
        s
    }

    /// True when the version matches and the checksum covers the content.
    pub fn validates(&self) -> bool {
        self.version == DB_VERSION && self.checksum == content_digest(self)
    }

    /// Canonical pretty JSON — byte-stable for equal states, which is what
    /// the kill-and-recover tests compare.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization cannot fail")
    }
}

/// FNV-1a 64 of the snapshot's content fields (everything but the checksum
/// itself), over their canonical JSON rendering.
fn content_digest(s: &DbSnapshot) -> String {
    let records = serde_json::to_string(&s.records).expect("record serialization cannot fail");
    let content = format!(
        "v{};g{};j{};{}",
        s.version, s.generation, s.jobs_recorded, records
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in content.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// A database failure. Corruption is *not* one — recovery absorbs it;
/// only real I/O failures (unwritable directory, full disk) surface.
#[derive(Debug)]
pub struct DbError {
    /// What the database was doing.
    pub context: String,
    /// The underlying I/O failure.
    pub source: io::Error,
}

impl core::fmt::Display for DbError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "race database: {}: {}", self.context, self.source)
    }
}

impl std::error::Error for DbError {}

fn db_err(context: impl Into<String>) -> impl FnOnce(io::Error) -> DbError {
    let context = context.into();
    move |source| DbError { context, source }
}

/// What [`RaceDb::open`] had to do to produce a usable stable root —
/// surfaced so the daemon can log honest recovery lines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recovery {
    /// `CURRENT` was missing, unreadable, or named an invalid snapshot.
    pub root_pointer_rebuilt: bool,
    /// Snapshot files that failed validation (torn/truncated/foreign).
    pub invalid_snapshots: Vec<String>,
    /// Orphan snapshots from a crashed root swap (generation newer than
    /// the recovered stable root), deleted on open.
    pub orphans_removed: Vec<String>,
}

/// The open database: a stable root on disk plus a working root in memory.
#[derive(Debug)]
pub struct RaceDb {
    dir: PathBuf,
    stable: DbSnapshot,
    working: DbSnapshot,
    recovery: Recovery,
    plane: Arc<dyn IoPlane>,
    /// Generation number the next checkpoint will use. Normally
    /// `stable.generation + 1`, but a failed checkpoint *poisons* its
    /// generation (fsyncgate: after a failed fsync the file's durability
    /// is unknowable — never retry in place), so this only moves forward.
    next_generation: u64,
    /// Checkpoint generations poisoned by a failed write since open.
    poisoned_generations: u64,
}

impl RaceDb {
    /// Opens (or initializes) the database in `dir`, recovering to the
    /// newest valid stable snapshot. Corrupt state never fails the open;
    /// it narrows what is recovered.
    pub fn open(dir: &Path) -> Result<Self, DbError> {
        Self::open_with(dir, Arc::new(RealIo))
    }

    /// [`open`](Self::open) with an explicit I/O plane — the seam the
    /// fault-injection tests and the daemon's `HAWKSET_IO_FAULT_SCRIPT`
    /// chaos mode use.
    pub fn open_with(dir: &Path, plane: Arc<dyn IoPlane>) -> Result<Self, DbError> {
        std::fs::create_dir_all(dir).map_err(db_err(format!("create {}", dir.display())))?;
        let mut recovery = Recovery::default();

        // Crash hygiene first: a tmp file is, by construction, a write
        // that never committed.
        for (path, name) in list_dir(dir)? {
            if name.ends_with(".tmp") {
                let _ = std::fs::remove_file(&path);
            }
        }

        let named = std::fs::read_to_string(dir.join(CURRENT))
            .ok()
            .map(|s| s.trim().to_string());
        let mut stable = match &named {
            Some(name) => match load_snapshot(&dir.join(name)) {
                Ok(s) => Some(s),
                Err(why) => {
                    recovery.invalid_snapshots.push(format!("{name}: {why}"));
                    None
                }
            },
            None => None,
        };
        if stable.is_none() {
            // CURRENT is gone or lies: scan generations newest-first. Every
            // snapshot was fully written *before* any root pointed at it,
            // so the newest valid file is a real point of the history.
            recovery.root_pointer_rebuilt = true;
            let mut candidates = snapshot_files(dir)?;
            candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
            for (_gen, path, name) in candidates {
                if Some(&name) == named.as_ref() {
                    continue; // already failed validation above
                }
                match load_snapshot(&path) {
                    Ok(s) => {
                        stable = Some(s);
                        break;
                    }
                    Err(why) => recovery.invalid_snapshots.push(format!("{name}: {why}")),
                }
            }
        }
        let stable = match stable {
            Some(s) => s,
            None => DbSnapshot::empty(),
        };

        let next_generation = stable.generation + 1;
        let mut db = Self {
            dir: dir.to_path_buf(),
            working: stable.clone(),
            stable,
            recovery,
            plane,
            next_generation,
            poisoned_generations: 0,
        };
        // Re-commit the recovered root: rewrites CURRENT when it was
        // rebuilt and guarantees generation 0 exists on first open.
        db.install_root()?;
        db.prune(true)?;
        Ok(db)
    }

    /// What recovery had to do during [`open`](Self::open).
    pub fn recovery(&self) -> &Recovery {
        &self.recovery
    }

    /// The last durable snapshot.
    pub fn stable(&self) -> &DbSnapshot {
        &self.stable
    }

    /// The working root (stable + uncheckpointed merges).
    pub fn working(&self) -> &DbSnapshot {
        &self.working
    }

    /// Submissions merged since the last checkpoint — the "snapshot age"
    /// the metrics report.
    pub fn jobs_since_checkpoint(&self) -> u64 {
        self.working.jobs_recorded - self.stable.jobs_recorded
    }

    /// Merges one submission's reported races — and, when the report
    /// carried a `fixes` section, each race's repair suggestion — into
    /// the working root. A clean report still counts as a recorded job
    /// (absence across many runs is evidence too).
    pub fn merge_report(&mut self, tenant: &str, races: &[Race], fixes: Option<&FixReport>) {
        self.working.jobs_recorded += 1;
        for race in races {
            let key = RaceSiteKey::of(race);
            let i = match self.working.records.binary_search_by(|r| r.key.cmp(&key)) {
                Ok(i) => i,
                Err(i) => {
                    self.working.records.insert(i, RaceRecord::new(key.clone()));
                    i
                }
            };
            let fix = fixes.and_then(|f| f.suggestions.iter().find(|s| s.race == race.key));
            self.working.records[i].merge(tenant, race, fix);
        }
    }

    /// Checkpoints the working root: new generation file, then atomic root
    /// swap. A no-op when nothing was merged since the last checkpoint.
    ///
    /// On failure the stable root is untouched and the attempted
    /// generation is **poisoned**: a failed fsync means the file's
    /// durability is unknowable (fsyncgate — the kernel may have dropped
    /// the dirty pages and cleared the error), so the generation number is
    /// burned and the next attempt writes a fresh file under a fresh name.
    /// The caller decides whether to also roll back the working root
    /// ([`restore_working`](Self::restore_working)).
    pub fn checkpoint(&mut self) -> Result<(), DbError> {
        if self.working.records == self.stable.records
            && self.working.jobs_recorded == self.stable.jobs_recorded
        {
            return Ok(());
        }
        self.working.generation = self.next_generation;
        self.working.version = DB_VERSION;
        self.working.checksum = content_digest(&self.working);
        let name = snapshot_name(self.working.generation);
        let swap = (|| {
            write_file_atomic(
                self.plane.as_ref(),
                "snapshot",
                &self.dir,
                &name,
                self.working.to_json().as_bytes(),
            )?;
            // Test hook: hold the window between "snapshot durable" and
            // "root swapped" open so the kill-and-recover suite can SIGKILL
            // inside it deterministically.
            if let Some(ms) = std::env::var("HAWKSET_TEST_DB_SWAP_DELAY_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            write_file_atomic(
                self.plane.as_ref(),
                "current",
                &self.dir,
                CURRENT,
                format!("{name}\n").as_bytes(),
            )
        })();
        match swap {
            Ok(()) => {
                self.stable = self.working.clone();
                self.next_generation = self.stable.generation + 1;
                self.prune(false)?;
                Ok(())
            }
            Err(e) => {
                // The generation file may be absent, torn, or complete but
                // of unknowable durability — all equally untrustworthy.
                // Remove what's removable and never reuse the number.
                let _ = std::fs::remove_file(self.dir.join(&name));
                self.poisoned_generations += 1;
                self.next_generation += 1;
                Err(e)
            }
        }
    }

    /// Checkpoint generations burned by failed writes since open.
    pub fn poisoned_generations(&self) -> u64 {
        self.poisoned_generations
    }

    /// Rolls the working root back to `prior` (a clone taken before a
    /// merge). Used when the checkpoint that was supposed to make a merge
    /// durable fails: the client is told the job failed and will resubmit,
    /// so keeping the merge in memory would double-count it the moment a
    /// *later* checkpoint succeeds.
    pub fn restore_working(&mut self, prior: DbSnapshot) {
        self.working = prior;
    }

    /// Writes `CURRENT` for the recovered root (and materializes the
    /// generation file if recovery synthesized an empty snapshot).
    fn install_root(&mut self) -> Result<(), DbError> {
        let name = snapshot_name(self.stable.generation);
        // (Re)materialize the generation file unless a valid copy already
        // exists — the existing copy may be the very corruption recovery
        // just routed around (e.g. a torn generation 0).
        if load_snapshot(&self.dir.join(&name)).is_err() {
            write_file_atomic(
                self.plane.as_ref(),
                "snapshot",
                &self.dir,
                &name,
                self.stable.to_json().as_bytes(),
            )?;
        }
        write_file_atomic(
            self.plane.as_ref(),
            "current",
            &self.dir,
            CURRENT,
            format!("{name}\n").as_bytes(),
        )?;
        Ok(())
    }

    /// Deletes orphan snapshots (newer than stable — a crashed swap's
    /// leftovers) and generations older than the retention window.
    fn prune(&mut self, record_orphans: bool) -> Result<(), DbError> {
        for (gen, path, name) in snapshot_files(&self.dir)? {
            if gen > self.stable.generation {
                if record_orphans {
                    self.recovery.orphans_removed.push(name);
                }
                let _ = std::fs::remove_file(&path);
            } else if gen + RETAIN_SNAPSHOTS < self.stable.generation {
                let _ = std::fs::remove_file(&path);
            }
        }
        Ok(())
    }
}

/// Loads the stable root read-only — the `hawkset query` path. Safe
/// against a concurrently checkpointing daemon: snapshot files are
/// immutable and `CURRENT` swaps atomically, so the worst case is reading
/// the previous generation.
pub fn load_stable(dir: &Path) -> Result<DbSnapshot, String> {
    let current = dir.join(CURRENT);
    let named = std::fs::read_to_string(&current)
        .map_err(|e| format!("cannot read {}: {e}", current.display()))?;
    load_snapshot(&dir.join(named.trim()))
}

fn snapshot_name(generation: u64) -> String {
    format!("snapshot-{generation:06}.json")
}

fn load_snapshot(path: &Path) -> Result<DbSnapshot, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let snap: DbSnapshot = serde_json::from_str(&raw)
        .map_err(|e| format!("{}: not a snapshot: {e}", path.display()))?;
    if !snap.validates() {
        return Err(format!(
            "{}: checksum or version mismatch (torn write?)",
            path.display()
        ));
    }
    Ok(snap)
}

fn list_dir(dir: &Path) -> Result<Vec<(PathBuf, String)>, DbError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(db_err(format!("list {}", dir.display())))? {
        let entry = entry.map_err(db_err(format!("list {}", dir.display())))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        out.push((entry.path(), name));
    }
    Ok(out)
}

/// `snapshot-NNNNNN.json` files present, as `(generation, path, name)`.
fn snapshot_files(dir: &Path) -> Result<Vec<(u64, PathBuf, String)>, DbError> {
    let mut out = Vec::new();
    for (path, name) in list_dir(dir)? {
        if let Some(gen) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((gen, path, name));
        }
    }
    Ok(out)
}

/// tmp + fsync + rename + directory fsync through the I/O plane. The
/// rename is the commit point; the directory fsync makes the rename
/// itself durable.
fn write_file_atomic(
    plane: &dyn IoPlane,
    site: &str,
    dir: &Path,
    name: &str,
    bytes: &[u8],
) -> Result<(), DbError> {
    ioplane::write_atomic(plane, site, dir, name, bytes)
        .map_err(db_err(format!("install {}", dir.join(name).display())))
}

/// Aggregates a batch report's races the same way the daemon would for one
/// submission — the reference implementation `hawkset query --verify`
/// compares the stable root against.
pub fn expected_from_reports<'a>(
    submissions: impl IntoIterator<Item = (&'a str, &'a [Race], Option<&'a FixReport>)>,
) -> Vec<RaceRecord> {
    let mut map: BTreeMap<RaceSiteKey, RaceRecord> = BTreeMap::new();
    for (tenant, races, fixes) in submissions {
        for race in races {
            let key = RaceSiteKey::of(race);
            let fix = fixes.and_then(|f| f.suggestions.iter().find(|s| s.race == race.key));
            map.entry(key.clone())
                .or_insert_with(|| RaceRecord::new(key))
                .merge(tenant, race, fix);
        }
    }
    map.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkset_core::addr::AddrRange;
    use hawkset_core::analysis::RaceKey;
    use hawkset_core::trace::{Frame, ThreadId};

    fn race(store: (&str, u32), load: (&str, u32), pairs: u64) -> Race {
        Race {
            key: RaceKey {
                store_stack: 1,
                load_stack: 2,
            },
            store_site: Some(Frame::new(store.0, "app.c", store.1)),
            load_site: Some(Frame::new(load.0, "app.c", load.1)),
            store_tid: ThreadId(0),
            load_tid: ThreadId(1),
            example_range: AddrRange::new(0x1000, 8),
            pair_count: pairs,
            store_atomic: false,
            load_atomic: false,
            store_non_temporal: false,
            store_never_persisted: true,
            effective_lockset_empty: false,
            store_store: false,
        }
    }

    /// A one-suggestion fix report targeting the `race()` helper's
    /// stack-pair key.
    fn fix_report(kind: FixKind, validated: bool) -> FixReport {
        use hawkset_core::analysis::FixStatus;
        FixReport::new(vec![FixSuggestion {
            race: RaceKey {
                store_stack: 1,
                load_stack: 2,
            },
            kind,
            validated,
            status: if validated {
                FixStatus::Fix
            } else {
                FixStatus::Candidate
            },
        }])
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hwk-db-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn open_bootstraps_an_empty_generation_zero() {
        let dir = tmpdir("boot");
        let db = RaceDb::open(&dir).unwrap();
        assert_eq!(db.stable().generation, 0);
        assert!(db.stable().records.is_empty());
        assert!(dir.join(CURRENT).exists());
        assert!(dir.join(snapshot_name(0)).exists());
        let loaded = load_stable(&dir).unwrap();
        assert_eq!(&loaded, db.stable());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_dedupes_across_submissions_and_tenants() {
        let dir = tmpdir("dedupe");
        let mut db = RaceDb::open(&dir).unwrap();
        let r1 = race(("writer", 10), ("reader", 20), 3);
        let r2 = race(("writer", 10), ("reader", 20), 5);
        let other = race(("other", 1), ("reader", 20), 1);
        db.merge_report("alice", &[r1.clone(), other.clone()], None);
        db.merge_report("bob", std::slice::from_ref(&r2), None);
        db.merge_report("alice", std::slice::from_ref(&r1), None);
        let w = db.working();
        assert_eq!(w.jobs_recorded, 3);
        assert_eq!(w.records.len(), 2, "same sites collapse to one record");
        let rec = w
            .records
            .iter()
            .find(|r| r.key.store_function == "writer")
            .unwrap();
        assert_eq!(rec.occurrences, 3);
        assert_eq!(rec.pair_count_total, 3 + 5 + 3);
        assert_eq!(
            rec.tenants,
            vec![
                TenantCount {
                    tenant: "alice".into(),
                    submissions: 2
                },
                TenantCount {
                    tenant: "bob".into(),
                    submissions: 1
                },
            ]
        );
        assert_eq!(
            w.records.iter().map(|r| &r.key).collect::<Vec<_>>(),
            {
                let mut keys: Vec<&RaceSiteKey> = w.records.iter().map(|r| &r.key).collect();
                keys.sort();
                keys
            },
            "records stay key-sorted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_swaps_the_root_and_reopen_recovers_it() {
        let dir = tmpdir("ckpt");
        let mut db = RaceDb::open(&dir).unwrap();
        db.merge_report("t", &[race(("w", 1), ("r", 2), 1)], None);
        assert_eq!(db.jobs_since_checkpoint(), 1);
        db.checkpoint().unwrap();
        assert_eq!(db.jobs_since_checkpoint(), 0);
        assert_eq!(db.stable().generation, 1);
        let expected = db.stable().clone();
        drop(db);
        let db = RaceDb::open(&dir).unwrap();
        assert_eq!(db.stable(), &expected);
        assert!(!db.recovery().root_pointer_rebuilt);
        // Idempotent checkpoint: no new generation without new merges.
        let mut db = db;
        db.checkpoint().unwrap();
        assert_eq!(db.stable().generation, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_current_falls_back_to_newest_valid_snapshot() {
        let dir = tmpdir("torn-current");
        let mut db = RaceDb::open(&dir).unwrap();
        db.merge_report("t", &[race(("w", 1), ("r", 2), 1)], None);
        db.checkpoint().unwrap();
        let expected = db.stable().clone();
        drop(db);
        std::fs::write(dir.join(CURRENT), "snapshot-999999.json\n").unwrap();
        let db = RaceDb::open(&dir).unwrap();
        assert!(db.recovery().root_pointer_rebuilt);
        assert_eq!(db.stable(), &expected);
        assert_eq!(load_stable(&dir).unwrap(), expected, "CURRENT rewritten");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_snapshot_recovers_to_the_previous_generation() {
        let dir = tmpdir("truncated");
        let mut db = RaceDb::open(&dir).unwrap();
        db.merge_report("t", &[race(("w", 1), ("r", 2), 1)], None);
        db.checkpoint().unwrap();
        let gen1 = db.stable().clone();
        db.merge_report("t", &[race(("w2", 3), ("r2", 4), 1)], None);
        db.checkpoint().unwrap();
        assert_eq!(db.stable().generation, 2);
        drop(db);
        // Tear generation 2 mid-file: recovery must reject it (checksum)
        // and fall back to generation 1.
        let p2 = dir.join(snapshot_name(2));
        let bytes = std::fs::read(&p2).unwrap();
        std::fs::write(&p2, &bytes[..bytes.len() / 2]).unwrap();
        let db = RaceDb::open(&dir).unwrap();
        assert!(db.recovery().root_pointer_rebuilt);
        assert_eq!(db.recovery().invalid_snapshots.len(), 1);
        assert_eq!(db.stable(), &gen1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphan_snapshot_from_a_crashed_swap_is_ignored_and_removed() {
        let dir = tmpdir("orphan");
        let mut db = RaceDb::open(&dir).unwrap();
        db.merge_report("t", &[race(("w", 1), ("r", 2), 1)], None);
        db.checkpoint().unwrap();
        let gen1 = db.stable().clone();
        drop(db);
        // Simulate a crash after the generation-2 write but before the
        // root swap: a valid newer snapshot that CURRENT never named.
        let mut orphan = gen1.clone();
        orphan.generation = 2;
        orphan.jobs_recorded += 1;
        orphan.checksum = content_digest(&orphan);
        std::fs::write(dir.join(snapshot_name(2)), orphan.to_json()).unwrap();
        let db = RaceDb::open(&dir).unwrap();
        assert_eq!(db.stable(), &gen1, "the swap never happened");
        assert_eq!(db.recovery().orphans_removed, vec![snapshot_name(2)]);
        assert!(!dir.join(snapshot_name(2)).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn everything_invalid_recovers_to_empty() {
        let dir = tmpdir("scorched");
        let mut db = RaceDb::open(&dir).unwrap();
        db.merge_report("t", &[race(("w", 1), ("r", 2), 1)], None);
        db.checkpoint().unwrap();
        drop(db);
        for (_gen, path, _name) in snapshot_files(&dir).unwrap() {
            std::fs::write(&path, "{").unwrap();
        }
        let db = RaceDb::open(&dir).unwrap();
        assert_eq!(db.stable().records.len(), 0);
        assert_eq!(db.stable().generation, 0);
        assert!(load_stable(&dir).is_ok(), "root re-materialized");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expected_from_reports_matches_merge() {
        let dir = tmpdir("verify");
        let mut db = RaceDb::open(&dir).unwrap();
        let a = [race(("w", 1), ("r", 2), 3)];
        let b = [race(("w", 1), ("r", 2), 5), race(("x", 7), ("y", 8), 1)];
        db.merge_report("t1", &a, None);
        db.merge_report("t2", &b, None);
        db.merge_report("t1", &a, None);
        let expected = expected_from_reports([
            ("t1", &a[..], None),
            ("t2", &b[..], None),
            ("t1", &a[..], None),
        ]);
        assert_eq!(db.working().records, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fix_records_dedupe_by_shape_with_tenant_provenance() {
        let dir = tmpdir("fixes");
        let mut db = RaceDb::open(&dir).unwrap();
        let r = race(("w", 1), ("r", 2), 1);
        // A fix-free merge first: the serialized snapshot must not grow a
        // `fixes` key, keeping pre-fix-era snapshot bytes (and therefore
        // their checksums) reachable by the same code.
        db.merge_report("alice", std::slice::from_ref(&r), None);
        db.checkpoint().unwrap();
        assert!(
            !db.stable().to_json().contains("\"fixes\""),
            "no fixes merged, no fixes key"
        );
        let pre_fix = db.stable().clone();
        drop(db);
        let mut db = RaceDb::open(&dir).unwrap();
        assert_eq!(db.stable(), &pre_fix, "fix-free snapshots round-trip");

        // Two tenants report the same validated flush+fence shape (with
        // different trace-local seqs), one adds a demoted candidate of a
        // different shape.
        let ff1 = fix_report(
            FixKind::FlushFence {
                after_seq: 2,
                line: 0x1000,
            },
            true,
        );
        let ff2 = fix_report(
            FixKind::FlushFence {
                after_seq: 40,
                line: 0x7000,
            },
            true,
        );
        let le = fix_report(
            FixKind::LockExtension {
                lock: 0xa,
                from_seq: 5,
                to_seq: 1,
            },
            false,
        );
        db.merge_report("alice", std::slice::from_ref(&r), Some(&ff1));
        db.merge_report("bob", std::slice::from_ref(&r), Some(&ff2));
        db.merge_report("bob", std::slice::from_ref(&r), Some(&le));
        let rec = &db.working().records[0];
        assert_eq!(rec.fixes.len(), 2, "same shape+verdict collapses");
        assert_eq!(rec.fixes[0].kind, "flush_fence");
        assert!(rec.fixes[0].validated);
        assert_eq!(rec.fixes[0].occurrences, 2);
        assert_eq!(
            rec.fixes[0].example, "flush+fence after seq 2 (line 0x1000)",
            "the first-seen rendering is kept"
        );
        assert_eq!(
            rec.fixes[0].tenants,
            vec![
                TenantCount {
                    tenant: "alice".into(),
                    submissions: 1
                },
                TenantCount {
                    tenant: "bob".into(),
                    submissions: 1
                },
            ]
        );
        assert_eq!(rec.fixes[1].kind, "lock_extension");
        assert!(!rec.fixes[1].validated, "candidates persist demoted");

        // The fix-bearing state survives the checkpoint/recover cycle.
        db.checkpoint().unwrap();
        assert!(db.stable().to_json().contains("\"fixes\""));
        let expected = db.stable().clone();
        drop(db);
        let db = RaceDb::open(&dir).unwrap();
        assert_eq!(db.stable(), &expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expected_from_reports_accounts_for_fixes() {
        let dir = tmpdir("verify-fixes");
        let mut db = RaceDb::open(&dir).unwrap();
        let a = [race(("w", 1), ("r", 2), 3)];
        let ff = fix_report(
            FixKind::FlushFence {
                after_seq: 2,
                line: 0x1000,
            },
            true,
        );
        db.merge_report("t1", &a, Some(&ff));
        db.merge_report("t2", &a, None);
        let expected = expected_from_reports([("t1", &a[..], Some(&ff)), ("t2", &a[..], None)]);
        assert_eq!(db.working().records, expected);
        assert_eq!(expected[0].fixes.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshots_are_pruned_beyond_retention() {
        let dir = tmpdir("prune");
        let mut db = RaceDb::open(&dir).unwrap();
        for i in 0..6u32 {
            db.merge_report("t", &[race(("w", i), ("r", i + 100), 1)], None);
            db.checkpoint().unwrap();
        }
        assert_eq!(db.stable().generation, 6);
        let gens: Vec<u64> = {
            let mut g: Vec<u64> = snapshot_files(&dir)
                .unwrap()
                .into_iter()
                .map(|(g, _, _)| g)
                .collect();
            g.sort();
            g
        };
        assert_eq!(
            gens,
            vec![4, 5, 6],
            "retention keeps {RETAIN_SNAPSHOTS}+current"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_fsync_poisons_the_generation_and_never_retries_in_place() {
        use hawkset_core::ioplane::{FaultScript, ScriptedIo};
        let dir = tmpdir("fsyncgate");
        // Occurrence 0 of (snapshot, fsync) is the gen-0 bootstrap write;
        // occurrence 1 is the first real checkpoint.
        let plane = Arc::new(ScriptedIo::new(
            FaultScript::parse("snapshot:fsync:1:eio").unwrap(),
        ));
        let mut db = RaceDb::open_with(&dir, plane.clone()).unwrap();
        db.merge_report("t", &[race(("w", 1), ("r", 2), 1)], None);
        let err = db.checkpoint().unwrap_err();
        assert_eq!(err.source.raw_os_error(), Some(5));
        assert_eq!(db.poisoned_generations(), 1);
        assert_eq!(db.stable().generation, 0, "stable root untouched");
        assert!(
            !dir.join(snapshot_name(1)).exists(),
            "the poisoned generation file is gone"
        );
        // The retry must burn generation 1 and write generation 2 fresh.
        db.checkpoint().unwrap();
        assert_eq!(db.stable().generation, 2);
        assert!(!dir.join(snapshot_name(1)).exists());
        assert_eq!(load_stable(&dir).unwrap(), *db.stable());
        assert_eq!(plane.injected(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_snapshot_write_is_caught_by_recovery_not_trusted() {
        use hawkset_core::ioplane::{FaultScript, ScriptedIo};
        let dir = tmpdir("torn-inject");
        let plane = Arc::new(ScriptedIo::new(
            FaultScript::parse("snapshot:write:1:torn").unwrap(),
        ));
        let mut db = RaceDb::open_with(&dir, plane).unwrap();
        db.merge_report("t", &[race(("w", 1), ("r", 2), 1)], None);
        // The torn write lies: checkpoint believes it succeeded.
        db.checkpoint().unwrap();
        drop(db);
        // Recovery's checksum is the authority: the torn generation is
        // rejected and the database falls back to generation 0.
        let db = RaceDb::open(&dir).unwrap();
        assert!(db.recovery().root_pointer_rebuilt);
        assert_eq!(db.stable().generation, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_working_rolls_back_an_unpersisted_merge() {
        use hawkset_core::ioplane::{FaultScript, ScriptedIo};
        let dir = tmpdir("rollback");
        let plane = Arc::new(ScriptedIo::new(
            FaultScript::parse("current:rename:1:enospc").unwrap(),
        ));
        let mut db = RaceDb::open_with(&dir, plane).unwrap();
        let prior = db.working().clone();
        db.merge_report("t", &[race(("w", 1), ("r", 2), 1)], None);
        assert!(db.checkpoint().is_err());
        db.restore_working(prior);
        assert_eq!(db.jobs_since_checkpoint(), 0);
        // The resubmitted job lands exactly once.
        db.merge_report("t", &[race(("w", 1), ("r", 2), 1)], None);
        db.checkpoint().unwrap();
        let rec = &db.stable().records[0];
        assert_eq!(rec.occurrences, 1, "rollback prevented double counting");
        assert_eq!(db.stable().jobs_recorded, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
