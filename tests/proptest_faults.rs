//! Corruption fault injection over the `.hwkt` codec and the analysis
//! pipeline (tier-1 robustness suite).
//!
//! The contract under test: no input — truncated, bit-flipped, overwritten,
//! or varint-bombed — may make `decode`, `decode_lossy`, or a lenient
//! budgeted analysis panic. Truncation mid-event-stream must additionally
//! salvage a non-empty, analyzable prefix.

use hawkset::core::addr::AddrRange;
use hawkset::core::analysis::{AnalysisBudget, AnalysisConfig, Analyzer, Strictness};
use hawkset::core::faults::{apply, truncations, Fault, FaultRng};
use hawkset::core::trace::io;
use hawkset::core::trace::{EventKind, Frame, LockId, LockMode, ThreadId, Trace, TraceBuilder};
use proptest::prelude::*;

/// A multi-thread trace exercising every event tag: creates, lock handoff,
/// plain/NT/atomic stores, loads, flushes, fences, joins.
fn rich_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let x = AddrRange::new(0x1000, 8);
    let y = AddrRange::new(0x2040, 16);
    let a = LockId(0xa);
    let r = LockId(0xb);
    let st = b.intern_stack([
        Frame::new("writer", "app.c", 10),
        Frame::new("main", "app.c", 90),
    ]);
    let ld = b.intern_stack([Frame::new("reader", "app.c", 20)]);
    let nt = b.intern_stack([Frame::new("nt_writer", "app.c", 30)]);
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadCreate { child: ThreadId(1) },
    );
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadCreate { child: ThreadId(2) },
    );
    b.push(
        ThreadId(0),
        st,
        EventKind::Acquire {
            lock: a,
            mode: LockMode::Exclusive,
        },
    );
    b.push(
        ThreadId(0),
        st,
        EventKind::Store {
            range: x,
            non_temporal: false,
            atomic: false,
        },
    );
    b.push(ThreadId(0), st, EventKind::Release { lock: a });
    b.push(
        ThreadId(1),
        ld,
        EventKind::Acquire {
            lock: r,
            mode: LockMode::Shared,
        },
    );
    b.push(
        ThreadId(1),
        ld,
        EventKind::Load {
            range: x,
            atomic: false,
        },
    );
    b.push(ThreadId(1), ld, EventKind::Release { lock: r });
    b.push(
        ThreadId(2),
        nt,
        EventKind::Store {
            range: y,
            non_temporal: true,
            atomic: false,
        },
    );
    b.push(ThreadId(2), nt, EventKind::Fence);
    b.push(
        ThreadId(2),
        nt,
        EventKind::Store {
            range: y,
            non_temporal: false,
            atomic: true,
        },
    );
    b.push(
        ThreadId(2),
        nt,
        EventKind::Load {
            range: y,
            atomic: true,
        },
    );
    b.push(ThreadId(0), st, EventKind::Flush { addr: 0x1000 });
    b.push(ThreadId(0), st, EventKind::Fence);
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadJoin { child: ThreadId(1) },
    );
    b.push(
        ThreadId(0),
        st,
        EventKind::ThreadJoin { child: ThreadId(2) },
    );
    b.finish()
}

/// Lenient, budgeted configuration — what a harness would run on a trace of
/// unknown provenance.
fn lenient_budgeted() -> AnalysisConfig {
    AnalysisConfig {
        strictness: Strictness::Lenient,
        budget: AnalysisBudget {
            max_candidate_pairs: Some(100_000),
            max_events: Some(100_000),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Every byte-boundary truncation decodes to an error (never a panic), and
/// `decode_lossy` either salvages an analyzable prefix or reports a
/// table-level corruption. Some mid-event-stream cut must salvage a
/// non-empty prefix.
#[test]
fn truncation_at_every_byte_boundary_never_panics() {
    let encoded = io::encode(&rich_trace());
    let mut salvaged_nonempty = 0usize;
    for cut in truncations(&encoded) {
        let cut_len = cut.len();
        assert!(
            io::decode(&cut).is_err(),
            "a proper prefix (len {cut_len}) must not decode cleanly"
        );
        match io::decode_lossy(&cut) {
            Ok(salvage) => {
                // A truncation-salvaged prefix is semantically clean: the
                // full strict pipeline must accept it.
                let report = Analyzer::new(lenient_budgeted())
                    .try_run(&salvage.trace)
                    .expect("lenient analysis of a salvage cannot fail");
                assert_eq!(
                    report.stats.quarantine.total(),
                    0,
                    "truncation salvage (cut at {cut_len}) must need no quarantine"
                );
                if !salvage.trace.events.is_empty() {
                    salvaged_nonempty += 1;
                }
            }
            Err(_) => {
                // Cut inside the header or tables: nothing to salvage.
            }
        }
    }
    assert!(
        salvaged_nonempty > 10,
        "cuts inside the event stream must salvage non-empty prefixes \
         (got {salvaged_nonempty})"
    );
}

/// 256+ random corruptions (bit flips, byte overwrites, varint bombs,
/// truncations) of the rich trace: the decoders never panic, and whatever
/// they salvage is analyzable in lenient budgeted mode.
#[test]
fn random_corruptions_never_panic() {
    let encoded = io::encode(&rich_trace()).to_vec();
    let mut rng = FaultRng::new(0x5eed_cafe);
    let mut decoded_ok = 0usize;
    for round in 0..256 {
        // Escalate: one fault, then stacked pairs of faults.
        let mut bytes = encoded.clone();
        for _ in 0..(1 + round % 3) {
            let fault = rng.fault(bytes.len());
            bytes = apply(&bytes, fault);
        }
        if let Ok(salvage) = io::decode_lossy(&bytes) {
            decoded_ok += 1;
            Analyzer::new(lenient_budgeted())
                .try_run(&salvage.trace)
                .expect("lenient analysis of salvaged corruption cannot fail");
        }
        // Strict decode must agree or reject — never panic.
        let _ = io::decode(&bytes);
    }
    assert!(decoded_ok > 0, "some corruptions hit the salvageable tail");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup never panics the decoders.
    #[test]
    fn decode_arbitrary_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let _ = io::decode(&bytes);
        let _ = io::decode_lossy(&bytes);
    }

    /// Arbitrary bytes stitched behind a valid header prefix never panic.
    #[test]
    fn decode_valid_prefix_plus_noise_never_panics(
        keep in 0usize..200,
        noise in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let encoded = io::encode(&rich_trace());
        let keep = keep.min(encoded.len());
        let mut bytes = encoded[..keep].to_vec();
        bytes.extend_from_slice(&noise);
        let _ = io::decode(&bytes);
        if let Ok(salvage) = io::decode_lossy(&bytes) {
            let _ = Analyzer::new(lenient_budgeted()).try_run(&salvage.trace);
        }
    }

    /// Single seeded faults, exhaustively across seeds: decoders and the
    /// lenient pipeline stay panic-free.
    #[test]
    fn seeded_single_faults_never_panic(seed in any::<u64>()) {
        let encoded = io::encode(&rich_trace());
        let fault = FaultRng::new(seed).fault(encoded.len());
        let bytes = apply(&encoded, fault);
        let _ = io::decode(&bytes);
        if let Ok(salvage) = io::decode_lossy(&bytes) {
            let _ = Analyzer::new(lenient_budgeted()).try_run(&salvage.trace);
        }
    }
}

/// A clean encoding round-trips through `decode_lossy` with zero drops.
#[test]
fn decode_lossy_roundtrip_on_clean_trace_is_complete() {
    let trace = rich_trace();
    let salvage = io::decode_lossy(io::encode(&trace).as_ref()).expect("clean trace decodes");
    assert!(salvage.is_complete());
    assert_eq!(salvage.dropped_bytes, 0);
    assert_eq!(salvage.dropped_events, 0);
    assert!(salvage.reason.is_none());
    assert_eq!(salvage.trace.events, trace.events);
}

/// Explicit varint-bomb placements at every offset: the LEB128 reader hits
/// its shift guard, never an overflow panic.
#[test]
fn varint_bombs_at_every_offset_never_panic() {
    let encoded = io::encode(&rich_trace());
    for offset in 0..encoded.len() {
        let bytes = apply(&encoded, Fault::OverflowVarint { offset });
        let _ = io::decode(&bytes);
        if let Ok(salvage) = io::decode_lossy(&bytes) {
            let _ = Analyzer::new(lenient_budgeted()).try_run(&salvage.trace);
        }
    }
}
