//! # pm-apps
//!
//! Rust reimplementations of the nine PM applications HawkSet evaluates
//! (Table 1), each with its historical persistency-induced races injected
//! at faithfully analogous sites, plus a machine-readable ground truth
//! ([`registry::KnownRace`]) standing in for the paper's manual
//! classification (Table 2 / Table 4).

use std::collections::HashMap;
use std::sync::Arc;

use hawkset_core::addr::PmAddr;
use pm_runtime::{PmEnv, PmMutex};

pub mod apex;
pub mod app;
pub mod fastfair;
pub mod madfs;
pub mod masstree;
pub mod memcached;
pub mod model;
pub mod part;
pub mod pclht;
pub mod registry;
pub mod turbohash;
pub mod wipe;

pub use app::{
    AppWorkload, Application, ExecOptions, ExecResult, InvariantViolation, RecoveryError,
};
pub use registry::{score, Breakdown, KnownRace, RaceClass};

/// Volatile per-address lock table shared by the lock-based applications
/// (stand-in for in-node lock words).
pub(crate) struct LockTable {
    env: PmEnv,
    map: parking_lot::Mutex<HashMap<PmAddr, Arc<PmMutex<()>>>>,
}

/// All nine applications, in Table 1 order.
pub fn all_apps() -> Vec<Box<dyn Application>> {
    vec![
        Box::new(fastfair::FastFairApp),
        Box::new(turbohash::TurboHashApp),
        Box::new(pclht::PclhtApp),
        Box::new(masstree::MasstreeApp),
        Box::new(part::PartApp),
        Box::new(madfs::MadFsApp),
        Box::new(memcached::MemcachedApp),
        Box::new(wipe::WipeApp),
        Box::new(apex::ApexApp),
    ]
}
