//! Store visibility windows.
//!
//! The effective lockset (§3.1.2) is defined over the *lifetime of the
//! unpersisted value*: from the store that makes it visible until its
//! explicit persistence (flush + fence) or its overwrite by another store.
//! The memory simulation turns every PM store into one or more
//! [`StoreWindow`]s — one per cache line the store touches, because
//! persistence is a per-line affair — each describing that lifetime.

use crate::addr::AddrRange;
use crate::intern::Interned;
use crate::lockset::Lockset;
use crate::trace::{StackId, ThreadId};
use crate::vclock::VectorClock;

/// Interned lockset id.
pub type LsId = Interned<Lockset>;
/// Interned vector-clock id.
pub type VcId = Interned<VectorClock>;

/// How a store window was closed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CloseReason {
    /// The line was flushed and the flushing thread fenced: the value is
    /// guaranteed persisted from the closing point on.
    Persisted,
    /// The bytes were overwritten by a later store before being persisted;
    /// the old value can no longer be loaded after the closing point.
    Overwritten,
    /// The execution ended with the value still unpersisted. The window is
    /// unbounded: no lock can have protected a persist that never happened,
    /// so the effective lockset is empty.
    NeverPersisted,
}

/// The visibility window of (part of) one store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreWindow {
    /// Thread that issued the store.
    pub tid: ThreadId,
    /// Global sequence number of the store event.
    pub store_seq: u64,
    /// Call stack of the store.
    pub stack: StackId,
    /// The byte range this window covers (a sub-range of the original store,
    /// confined to one cache line).
    pub range: AddrRange,
    /// Lockset held by `tid` at the store.
    pub store_ls: LsId,
    /// Vector clock of `tid` at the store.
    pub store_vc: VcId,
    /// Effective lockset of the window: store lockset ∩ persist/overwrite
    /// lockset (timestamp-sensitive within a thread). Empty for
    /// [`CloseReason::NeverPersisted`].
    pub effective_ls: LsId,
    /// Vector clock at the closing point; `None` when never persisted
    /// (the window extends to the end of the execution).
    pub close_vc: Option<VcId>,
    /// Why the window closed.
    pub close: CloseReason,
    /// `true` if the store was part of an atomic instruction.
    pub atomic: bool,
    /// `true` for non-temporal stores.
    pub non_temporal: bool,
    /// Set when the Initialization Removal Heuristic discarded the window
    /// (persisted by its sole-accessor thread before publication, §3.1.3).
    pub irh_discarded: bool,
}

impl StoreWindow {
    /// Returns `true` if the analysis should consider this window.
    pub fn live(&self) -> bool {
        !self.irh_discarded
    }
}

/// One PM load as seen by the analysis (Algorithm 1's `LoadData`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadAccess {
    /// Thread that issued the load.
    pub tid: ThreadId,
    /// Global sequence number of the load event.
    pub seq: u64,
    /// Call stack of the load.
    pub stack: StackId,
    /// Bytes read.
    pub range: AddrRange,
    /// Lockset held at the load.
    pub ls: LsId,
    /// Vector clock at the load.
    pub vc: VcId,
    /// `true` if the load was part of an atomic instruction.
    pub atomic: bool,
    /// Set when the IRH dropped the load (sole-accessor thread, before the
    /// address was published).
    pub irh_dropped: bool,
}

impl LoadAccess {
    /// Returns `true` if the analysis should consider this load.
    pub fn live(&self) -> bool {
        !self.irh_dropped
    }
}
