//! Delay injection.
//!
//! PMRace combines fuzzing with "specialized delay injection techniques to
//! improve the chance of observing interleavings that constitute a
//! persistency-induced race" (§6.3). The injector hooks every PM operation
//! of the instrumented runtime and sleeps with a configurable probability,
//! stretching the visible-but-not-durable windows so that another thread's
//! load can land inside them.
//!
//! Two layers of targeting exist:
//!
//! * the **uniform** layer ([`DelayInjector::new`]) fires on every point
//!   with one probability — the PMRace baseline;
//! * the **scheduled** layer ([`DelayInjector::with_spec`]) adds targeted
//!   [`DelayRule`]s that override the uniform layer for a specific thread
//!   and/or point class (store, load, flush, fence, lock acquire/release)
//!   — the delay axis of steered campaigns, which concentrates delays
//!   where the corpus says unexplored windows live.
//!
//! Decisions are deterministic in `(seed, thread, op-index, address)` so a
//! campaign round is reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hawkset_core::trace::ThreadId;
use pm_runtime::{Hook, HookPoint};
use serde::{Deserialize, Serialize};

/// The class of a [`HookPoint`], used by [`DelayRule`] targeting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PointClass {
    /// Any point.
    Any,
    /// PM stores.
    Store,
    /// PM loads.
    Load,
    /// Cache-line flushes.
    Flush,
    /// Persistency fences.
    Fence,
    /// Lock acquisitions.
    Acquire,
    /// Lock releases.
    Release,
}

impl PointClass {
    fn matches(self, point: HookPoint) -> bool {
        match self {
            PointClass::Any => true,
            PointClass::Store => matches!(point, HookPoint::BeforeStore(_)),
            PointClass::Load => matches!(point, HookPoint::BeforeLoad(_)),
            PointClass::Flush => matches!(point, HookPoint::BeforeFlush(_)),
            PointClass::Fence => matches!(point, HookPoint::BeforeFence),
            PointClass::Acquire => matches!(point, HookPoint::BeforeAcquire(_)),
            PointClass::Release => matches!(point, HookPoint::BeforeRelease(_)),
        }
    }
}

/// One targeted delay rule: for points matching `(thread, point)`, fire
/// with `prob_1024`/1024 probability and delays up to `max_delay_us`.
/// Rules take precedence over the uniform layer; the first matching rule
/// wins, so order is part of the schedule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayRule {
    /// Restrict to one thread id (`None` = every thread).
    pub thread: Option<u32>,
    /// Restrict to one point class.
    pub point: PointClass,
    /// Firing probability in 1/1024 units (0..=1024).
    pub prob_1024: u16,
    /// Maximum injected delay, µs (`0` = this rule suppresses delays).
    pub max_delay_us: u64,
}

/// A whole delay schedule: a uniform base layer plus targeted rules.
/// Probabilities live in 1/1024 units so schedules serialize exactly
/// (no float round-trips) into campaign checkpoints.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelaySpec {
    /// Base firing probability in 1/1024 units for points no rule matches.
    pub prob_1024: u16,
    /// Base maximum delay, µs (`0` disables the base layer).
    pub max_delay_us: u64,
    /// Targeted overrides, first match wins.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub rules: Vec<DelayRule>,
}

impl DelaySpec {
    /// A schedule that never delays — the hook becomes a no-op.
    pub fn none() -> Self {
        Self::default()
    }

    /// The uniform PMRace baseline: probability `prob` (clamped to
    /// [0, 1]), delays up to `max_delay_us`.
    pub fn uniform(prob: f64, max_delay_us: u64) -> Self {
        Self {
            prob_1024: (prob.clamp(0.0, 1.0) * 1024.0) as u16,
            max_delay_us,
            rules: Vec::new(),
        }
    }

    /// `true` when no point can ever be delayed; callers skip installing
    /// the hook entirely so undelayed rounds stay byte-identical to runs
    /// that never had an injector.
    pub fn is_noop(&self) -> bool {
        let base_off = self.prob_1024 == 0 || self.max_delay_us == 0;
        base_off
            && self
                .rules
                .iter()
                .all(|r| r.prob_1024 == 0 || r.max_delay_us == 0)
    }
}

/// Deterministic, probability-driven PM-operation delayer.
pub struct DelayInjector {
    seed: u64,
    spec: DelaySpec,
    counter: AtomicU64,
    injected: AtomicU64,
}

impl DelayInjector {
    /// Creates an injector firing with probability `prob` (clamped to
    /// [0, 1]) and uniform delays up to `max_delay_us` microseconds.
    /// `max_delay_us == 0` disables injection entirely: the hook becomes a
    /// no-op and [`injected`](Self::injected) stays 0.
    pub fn new(seed: u64, prob: f64, max_delay_us: u64) -> Arc<Self> {
        Self::with_spec(seed, DelaySpec::uniform(prob, max_delay_us))
    }

    /// Creates an injector driven by a full [`DelaySpec`] schedule.
    pub fn with_spec(seed: u64, spec: DelaySpec) -> Arc<Self> {
        Arc::new(Self {
            seed,
            spec,
            counter: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        })
    }

    /// Number of delays injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Wraps the injector as a runtime hook.
    pub fn hook(self: &Arc<Self>) -> Hook {
        let me = Arc::clone(self);
        Arc::new(move |tid: ThreadId, point: HookPoint| {
            if me.spec.is_noop() {
                return; // injection disabled
            }
            let n = me.counter.fetch_add(1, Ordering::Relaxed);
            // First matching rule overrides the uniform base layer.
            let (prob_1024, max_delay_us) = me
                .spec
                .rules
                .iter()
                .find(|r| r.thread.is_none_or(|t| t == tid.0) && r.point.matches(point))
                .map(|r| (u64::from(r.prob_1024), r.max_delay_us))
                .unwrap_or((u64::from(me.spec.prob_1024), me.spec.max_delay_us));
            if max_delay_us == 0 {
                return;
            }
            let addr = match point {
                HookPoint::BeforeStore(a)
                | HookPoint::BeforeLoad(a)
                | HookPoint::BeforeFlush(a) => a,
                HookPoint::BeforeFence => 0,
                HookPoint::BeforeAcquire(l) | HookPoint::BeforeRelease(l) => l.0,
            };
            let h = pm_workloads::zipfian::fnv1a(
                me.seed ^ n.rotate_left(17) ^ u64::from(tid.0).rotate_left(33) ^ addr,
            );
            if h % 1024 < prob_1024 {
                // Bias delays toward the persistency path: stretching the
                // store→fence window is what exposes the races. Release
                // delays get the same weight — they hold a critical
                // section open past its last PM write.
                let bias = match point {
                    HookPoint::BeforeFence
                    | HookPoint::BeforeFlush(_)
                    | HookPoint::BeforeRelease(_) => 4,
                    HookPoint::BeforeStore(_) => 2,
                    HookPoint::BeforeLoad(_) | HookPoint::BeforeAcquire(_) => 1,
                };
                let us = (h >> 10) % (max_delay_us * bias) + 1;
                me.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(us));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_fires() {
        let inj = DelayInjector::new(1, 0.0, 100);
        let hook = inj.hook();
        for i in 0..1000 {
            hook(ThreadId(0), HookPoint::BeforeStore(i));
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn full_probability_always_fires() {
        let inj = DelayInjector::new(1, 1.0, 1);
        let hook = inj.hook();
        for i in 0..50 {
            hook(ThreadId(0), HookPoint::BeforeLoad(i));
        }
        assert_eq!(inj.injected(), 50);
    }

    #[test]
    fn moderate_probability_fires_sometimes() {
        let inj = DelayInjector::new(7, 0.25, 1);
        let hook = inj.hook();
        for i in 0..400 {
            hook(ThreadId(1), HookPoint::BeforeFence);
            let _ = i;
        }
        let n = inj.injected();
        assert!(n > 40 && n < 180, "expected ≈100 of 400, got {n}");
    }

    /// `max_delay_us: 0` must mean "disabled", not a silent 1 µs floor.
    #[test]
    fn zero_max_delay_disables_injection() {
        let inj = DelayInjector::new(1, 1.0, 0);
        let hook = inj.hook();
        for i in 0..200 {
            hook(ThreadId(0), HookPoint::BeforeStore(i));
        }
        assert_eq!(inj.injected(), 0, "max_delay_us = 0 must never inject");
    }

    /// Same (seed, prob, max_delay_us) ⇒ identical injection decisions on
    /// identical op streams; a different seed places delays differently.
    #[test]
    fn injection_is_deterministic_in_seed() {
        let run = |seed: u64| {
            let inj = DelayInjector::new(seed, 0.25, 1);
            let hook = inj.hook();
            for i in 0..300 {
                hook(ThreadId(0), HookPoint::BeforeStore(i));
                hook(ThreadId(1), HookPoint::BeforeFlush(i));
                hook(ThreadId(1), HookPoint::BeforeFence);
            }
            inj.injected()
        };
        assert_eq!(run(42), run(42), "same seed must inject identically");
        assert_ne!(
            run(42),
            run(1042),
            "different seeds should diverge on 900 ops"
        );
    }

    /// A rule targeting one thread + point class fires only there, and
    /// overrides the (zero) base layer.
    #[test]
    fn targeted_rule_fires_only_on_its_thread_and_class() {
        let spec = DelaySpec {
            prob_1024: 0,
            max_delay_us: 0,
            rules: vec![DelayRule {
                thread: Some(1),
                point: PointClass::Store,
                prob_1024: 1024,
                max_delay_us: 1,
            }],
        };
        let inj = DelayInjector::with_spec(3, spec);
        let hook = inj.hook();
        for i in 0..20 {
            hook(ThreadId(0), HookPoint::BeforeStore(i)); // wrong thread
            hook(ThreadId(1), HookPoint::BeforeLoad(i)); // wrong class
            hook(ThreadId(1), HookPoint::BeforeStore(i)); // match
        }
        assert_eq!(inj.injected(), 20);
    }

    /// A zero-delay rule suppresses the base layer for its match set —
    /// rules are overrides, not additions.
    #[test]
    fn suppressing_rule_masks_the_base_layer() {
        let spec = DelaySpec {
            prob_1024: 1024,
            max_delay_us: 1,
            rules: vec![DelayRule {
                thread: None,
                point: PointClass::Load,
                prob_1024: 0,
                max_delay_us: 0,
            }],
        };
        let inj = DelayInjector::with_spec(3, spec);
        let hook = inj.hook();
        for i in 0..10 {
            hook(ThreadId(0), HookPoint::BeforeLoad(i)); // suppressed
            hook(ThreadId(0), HookPoint::BeforeStore(i)); // base fires
        }
        assert_eq!(inj.injected(), 10);
    }

    /// Lock points participate: an acquire/release-only schedule delays.
    #[test]
    fn lock_points_are_delayable() {
        use hawkset_core::trace::LockId;
        let spec = DelaySpec {
            prob_1024: 0,
            max_delay_us: 0,
            rules: vec![DelayRule {
                thread: None,
                point: PointClass::Release,
                prob_1024: 1024,
                max_delay_us: 1,
            }],
        };
        let inj = DelayInjector::with_spec(5, spec);
        let hook = inj.hook();
        for i in 0..8 {
            hook(ThreadId(0), HookPoint::BeforeAcquire(LockId(i)));
            hook(ThreadId(0), HookPoint::BeforeRelease(LockId(i)));
        }
        assert_eq!(inj.injected(), 8, "only the releases delay");
    }

    #[test]
    fn spec_noop_detection_and_serde_roundtrip() {
        assert!(DelaySpec::none().is_noop());
        assert!(DelaySpec::uniform(0.5, 0).is_noop());
        let spec = DelaySpec {
            prob_1024: 0,
            max_delay_us: 0,
            rules: vec![DelayRule {
                thread: Some(2),
                point: PointClass::Fence,
                prob_1024: 512,
                max_delay_us: 9,
            }],
        };
        assert!(!spec.is_noop());
        let back: DelaySpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(back, spec);
    }
}
