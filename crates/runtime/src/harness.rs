//! Convenience harness for multi-threaded instrumented runs.
//!
//! Most experiments follow the same shape: map a pool, run a load phase on
//! the main thread, fan out N worker threads, join them, and hand the
//! trace to the analysis. [`run_workers`] captures the fan-out/join part.

use std::sync::Arc;

use crate::env::PmEnv;
use crate::thread::PmThread;

/// Spawns `n` instrumented workers running `f(worker_index, thread)` and
/// joins them all on `main`.
///
/// # Examples
///
/// ```
/// use pm_runtime::{PmEnv, run_workers};
///
/// let env = PmEnv::new();
/// let pool = env.map_pool("/mnt/pmem/demo", 4096);
/// let main = env.main_thread();
/// let base = pool.base();
/// let p = pool.clone();
/// run_workers(&env, &main, 4, move |i, t| {
///     p.store_u64(t, base + 64 * i as u64, i as u64);
/// });
/// let trace = env.finish();
/// assert_eq!(trace.thread_count, 5);
/// ```
pub fn run_workers<F>(env: &PmEnv, main: &PmThread, n: usize, f: F)
where
    F: Fn(usize, &PmThread) + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let f = Arc::clone(&f);
            env.spawn(main, move |t| f(i, t))
        })
        .collect();
    for h in handles {
        h.join(main);
    }
}
