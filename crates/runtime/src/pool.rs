//! Pool handles: the application-facing PM access API.
//!
//! A [`PmPool`] stands for one `mmap`ed DAX file. All accesses go through
//! typed helpers that record trace events atomically with the operation.
//! Addresses are absolute within the simulated address space (pools get
//! disjoint bases), so a `PmAddr` is self-describing — just like a virtual
//! address in the original tool.

use std::panic::Location;

use hawkset_core::addr::{AddrRange, PmAddr};

use crate::env::PmEnv;
use crate::thread::PmThread;

/// Handle to a mapped PM pool. Cheap to clone; all clones refer to the same
/// memory.
#[derive(Clone)]
pub struct PmPool {
    env: PmEnv,
    index: usize,
    base: PmAddr,
    len: u64,
}

impl PmPool {
    pub(crate) fn new(env: PmEnv, index: usize, base: PmAddr, len: u64) -> Self {
        Self {
            env,
            index,
            base,
            len,
        }
    }

    /// First byte of the pool in the simulated address space.
    pub fn base(&self) -> PmAddr {
        self.base
    }

    /// Pool size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` for zero-length pools (never produced by
    /// [`PmEnv::map_pool`], which rounds up to a cache line).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The environment this pool belongs to.
    pub fn env(&self) -> &PmEnv {
        &self.env
    }

    fn check(&self, addr: PmAddr, len: usize) {
        assert!(
            addr >= self.base && addr + len as u64 <= self.base + self.len,
            "PM access [{addr:#x}, {:#x}) outside pool [{:#x}, {:#x})",
            addr + len as u64,
            self.base,
            self.base + self.len,
        );
    }

    // ---- stores ----

    /// Stores raw bytes.
    #[track_caller]
    pub fn store_bytes(&self, t: &PmThread, addr: PmAddr, bytes: &[u8]) {
        self.check(addr, bytes.len());
        self.env
            .store_at(t, self.index, addr, bytes, false, false, Location::caller());
    }

    /// Stores a little-endian `u64`.
    #[track_caller]
    pub fn store_u64(&self, t: &PmThread, addr: PmAddr, value: u64) {
        self.check(addr, 8);
        self.env.store_at(
            t,
            self.index,
            addr,
            &value.to_le_bytes(),
            false,
            false,
            Location::caller(),
        );
    }

    /// Stores a little-endian `u32`.
    #[track_caller]
    pub fn store_u32(&self, t: &PmThread, addr: PmAddr, value: u32) {
        self.check(addr, 4);
        self.env.store_at(
            t,
            self.index,
            addr,
            &value.to_le_bytes(),
            false,
            false,
            Location::caller(),
        );
    }

    /// Stores one byte.
    #[track_caller]
    pub fn store_u8(&self, t: &PmThread, addr: PmAddr, value: u8) {
        self.check(addr, 1);
        self.env.store_at(
            t,
            self.index,
            addr,
            &[value],
            false,
            false,
            Location::caller(),
        );
    }

    /// Non-temporal store of raw bytes (bypasses the cache; persists at the
    /// issuing thread's next fence, no flush required).
    #[track_caller]
    pub fn store_bytes_nt(&self, t: &PmThread, addr: PmAddr, bytes: &[u8]) {
        self.check(addr, bytes.len());
        self.env
            .store_at(t, self.index, addr, bytes, true, false, Location::caller());
    }

    /// Non-temporal store of a `u64`.
    #[track_caller]
    pub fn store_u64_nt(&self, t: &PmThread, addr: PmAddr, value: u64) {
        self.check(addr, 8);
        self.env.store_at(
            t,
            self.index,
            addr,
            &value.to_le_bytes(),
            true,
            false,
            Location::caller(),
        );
    }

    /// Atomic store of a `u64` (lock-prefixed / `xchg`-style).
    #[track_caller]
    pub fn atomic_store_u64(&self, t: &PmThread, addr: PmAddr, value: u64) {
        self.check(addr, 8);
        self.env.store_at(
            t,
            self.index,
            addr,
            &value.to_le_bytes(),
            false,
            true,
            Location::caller(),
        );
    }

    // ---- loads ----

    /// Loads raw bytes.
    #[track_caller]
    pub fn load_bytes(&self, t: &PmThread, addr: PmAddr, len: usize) -> Vec<u8> {
        self.check(addr, len);
        self.env
            .load_at(t, self.index, addr, len, false, Location::caller())
    }

    /// Loads a little-endian `u64`.
    #[track_caller]
    pub fn load_u64(&self, t: &PmThread, addr: PmAddr) -> u64 {
        self.check(addr, 8);
        let b = self
            .env
            .load_at(t, self.index, addr, 8, false, Location::caller());
        u64::from_le_bytes(b.try_into().expect("8 bytes"))
    }

    /// Loads a little-endian `u32`.
    #[track_caller]
    pub fn load_u32(&self, t: &PmThread, addr: PmAddr) -> u32 {
        self.check(addr, 4);
        let b = self
            .env
            .load_at(t, self.index, addr, 4, false, Location::caller());
        u32::from_le_bytes(b.try_into().expect("4 bytes"))
    }

    /// Loads one byte.
    #[track_caller]
    pub fn load_u8(&self, t: &PmThread, addr: PmAddr) -> u8 {
        self.check(addr, 1);
        self.env
            .load_at(t, self.index, addr, 1, false, Location::caller())[0]
    }

    /// Atomic load of a `u64`.
    #[track_caller]
    pub fn atomic_load_u64(&self, t: &PmThread, addr: PmAddr) -> u64 {
        self.check(addr, 8);
        let b = self
            .env
            .load_at(t, self.index, addr, 8, true, Location::caller());
        u64::from_le_bytes(b.try_into().expect("8 bytes"))
    }

    // ---- read-modify-write ----

    /// Compare-and-swap on a `u64`: returns `Ok(previous)` on success,
    /// `Err(actual)` on failure. Atomic with respect to every instrumented
    /// operation.
    #[track_caller]
    pub fn cas_u64(&self, t: &PmThread, addr: PmAddr, expected: u64, new: u64) -> Result<u64, u64> {
        self.check(addr, 8);
        self.env
            .cas_at(t, self.index, addr, expected, new, Location::caller())
    }

    /// Atomic fetch-add on a `u64`; returns the previous value.
    #[track_caller]
    pub fn fetch_add_u64(&self, t: &PmThread, addr: PmAddr, delta: u64) -> u64 {
        self.check(addr, 8);
        loop {
            let cur = self.atomic_load_u64(t, addr);
            match self.env.cas_at(
                t,
                self.index,
                addr,
                cur,
                cur.wrapping_add(delta),
                Location::caller(),
            ) {
                Ok(prev) => return prev,
                Err(_) => continue,
            }
        }
    }

    // ---- persistency ----

    /// Flushes the cache line containing `addr` (`clwb`-style). Must be
    /// followed by a fence on the same thread to guarantee persistence.
    #[track_caller]
    pub fn flush(&self, t: &PmThread, addr: PmAddr) {
        self.check(addr, 1);
        self.env.flush_at(t, self.index, addr, Location::caller());
    }

    /// Flushes every cache line overlapping `[addr, addr + len)`.
    #[track_caller]
    pub fn flush_range(&self, t: &PmThread, addr: PmAddr, len: usize) {
        self.check(addr, len.max(1));
        let range = AddrRange::new(addr, len.max(1) as u32);
        for line in range.lines() {
            self.env.flush_at(
                t,
                self.index,
                hawkset_core::addr::line_base(line).max(addr),
                Location::caller(),
            );
        }
    }

    /// Convenience: flush the range and fence (the canonical persist
    /// sequence `clwb; sfence`).
    #[track_caller]
    pub fn persist(&self, t: &PmThread, addr: PmAddr, len: usize) {
        self.flush_range(t, addr, len);
        self.env.fence_at(t, Location::caller());
    }

    // ---- crash simulation ----

    /// Returns the bytes guaranteed to be in PM right now — what a crash at
    /// this instant would leave behind.
    pub fn crash_image(&self) -> Vec<u8> {
        self.env.crash_image(self.index)
    }

    /// Returns the cache-visible (volatile) content, for tests comparing
    /// visible vs durable state.
    pub fn volatile_image(&self) -> Vec<u8> {
        self.env.volatile_image(self.index)
    }

    /// Reads a `u64` directly from the *persistent* image (post-crash
    /// inspection; not an instrumented access).
    pub fn persistent_u64(&self, addr: PmAddr) -> u64 {
        let img = self.crash_image();
        let off = (addr - self.base) as usize;
        u64::from_le_bytes(img[off..off + 8].try_into().expect("8 bytes"))
    }
}
