//! Property-based validation of the repair engine (`analysis::repair`).
//!
//! Two families of properties over arbitrary synthetic traces:
//!
//! 1. **Verdict honesty** — every suggestion the engine marks
//!    `validated: true` is independently re-proven here by replaying the
//!    patch through [`RepairValidator::replay`]: the targeted race is
//!    gone and no race key outside the baseline report appears. Status
//!    demotion is total: `validated` ⟺ `Fix`, otherwise `Candidate`.
//! 2. **Rejection of wrong insertion points** — fuzzed patch placements
//!    that provably cannot repair anything (anchors past the end of the
//!    trace, flush+fence before any store dirtied the line, lock
//!    extensions whose `from_seq` names no boundary of that lock) must
//!    never validate.

use hawkset::core::addr::AddrRange;
use hawkset::core::analysis::{AnalysisConfig, Analyzer, FixKind, FixStatus, RepairValidator};
use hawkset::core::trace::{
    EventKind, Frame, LockId, LockMode, ThreadId, Trace, TraceBuilder, TraceView,
};
use proptest::prelude::*;

/// Valid multi-threaded traces biased toward racy schedules: a small
/// address pool so threads collide, a mix of locked and unlocked stores,
/// and only occasional flushes so store→persist windows stay open across
/// conflicting accesses.
fn arb_racy_trace() -> impl Strategy<Value = Trace> {
    let ops = proptest::collection::vec(
        (0u8..8, 0u64..24u64, 1u32..17, 0u64..3, any::<bool>()),
        4..90,
    );
    (ops, 2u32..4).prop_map(|(ops, workers)| {
        let mut b = TraceBuilder::new();
        let stacks: Vec<_> = (0u32..4)
            .map(|i| b.intern_stack([Frame::new(format!("fn{i}"), "prop.rs", i + 1)]))
            .collect();
        for w in 1..=workers {
            b.push(
                ThreadId(0),
                stacks[0],
                EventKind::ThreadCreate { child: ThreadId(w) },
            );
        }
        let mut held: Vec<Vec<u64>> = vec![Vec::new(); workers as usize + 1];
        for (i, (kind, addr, len, lock, flag)) in ops.into_iter().enumerate() {
            let tid = ThreadId(1 + (i as u32 % workers));
            let s = stacks[i % stacks.len()];
            let range = AddrRange::new(0x1000 + addr * 8, len);
            match kind {
                // Stores twice as likely as anything else: windows are
                // the race ingredient.
                0 | 1 => b.push(
                    tid,
                    s,
                    EventKind::Store {
                        range,
                        non_temporal: false,
                        atomic: false,
                    },
                ),
                2 | 3 => b.push(
                    tid,
                    s,
                    EventKind::Load {
                        range,
                        atomic: false,
                    },
                ),
                4 => b.push(tid, s, EventKind::Flush { addr: range.start }),
                5 => b.push(tid, s, EventKind::Fence),
                6 => {
                    if !held[tid.index()].contains(&lock) {
                        held[tid.index()].push(lock);
                        b.push(
                            tid,
                            s,
                            EventKind::Acquire {
                                lock: LockId(lock),
                                mode: if flag {
                                    LockMode::Shared
                                } else {
                                    LockMode::Exclusive
                                },
                            },
                        );
                    }
                }
                _ => {
                    if let Some(pos) = held[tid.index()].iter().position(|&l| l == lock) {
                        held[tid.index()].remove(pos);
                        b.push(tid, s, EventKind::Release { lock: LockId(lock) });
                    }
                }
            }
        }
        for w in 1..=workers {
            b.push(
                ThreadId(0),
                stacks[0],
                EventKind::ThreadJoin { child: ThreadId(w) },
            );
        }
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every `validated: true` suggestion survives independent replay:
    /// the targeted race disappears and no new race key appears. Every
    /// suggestion targets a reported race, and status follows the
    /// demotion rule exactly.
    #[test]
    fn validated_fixes_kill_their_race_and_add_nothing(trace in arb_racy_trace()) {
        let cfg = AnalysisConfig::default();
        let report = Analyzer::new(cfg.clone()).suggest_fixes(true).run(&trace);
        let baseline: Vec<_> = report.races.iter().map(|r| r.key).collect();
        let view = TraceView::full(&trace);
        let validator = RepairValidator::new(&view, &report.races, &cfg);
        // A clean (or store-store-only) run has no fixes section and the
        // loop below is vacuous.
        let suggestions = report.fixes.as_ref().map_or(&[][..], |f| &f.suggestions);
        for s in suggestions {
            prop_assert!(
                baseline.contains(&s.race),
                "suggestion targets an unreported race {:?}", s.race
            );
            prop_assert_eq!(
                s.status == FixStatus::Fix,
                s.validated,
                "demotion rule violated: {}", s.summary()
            );
            if !s.validated {
                continue;
            }
            let patched = validator.replay(&s.kind);
            let patched = patched.expect("a validated patch must be applicable");
            prop_assert!(
                patched.races.iter().all(|r| r.key != s.race),
                "validated fix {} left its race alive", s.summary()
            );
            for r in &patched.races {
                prop_assert!(
                    baseline.contains(&r.key),
                    "validated fix {} introduced new race {:?}",
                    s.summary(), r.key
                );
            }
        }
    }

    /// Wrong insertion points never validate:
    /// * an anchor past the end of the trace is inapplicable;
    /// * a flush+fence at the very first event persists nothing (no line
    ///   is dirty yet), so the race survives the replay;
    /// * a lock extension whose `from_seq` is not an `Acquire`/`Release`
    ///   of that lock has no boundary to move.
    #[test]
    fn wrong_insertion_points_are_rejected(
        trace in arb_racy_trace(),
        line_salt in 0u64..24,
        lock in 0u64..3,
        seq_salt in 0usize..96,
    ) {
        let cfg = AnalysisConfig::default();
        let report = Analyzer::new(cfg.clone()).run(&trace);
        if report.races.is_empty() {
            // Race-free sample: nothing for a bogus patch to miss.
            return;
        }
        let target = report.races[0].key;
        let view = TraceView::full(&trace);
        let validator = RepairValidator::new(&view, &report.races, &cfg);
        let n = trace.events.len() as u64;

        // Anchor beyond the trace: no event to attach the patch to.
        let missing = FixKind::FlushFence {
            after_seq: n + seq_salt as u64,
            line: 0x1000 + line_salt * 8,
        };
        prop_assert!(!validator.validates(&missing, target));

        // Flush+fence after event 0 — the main thread's first
        // ThreadCreate, before any store dirtied any line: flushing a
        // clean line is a no-op and the fence has nothing pending, so
        // every baseline race (including the target) must survive.
        let too_early = FixKind::FlushFence {
            after_seq: 0,
            line: 0x1000 + (line_salt * 8 / 64) * 64,
        };
        prop_assert!(!validator.validates(&too_early, target));

        // A lock extension whose from_seq names an event that is not an
        // Acquire/Release of that lock is inapplicable by construction.
        let from_seq = (seq_salt as u64) % n;
        let boundary = matches!(
            trace.events.get(from_seq as usize).kind,
            EventKind::Acquire { lock: l, .. } | EventKind::Release { lock: l }
                if l == LockId(lock)
        );
        if !boundary {
            let bogus = FixKind::LockExtension {
                lock,
                from_seq,
                to_seq: 0,
            };
            prop_assert!(
                !validator.validates(&bogus, target),
                "lock extension from a non-boundary event {from_seq} validated"
            );
        }
    }
}
