//! Pipeline observability: a zero-dependency, thread-safe metrics layer.
//!
//! HawkSet's headline claim is *efficiency*, so the pipeline must be able
//! to say where its time and its pruning go. This module provides the
//! three primitives that carry that accounting:
//!
//! * [`Counter`] — a relaxed atomic `u64`, safe to bump from any shard
//!   worker;
//! * [`Histogram`] — fixed-bucket atomic histogram (bucket bounds are part
//!   of the construction, so two runs always bin identically);
//! * [`MetricsRegistry`] — one registry per pipeline run, owning the
//!   counters for every stage plus monotonic stage timers, frozen into a
//!   serializable [`MetricsSnapshot`] at the end of the run.
//!
//! **Determinism contract.** Every field of the snapshot outside the
//! `timing` subobject is bit-identical for every worker-thread count: the
//! counters are only ever incremented by amounts the deterministic shard
//! plan dictates, and the merge order of relaxed atomic adds cannot change
//! a sum. Wall-clock data — stage durations, per-worker busy time — is
//! quarantined in [`TimingMetrics`] and zeroed by
//! [`MetricsSnapshot::masked`] before any determinism comparison.
//!
//! External consumers (the bench crate, future profilers) subscribe
//! through the [`ObsHook`] trait without recompiling the core: hooks see
//! stage starts, stage ends (with wall-clock durations) and the final
//! counter flush.

mod snapshot;

pub use snapshot::{
    HistogramSnapshot, IngestMetrics, IrhMetrics, MemsimMetrics, MetricsSnapshot, PairingMetrics,
    TimingMetrics, METRICS_VERSION,
};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::memsim::SimStats;

/// A thread-safe monotonically increasing counter.
///
/// All operations are `Relaxed`: counters carry no synchronization duties,
/// and addition is commutative, so the observed total is schedule-
/// independent as long as the *amounts* added are.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (for counters computed once, not accumulated).
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket `i` counts observations `v` with `bounds[i-1] < v <= bounds[i]`
/// (bucket 0 starts at zero); one extra overflow bucket catches everything
/// past the last bound. Bounds are fixed at construction, so the binning
/// of a deterministic observation stream is itself deterministic.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
}

impl Histogram {
    /// A histogram over explicit ascending inclusive upper bounds.
    pub fn with_bounds(bounds: Vec<u64>) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self { bounds, buckets }
    }

    /// Bounds `0, 1, 2, 4, …, 2^max_exp` — the shape used for shard
    /// occupancy, where empty shards are common and counts are heavy-tailed.
    pub fn powers_of_two(max_exp: u32) -> Self {
        let mut bounds = vec![0];
        bounds.extend((0..=max_exp).map(|e| 1u64 << e));
        Self::with_bounds(bounds)
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let i = match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => i,
            None => self.bounds.len(),
        };
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes the current counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// The pipeline stages a [`MetricsRegistry`] can time and an [`ObsHook`]
/// can observe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Trace decode (and salvage) — timed by the CLI, which owns the I/O.
    Decode,
    /// Worst-case persistence simulation + IRH.
    Simulate,
    /// Sharded pairing.
    Pairing,
    /// The whole pipeline.
    Total,
}

impl Stage {
    /// Stable lowercase name (`"decode"`, `"simulate"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Simulate => "simulate",
            Stage::Pairing => "pairing",
            Stage::Total => "total",
        }
    }
}

/// Callback tracing hooks: subscribe to stage boundaries and the final
/// counter flush without recompiling the core.
///
/// All methods have empty defaults, so a hook implements only what it
/// needs. Hooks run inline on the pipeline thread — keep them cheap; a
/// slow hook slows the stage it observes (its cost lands in `timing`
/// only, never in the deterministic counters).
pub trait ObsHook: Send + Sync {
    /// A stage is about to run.
    fn on_stage_start(&self, _stage: Stage) {}
    /// A stage finished after `wall` of wall-clock time.
    fn on_stage_end(&self, _stage: Stage, _wall: Duration) {}
    /// The registry froze its counters into a snapshot (end of the run).
    fn on_counter_flush(&self, _snapshot: &MetricsSnapshot) {}
}

/// Live ingest counters (see [`IngestMetrics`] for field meanings).
#[derive(Debug, Default)]
pub struct IngestCounters {
    /// Events that reached the pipeline after decode.
    pub events_decoded: Counter,
    /// Events the simulation replayed.
    pub events_analyzed: Counter,
    /// Events dropped by the lenient-mode quarantine.
    pub events_quarantined: Counter,
    /// Events cut by the `max_events` budget prefix.
    pub events_truncated: Counter,
    /// Events lost to lossy salvage before decode completed.
    pub events_salvage_dropped: Counter,
    /// Bytes discarded by lossy salvage.
    pub bytes_salvage_dropped: Counter,
}

/// Live pairing counters (see [`PairingMetrics`] for field meanings).
#[derive(Debug)]
pub struct PairingCounters {
    /// Store windows considered.
    pub live_windows: Counter,
    /// Loads considered.
    pub live_loads: Counter,
    /// Candidate pairs, classified + budget-dropped.
    pub candidate_pairs: Counter,
    /// Pairs reported racy.
    pub pairs_reported: Counter,
    /// Pairs pruned by happens-before.
    pub pairs_pruned_hb: Counter,
    /// Pairs pruned by the lockset intersection.
    pub pairs_pruned_lockset: Counter,
    /// Pairs left unexamined by a tripped pair budget.
    pub pairs_budget_dropped: Counter,
    /// Distinct races reported.
    pub distinct_races: Counter,
    /// Memoized HB checks that hit.
    pub hb_memo_hits: Counter,
    /// Memoized lockset checks that hit.
    pub lockset_memo_hits: Counter,
    /// One slot per shard: that shard's candidate pairs. Written
    /// concurrently by whichever worker ran the shard — safe because each
    /// shard has exactly one owner per run.
    pub shard_candidate_pairs: Vec<Counter>,
    /// Window-group count per shard.
    pub shard_occupancy: Histogram,
}

impl PairingCounters {
    fn new(shards: usize) -> Self {
        Self {
            live_windows: Counter::new(),
            live_loads: Counter::new(),
            candidate_pairs: Counter::new(),
            pairs_reported: Counter::new(),
            pairs_pruned_hb: Counter::new(),
            pairs_pruned_lockset: Counter::new(),
            pairs_budget_dropped: Counter::new(),
            distinct_races: Counter::new(),
            hb_memo_hits: Counter::new(),
            lockset_memo_hits: Counter::new(),
            shard_candidate_pairs: (0..shards).map(|_| Counter::new()).collect(),
            // 0, 1, 2, 4, …, 2^20 window groups per shard.
            shard_occupancy: Histogram::powers_of_two(20),
        }
    }
}

/// Monotonic stage timers, nanoseconds, accumulated per stage.
#[derive(Debug, Default)]
struct TimingCells {
    decode_ns: AtomicU64,
    simulate_ns: AtomicU64,
    pairing_ns: AtomicU64,
    total_ns: AtomicU64,
    worker_busy_ns: Mutex<Vec<u64>>,
}

/// One registry per pipeline run: the live, writable side of the metrics
/// layer. Freeze it with [`MetricsRegistry::flush`] when the run ends.
pub struct MetricsRegistry {
    /// Decode / quarantine / truncation counters.
    pub ingest: IngestCounters,
    /// Pairing-stage counters.
    pub pairing: PairingCounters,
    sim: Mutex<Option<SimStats>>,
    timing: TimingCells,
    hooks: Vec<Arc<dyn ObsHook>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("ingest", &self.ingest)
            .field("pairing", &self.pairing)
            .field("hooks", &self.hooks.len())
            .finish_non_exhaustive()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A registry with no hooks.
    pub fn new() -> Self {
        Self::with_hooks(Vec::new())
    }

    /// A registry whose stage and flush events are forwarded to `hooks`.
    pub fn with_hooks(hooks: Vec<Arc<dyn ObsHook>>) -> Self {
        Self {
            ingest: IngestCounters::default(),
            pairing: PairingCounters::new(crate::analysis::engine::PAIR_SHARDS),
            sim: Mutex::new(None),
            timing: TimingCells::default(),
            hooks,
        }
    }

    /// Starts timing `stage`; the returned guard records the duration (and
    /// fires [`ObsHook::on_stage_end`]) when dropped.
    pub fn stage(&self, stage: Stage) -> StageGuard<'_> {
        for h in &self.hooks {
            h.on_stage_start(stage);
        }
        StageGuard {
            reg: self,
            stage,
            started: Instant::now(),
        }
    }

    /// Adds `wall` to a stage's accumulated duration without a guard —
    /// for durations measured externally (the CLI's decode timer).
    pub fn record_stage_duration(&self, stage: Stage, wall: Duration) {
        let ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        let cell = match stage {
            Stage::Decode => &self.timing.decode_ns,
            Stage::Simulate => &self.timing.simulate_ns,
            Stage::Pairing => &self.timing.pairing_ns,
            Stage::Total => &self.timing.total_ns,
        };
        cell.fetch_add(ns, Ordering::Relaxed);
    }

    /// Stores the simulation's counters (stage-1 + IRH sections of the
    /// snapshot).
    pub fn record_sim(&self, stats: &SimStats) {
        *self.sim.lock().unwrap() = Some(stats.clone());
    }

    /// Stores per-worker busy durations from the pairing fan-out.
    pub fn record_worker_busy(&self, busy: &[Duration]) {
        let mut guard = self.timing.worker_busy_ns.lock().unwrap();
        *guard = busy
            .iter()
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .collect();
    }

    /// Freezes the current counters without firing hooks.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let ms = |cell: &AtomicU64| cell.load(Ordering::Relaxed) as f64 / 1e6;
        let (memsim, irh) = match self.sim.lock().unwrap().as_ref() {
            Some(s) => (s.memsim_metrics(), s.irh_metrics()),
            None => (MemsimMetrics::default(), IrhMetrics::default()),
        };
        let p = &self.pairing;
        MetricsSnapshot {
            version: METRICS_VERSION,
            ingest: IngestMetrics {
                events_decoded: self.ingest.events_decoded.get(),
                events_analyzed: self.ingest.events_analyzed.get(),
                events_quarantined: self.ingest.events_quarantined.get(),
                events_truncated: self.ingest.events_truncated.get(),
                events_salvage_dropped: self.ingest.events_salvage_dropped.get(),
                bytes_salvage_dropped: self.ingest.bytes_salvage_dropped.get(),
            },
            memsim,
            irh,
            pairing: PairingMetrics {
                live_windows: p.live_windows.get(),
                live_loads: p.live_loads.get(),
                candidate_pairs: p.candidate_pairs.get(),
                pairs_reported: p.pairs_reported.get(),
                pairs_pruned_hb: p.pairs_pruned_hb.get(),
                pairs_pruned_lockset: p.pairs_pruned_lockset.get(),
                pairs_budget_dropped: p.pairs_budget_dropped.get(),
                distinct_races: p.distinct_races.get(),
                hb_memo_hits: p.hb_memo_hits.get(),
                lockset_memo_hits: p.lockset_memo_hits.get(),
                shard_candidate_pairs: p.shard_candidate_pairs.iter().map(Counter::get).collect(),
                shard_occupancy: p.shard_occupancy.snapshot(),
            },
            timing: TimingMetrics {
                decode_ms: ms(&self.timing.decode_ns),
                simulate_ms: ms(&self.timing.simulate_ns),
                pairing_ms: ms(&self.timing.pairing_ns),
                total_ms: ms(&self.timing.total_ns),
                worker_busy_ms: self
                    .timing
                    .worker_busy_ns
                    .lock()
                    .unwrap()
                    .iter()
                    .map(|&ns| ns as f64 / 1e6)
                    .collect(),
            },
        }
    }

    /// Freezes the counters and fires [`ObsHook::on_counter_flush`] on
    /// every hook.
    pub fn flush(&self) -> MetricsSnapshot {
        let snapshot = self.snapshot();
        for h in &self.hooks {
            h.on_counter_flush(&snapshot);
        }
        snapshot
    }
}

/// RAII stage timer — see [`MetricsRegistry::stage`].
pub struct StageGuard<'a> {
    reg: &'a MetricsRegistry,
    stage: Stage,
    started: Instant,
}

impl Drop for StageGuard<'_> {
    fn drop(&mut self) {
        let wall = self.started.elapsed();
        self.reg.record_stage_duration(self.stage, wall);
        for h in &self.reg.hooks {
            h.on_stage_end(self.stage, wall);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.add(2);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        c.set(5);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_bins_inclusively_with_overflow() {
        let h = Histogram::with_bounds(vec![0, 1, 4]);
        for v in [0, 1, 2, 4, 5, 1000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.bounds, vec![0, 1, 4]);
        assert_eq!(snap.counts, vec![1, 1, 2, 2]); // {0}, {1}, {2,4}, {5,1000}
        assert_eq!(snap.total(), 6);
    }

    #[test]
    fn powers_of_two_histogram_covers_zero() {
        let h = Histogram::powers_of_two(3); // 0,1,2,4,8
        h.observe(0);
        h.observe(8);
        h.observe(9);
        let snap = h.snapshot();
        assert_eq!(snap.bounds, vec![0, 1, 2, 4, 8]);
        assert_eq!(snap.counts, vec![1, 0, 0, 0, 1, 1]);
    }

    /// A hook that counts callback invocations and checks ordering.
    #[derive(Default)]
    struct Probe {
        starts: AtomicUsize,
        ends: AtomicUsize,
        flushes: AtomicUsize,
    }

    impl ObsHook for Probe {
        fn on_stage_start(&self, stage: Stage) {
            assert_eq!(stage, Stage::Simulate);
            self.starts.fetch_add(1, Ordering::Relaxed);
        }
        fn on_stage_end(&self, stage: Stage, _wall: Duration) {
            assert_eq!(stage, Stage::Simulate);
            self.ends.fetch_add(1, Ordering::Relaxed);
        }
        fn on_counter_flush(&self, snapshot: &MetricsSnapshot) {
            assert_eq!(snapshot.version, METRICS_VERSION);
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn stage_guard_fires_hooks_and_accumulates_timing() {
        let probe = Arc::new(Probe::default());
        let reg = MetricsRegistry::with_hooks(vec![probe.clone()]);
        {
            let _g = reg.stage(Stage::Simulate);
            assert_eq!(probe.starts.load(Ordering::Relaxed), 1);
            assert_eq!(probe.ends.load(Ordering::Relaxed), 0);
        }
        assert_eq!(probe.ends.load(Ordering::Relaxed), 1);
        let snap = reg.flush();
        assert_eq!(probe.flushes.load(Ordering::Relaxed), 1);
        assert!(snap.timing.simulate_ms >= 0.0);
        assert_eq!(snap.timing.pairing_ms, 0.0);
    }

    #[test]
    fn external_durations_accumulate_per_stage() {
        let reg = MetricsRegistry::new();
        reg.record_stage_duration(Stage::Decode, Duration::from_millis(2));
        reg.record_stage_duration(Stage::Decode, Duration::from_millis(3));
        let snap = reg.snapshot();
        assert!((snap.timing.decode_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_reflects_counters_and_masks_deterministically() {
        let reg = MetricsRegistry::new();
        reg.ingest.events_decoded.set(10);
        reg.ingest.events_analyzed.set(10);
        reg.pairing.candidate_pairs.add(4);
        reg.pairing.pairs_reported.add(4);
        reg.pairing.shard_candidate_pairs[0].add(3);
        reg.pairing.shard_candidate_pairs[63].add(1);
        reg.record_stage_duration(Stage::Total, Duration::from_millis(1));
        let snap = reg.flush();
        assert!(snap.conservation_violations().is_empty());
        assert_eq!(snap.pairing.shard_candidate_pairs.len(), 64);
        assert_eq!(snap.pairing.shard_candidate_pairs[0], 3);
        assert!(snap.timing.total_ms > 0.0);
        assert_eq!(snap.masked().timing.total_ms, 0.0);
    }
}
