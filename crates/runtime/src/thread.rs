//! Instrumented threads and synthetic call stacks.
//!
//! The original tool replaces `PIN_Backtrace` with cheap call/return
//! instrumentation (§4). Our substrate does the analogue: application code
//! pushes named frames ([`PmThread::frame`]) around logical operations, and
//! every PM access captures the current frame stack plus its own
//! `#[track_caller]` source location as the innermost frame. The result is
//! the backtrace attached to every event — what lets a race report say
//! "store at `btree.h:560` in `fastfair::insert`".

use std::cell::RefCell;
use std::panic::Location;

use hawkset_core::trace::{Frame, ThreadId};

use crate::env::PmEnv;

/// One pushed application frame.
#[derive(Clone, Debug)]
pub(crate) struct AppFrame {
    pub name: String,
    pub file: &'static str,
    pub line: u32,
}

/// Per-thread instrumentation context.
///
/// A `PmThread` is created for you by [`PmEnv::main_thread`] and
/// [`PmEnv::spawn`]; every instrumented operation takes `&PmThread` so the
/// runtime knows the issuing thread and its current call stack.
pub struct PmThread {
    env: PmEnv,
    tid: ThreadId,
    frames: RefCell<Vec<AppFrame>>,
}

impl PmThread {
    pub(crate) fn new(env: PmEnv, tid: ThreadId) -> Self {
        Self {
            env,
            tid,
            frames: RefCell::new(Vec::new()),
        }
    }

    /// The thread's id in the trace.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// The environment this thread belongs to.
    pub fn env(&self) -> &PmEnv {
        &self.env
    }

    /// Pushes a named frame for the duration of the returned guard.
    ///
    /// # Examples
    ///
    /// ```ignore
    /// let _f = t.frame("fastfair::insert");
    /// // ... PM accesses recorded inside carry this frame ...
    /// ```
    #[track_caller]
    pub fn frame(&self, name: impl Into<String>) -> FrameGuard<'_> {
        let loc = Location::caller();
        self.frames.borrow_mut().push(AppFrame {
            name: name.into(),
            file: loc.file(),
            line: loc.line(),
        });
        FrameGuard { thread: self }
    }

    /// Issues a store fence (`sfence`): everything this thread flushed (and
    /// every non-temporal store it issued) is persistent afterwards.
    #[track_caller]
    pub fn fence(&self) {
        self.env.fence_at(self, Location::caller());
    }

    /// Builds the current backtrace, innermost first, with `loc` as the
    /// access site. The innermost frame borrows the enclosing frame's name
    /// (or `<app>` at top level), mirroring how a PC-based backtrace names
    /// the containing function.
    pub(crate) fn capture_stack(&self, loc: &'static Location<'static>) -> Vec<Frame> {
        let frames = self.frames.borrow();
        let top_name = frames
            .last()
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<app>".into());
        let mut stack = Vec::with_capacity(frames.len() + 1);
        stack.push(Frame::new(top_name, loc.file(), loc.line()));
        for f in frames.iter().rev() {
            stack.push(Frame::new(f.name.clone(), f.file, f.line));
        }
        stack
    }
}

/// Pops its frame when dropped. Created by [`PmThread::frame`].
pub struct FrameGuard<'t> {
    thread: &'t PmThread,
}

impl Drop for FrameGuard<'_> {
    fn drop(&mut self) {
        self.thread.frames.borrow_mut().pop();
    }
}

/// Handle to an instrumented spawned thread.
///
/// Joining through [`PmJoinHandle::join`] records the `ThreadJoin` event
/// that establishes the happens-before edge used by the analysis.
pub struct PmJoinHandle<R> {
    pub(crate) inner: std::thread::JoinHandle<R>,
    pub(crate) child: ThreadId,
}

impl<R> PmJoinHandle<R> {
    /// The spawned thread's id.
    pub fn child_tid(&self) -> ThreadId {
        self.child
    }

    /// Waits for the thread and records the join edge on behalf of
    /// `joiner`, returning the child's panic payload instead of
    /// propagating it.
    ///
    /// The `ThreadJoin` event is recorded **even when the child panicked**:
    /// the OS-level join completed either way, so the happens-before edge
    /// is real, and dropping it would let the analysis pair the surviving
    /// threads' accesses against the dead thread's as if they were
    /// concurrent.
    #[track_caller]
    pub fn try_join(self, joiner: &PmThread) -> std::thread::Result<R> {
        let loc = Location::caller();
        let out = self.inner.join();
        joiner.env().join_at(joiner, self.child, loc);
        out
    }

    /// Waits for the thread and records the join edge on behalf of
    /// `joiner`.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the joined thread with its original payload
    /// (after the join edge is recorded), like
    /// [`std::thread::JoinHandle::join`] + `unwrap`.
    #[track_caller]
    pub fn join(self, joiner: &PmThread) -> R {
        match self.try_join(joiner) {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}
