//! Checkpoint/resume for long analysis runs.
//!
//! A run that dies hours in — OOM-killed, node reboot, Ctrl-C — should not
//! cost hours to redo. The streaming analyzer periodically snapshots its
//! durable progress to a checkpoint file with the same atomic tmp+rename
//! discipline the crashtest harness pins down, and `--resume` picks the
//! run back up.
//!
//! What is checkpointed is chosen by cost, not by completeness:
//!
//! * **Ingest progress** (stream offset, event counts) is recorded for
//!   sanity-checking only. Decode + simulation are linear and fast; on
//!   resume they are *replayed* from the trace file, which is both simpler
//!   and safer than persisting the simulator's interning tables.
//! * **Finished pairing shards** are the expensive part (the stage is
//!   quadratic in the worst case) and are persisted output-by-output. On
//!   resume a finished shard is not re-executed: its recorded output is
//!   merged verbatim, preserving bit-identical reports because only
//!   deterministic outputs ([`ShardOutput::cacheable`]) are ever stored —
//!   deadline/watchdog/interrupt truncations are schedule-dependent and
//!   never cached.
//!
//! The file is versioned JSON ([`CHECKPOINT_VERSION`]) and stamped with a
//! [fingerprint](config_fingerprint) of every report-affecting knob plus
//! the source identity; resuming under a different configuration or
//! against a different trace is refused with a typed
//! [`CheckpointError`] rather than silently merging incompatible state.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use super::engine::{RaceAcc, ShardOutput, SiteKey};
use super::{AnalysisConfig, BudgetExceeded, Race, Strictness};
use crate::error::HawkSetError;
use crate::ioplane::{IoPlane, RealIo};

/// Version of the checkpoint file format. Bump on any change to the
/// serialized shape; [`AnalysisCheckpoint::load`] refuses other versions
/// (re-running from scratch is always safe, merging mis-parsed state is
/// not).
pub const CHECKPOINT_VERSION: u32 = 1;

/// Default events between ingest-progress flushes when the caller does not
/// set [`AnalysisConfig::checkpoint_every`].
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 1 << 20;

/// Why a checkpoint cannot resume the requested run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file's format version is not [`CHECKPOINT_VERSION`].
    VersionMismatch {
        /// Version found in the file.
        found: u32,
    },
    /// The run's configuration fingerprint differs from the checkpoint's —
    /// cached shard outputs would not match what this run computes.
    ConfigMismatch {
        /// Fingerprint found in the file.
        found: String,
        /// Fingerprint of the resuming run.
        expected: String,
    },
    /// The trace being analyzed is not the one the checkpoint was taken
    /// from (different declared event count).
    SourceMismatch {
        /// Declared events recorded in the checkpoint.
        found: u64,
        /// Declared events of the resuming run's trace.
        expected: u64,
    },
    /// The file parsed as JSON but not as a checkpoint.
    Malformed(String),
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckpointError::VersionMismatch { found } => write!(
                f,
                "checkpoint format version {found} (this build reads {CHECKPOINT_VERSION})"
            ),
            CheckpointError::ConfigMismatch { found, expected } => write!(
                f,
                "checkpoint was taken under configuration `{found}` but this run is `{expected}`"
            ),
            CheckpointError::SourceMismatch { found, expected } => write!(
                f,
                "checkpoint belongs to a trace with {found} events, this trace declares {expected}"
            ),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Ingest-side progress: how far the stream decode + simulation got.
/// Recorded for resume-time sanity checks and operator visibility; the
/// linear stages are replayed on resume rather than restored.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestProgress {
    /// Absolute byte offset of the next undecoded byte — in mid-salvage
    /// runs this is the end of the well-formed prefix, so a checkpoint
    /// taken mid-salvage still names a real stream position.
    pub stream_offset: u64,
    /// Events decoded from the stream so far.
    pub events_decoded: u64,
    /// Events admitted past quarantine (equals `events_decoded` under
    /// strict mode).
    pub events_kept: u64,
    /// Events fed to the simulator (kept, capped by `max_events`).
    pub events_analyzed: u64,
}

/// One persisted race accumulator: the pairing engine's
/// deduplication-key + witness-rank pair flattened to named scalar fields
/// (the vendored serde derives support neither tuples nor enum payloads in
/// maps), plus the [`Race`] itself, which already serializes for reports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RaceEntry {
    /// `"functions"` or `"stacks"` — which dedup key variant applies.
    pub site_kind: String,
    /// Store-side function name (`site_kind == "functions"` only).
    #[serde(default)]
    pub store_function: String,
    /// Load-side function name (`site_kind == "functions"` only).
    #[serde(default)]
    pub load_function: String,
    /// Store-side stack id (`site_kind == "stacks"` only).
    #[serde(default)]
    pub store_stack_key: u32,
    /// Load-side stack id (`site_kind == "stacks"` only).
    #[serde(default)]
    pub load_stack_key: u32,
    /// Witness rank: global window-group index of the first witness.
    pub rank_group: u32,
    /// Witness rank: load-group index of the first witness.
    pub rank_load: u32,
    /// The accumulated race.
    pub race: Race,
}

/// One finished pairing shard, mirroring [`ShardOutput`] field-for-field.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Shard index within the fixed shard plan.
    pub shard: u32,
    /// Candidate pairs examined.
    pub candidate_pairs: u64,
    /// Pairs pruned by the happens-before filter.
    pub hb_pruned: u64,
    /// Pairs protected by a common lock.
    pub lockset_protected: u64,
    /// Racy pairs before deduplication.
    pub racy_pairs: u64,
    /// HB memo-table hits.
    pub hb_memo_hits: u64,
    /// Lockset memo-table hits.
    pub lockset_memo_hits: u64,
    /// Window groups examined.
    pub groups_examined: u64,
    /// Candidate pairs enumerated in a budget-dropped tail.
    pub pairs_budget_dropped: u64,
    /// Truncation, if any. Only `candidate_pairs` (deterministic) can
    /// appear — non-cacheable truncations are never written.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub truncated: Option<BudgetExceeded>,
    /// Accumulated races, sorted by witness rank (ties by key) so the file
    /// bytes are stable across runs.
    pub races: Vec<RaceEntry>,
}

impl ShardEntry {
    /// Snapshot of a finished shard's output.
    pub(crate) fn from_output(shard: usize, out: &ShardOutput) -> Self {
        debug_assert!(out.cacheable(), "non-deterministic shard output persisted");
        let mut races: Vec<RaceEntry> = out
            .races
            .iter()
            .map(|(key, acc)| {
                let mut e = RaceEntry {
                    site_kind: String::new(),
                    store_function: String::new(),
                    load_function: String::new(),
                    store_stack_key: 0,
                    load_stack_key: 0,
                    rank_group: acc.rank.0,
                    rank_load: acc.rank.1,
                    race: acc.race.clone(),
                };
                match key {
                    SiteKey::Functions(s, l) => {
                        e.site_kind = "functions".into();
                        e.store_function = s.clone();
                        e.load_function = l.clone();
                    }
                    SiteKey::Stacks(s, l) => {
                        e.site_kind = "stacks".into();
                        e.store_stack_key = *s;
                        e.load_stack_key = *l;
                    }
                }
                e
            })
            .collect();
        races.sort_by(|a, b| {
            (
                a.rank_group,
                a.rank_load,
                &a.store_function,
                &a.load_function,
            )
                .cmp(&(
                    b.rank_group,
                    b.rank_load,
                    &b.store_function,
                    &b.load_function,
                ))
                .then_with(|| {
                    (a.store_stack_key, a.load_stack_key)
                        .cmp(&(b.store_stack_key, b.load_stack_key))
                })
        });
        ShardEntry {
            shard: shard as u32,
            candidate_pairs: out.candidate_pairs,
            hb_pruned: out.hb_pruned,
            lockset_protected: out.lockset_protected,
            racy_pairs: out.racy_pairs,
            hb_memo_hits: out.hb_memo_hits,
            lockset_memo_hits: out.lockset_memo_hits,
            groups_examined: out.groups_examined,
            pairs_budget_dropped: out.pairs_budget_dropped,
            truncated: out.truncated,
            races,
        }
    }

    /// Rebuilds the engine-side output this entry was taken from.
    pub(crate) fn to_output(&self) -> ShardOutput {
        let mut races = HashMap::with_capacity(self.races.len());
        for e in &self.races {
            let key = if e.site_kind == "functions" {
                SiteKey::Functions(e.store_function.clone(), e.load_function.clone())
            } else {
                SiteKey::Stacks(e.store_stack_key, e.load_stack_key)
            };
            races.insert(
                key,
                RaceAcc {
                    rank: (e.rank_group, e.rank_load),
                    race: e.race.clone(),
                },
            );
        }
        ShardOutput {
            races,
            candidate_pairs: self.candidate_pairs,
            hb_pruned: self.hb_pruned,
            lockset_protected: self.lockset_protected,
            racy_pairs: self.racy_pairs,
            hb_memo_hits: self.hb_memo_hits,
            lockset_memo_hits: self.lockset_memo_hits,
            groups_examined: self.groups_examined,
            pairs_budget_dropped: self.pairs_budget_dropped,
            truncated: self.truncated,
        }
    }
}

/// The checkpoint file: versioned, fingerprinted, atomic-rename-written.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalysisCheckpoint {
    /// [`CHECKPOINT_VERSION`] at write time.
    pub version: u32,
    /// [`config_fingerprint`] of the run that wrote the file.
    pub fingerprint: String,
    /// Trace source the run was analyzing (path, or `-` for stdin — which
    /// cannot be resumed, the stream is gone).
    pub source: String,
    /// Event count the trace header declared — the source-identity check.
    pub declared_events: u64,
    /// Coarse phase at the last flush: `ingest`, `pairing`, or `done`.
    pub phase: String,
    /// Ingest progress at the last flush.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ingest: Option<IngestProgress>,
    /// Finished pairing shards, in shard order.
    #[serde(default)]
    pub shards: Vec<ShardEntry>,
}

impl AnalysisCheckpoint {
    /// Parses a checkpoint file, refusing unknown format versions.
    pub fn load(path: &Path) -> Result<Self, HawkSetError> {
        let raw = std::fs::read_to_string(path)?;
        let ck: AnalysisCheckpoint =
            serde_json::from_str(&raw).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        if ck.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch { found: ck.version }.into());
        }
        Ok(ck)
    }

    /// Checks that this checkpoint can seed a run with the given
    /// fingerprint and trace identity.
    pub fn validate_resume(
        &self,
        fingerprint: &str,
        declared_events: u64,
    ) -> Result<(), CheckpointError> {
        if self.fingerprint != fingerprint {
            return Err(CheckpointError::ConfigMismatch {
                found: self.fingerprint.clone(),
                expected: fingerprint.to_string(),
            });
        }
        if self.declared_events != declared_events {
            return Err(CheckpointError::SourceMismatch {
                found: self.declared_events,
                expected: declared_events,
            });
        }
        Ok(())
    }

    /// The cached shard outputs, keyed by shard index, for
    /// [`PairingControls::resume`](super::engine::PairingControls).
    pub(crate) fn shard_outputs(&self) -> HashMap<usize, ShardOutput> {
        self.shards
            .iter()
            .map(|e| (e.shard as usize, e.to_output()))
            .collect()
    }
}

/// Fingerprint of every configuration knob that affects report *content*.
///
/// Deliberately excluded: `threads` (bit-identical by contract), the
/// wall-clock budgets (`deadline`, `stage_timeout`) and `interrupt`
/// (schedule-dependent truncations are never cached, so they cannot leak
/// into a resumed report), and the checkpoint/stream-ingest knobs
/// themselves (`AnalysisConfig::stream` carries the session this
/// fingerprint is written into).
pub fn config_fingerprint(cfg: &AnalysisConfig) -> String {
    let opt = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "none".into());
    format!(
        "v1;irh={};atomics={};eadr={};hb={};ss={};strict={};pairs={};events={};mem={};fixes={}",
        u8::from(cfg.irh),
        u8::from(cfg.include_atomics),
        u8::from(cfg.eadr),
        u8::from(cfg.use_hb),
        u8::from(cfg.check_store_store),
        match cfg.strictness {
            Strictness::Strict => "strict",
            Strictness::Lenient => "lenient",
        },
        opt(cfg.budget.max_candidate_pairs),
        opt(cfg.budget.max_events),
        opt(cfg.budget.memory_budget),
        u8::from(cfg.suggest_fixes),
    )
}

/// Serializes `ck` and atomically replaces `path` (write to `path.tmp`,
/// fsync, rename) — a reader never observes a half-written checkpoint, and
/// a crash mid-write leaves the previous one intact.
pub fn write_atomic(path: &Path, ck: &AnalysisCheckpoint) -> std::io::Result<()> {
    write_atomic_with(&RealIo, path, ck)
}

/// [`write_atomic`] through an explicit I/O plane (site `checkpoint`) —
/// the seam the storage fault-injection tests use. On failure the tmp file
/// is removed; the previously committed checkpoint, if any, is untouched.
pub fn write_atomic_with(
    plane: &dyn IoPlane,
    path: &Path,
    ck: &AnalysisCheckpoint,
) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(ck).expect("checkpoint serialization cannot fail");
    let mut bytes = json.into_bytes();
    bytes.push(b'\n');
    let tmp = path.with_extension("tmp");
    let result = (|| {
        plane.write_file("checkpoint", &tmp, &bytes)?;
        plane.fsync("checkpoint", &tmp)?;
        plane.rename("checkpoint", &tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Live checkpoint writer attached to one analysis run.
///
/// Shared across the pipeline's threads: ingest progress is recorded from
/// the streaming loop, shard outputs from the pairing workers (via
/// [`PairingControls::on_shard`](super::engine::PairingControls)). Every
/// record flushes atomically — shard completions are rare and ingest
/// records already ride a caller-side cadence, so each flush is worth its
/// rename. Write failures from worker threads are deferred (a checkpoint
/// problem must not kill the analysis) and surfaced by
/// [`take_error`](Self::take_error).
#[derive(Debug)]
pub struct CheckpointSession {
    path: PathBuf,
    every: u64,
    plane: Arc<dyn IoPlane>,
    state: Mutex<SessionState>,
}

#[derive(Debug)]
struct SessionState {
    ck: AnalysisCheckpoint,
    last_error: Option<std::io::Error>,
}

impl CheckpointSession {
    /// A fresh session writing to `path`. `every` is the ingest cadence in
    /// events (the caller's loop consults [`every`](Self::every)).
    pub fn new(path: PathBuf, fingerprint: String, source: String, every: Option<u64>) -> Self {
        Self {
            path,
            every: every.unwrap_or(DEFAULT_CHECKPOINT_EVERY).max(1),
            plane: Arc::new(RealIo),
            state: Mutex::new(SessionState {
                ck: AnalysisCheckpoint {
                    version: CHECKPOINT_VERSION,
                    fingerprint,
                    source,
                    declared_events: 0,
                    phase: "ingest".into(),
                    ingest: None,
                    shards: Vec::new(),
                },
                last_error: None,
            }),
        }
    }

    /// A session resuming from a loaded checkpoint: prior shard entries are
    /// carried forward so later flushes do not lose them.
    pub fn resuming(path: PathBuf, prior: AnalysisCheckpoint, every: Option<u64>) -> Self {
        Self {
            path,
            every: every.unwrap_or(DEFAULT_CHECKPOINT_EVERY).max(1),
            plane: Arc::new(RealIo),
            state: Mutex::new(SessionState {
                ck: prior,
                last_error: None,
            }),
        }
    }

    /// Routes this session's flushes through `plane` (site `checkpoint`) —
    /// how daemon and CLI runs pick up a process-wide fault script.
    pub fn with_plane(mut self, plane: Arc<dyn IoPlane>) -> Self {
        self.plane = plane;
        self
    }

    /// Ingest cadence in events.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Path of the checkpoint file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stamps the trace identity (once the header is decoded).
    pub fn set_declared_events(&self, declared: u64) {
        self.lock_state().ck.declared_events = declared;
    }

    /// Records ingest progress and flushes.
    pub fn record_ingest(&self, progress: IngestProgress) {
        let mut st = self.lock_state();
        st.ck.phase = "ingest".into();
        st.ck.ingest = Some(progress);
        self.flush_locked(&mut st);
    }

    /// Marks the run's coarse phase and flushes.
    pub fn set_phase(&self, phase: &str) {
        let mut st = self.lock_state();
        st.ck.phase = phase.into();
        self.flush_locked(&mut st);
    }

    /// Records one finished (cacheable) shard output and flushes. Called
    /// from pairing worker threads.
    pub(crate) fn record_shard(&self, shard: usize, out: &ShardOutput) {
        let entry = ShardEntry::from_output(shard, out);
        let mut st = self.lock_state();
        st.ck.phase = "pairing".into();
        match st.ck.shards.binary_search_by_key(&entry.shard, |e| e.shard) {
            Ok(i) => st.ck.shards[i] = entry,
            Err(i) => st.ck.shards.insert(i, entry),
        }
        self.flush_locked(&mut st);
    }

    /// Forces a flush of the current state (the final flush on interrupt).
    pub fn flush_now(&self) -> std::io::Result<()> {
        let mut st = self.lock_state();
        write_atomic_with(self.plane.as_ref(), &self.path, &st.ck)?;
        st.last_error = None;
        Ok(())
    }

    /// The most recent deferred write error, if any.
    pub fn take_error(&self) -> Option<std::io::Error> {
        self.lock_state().last_error.take()
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, SessionState> {
        // A panicking pairing worker must not poison checkpointing for the
        // rest of the run: every record is a full, internally consistent
        // state, so recovering the guard is safe.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn flush_locked(&self, st: &mut SessionState) {
        if let Err(e) = write_atomic_with(self.plane.as_ref(), &self.path, &st.ck) {
            st.last_error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrRange;
    use crate::analysis::RaceKey;
    use crate::trace::{Frame, ThreadId};

    fn sample_race(n: u64) -> Race {
        Race {
            key: RaceKey {
                store_stack: 1,
                load_stack: 2,
            },
            store_site: Some(Frame::new("insert", "btree.h", 560)),
            load_site: Some(Frame::new("search", "btree.h", 878)),
            store_tid: ThreadId(0),
            load_tid: ThreadId(1),
            example_range: AddrRange::new(0x1000, 8),
            pair_count: n,
            store_atomic: false,
            load_atomic: false,
            store_non_temporal: false,
            store_never_persisted: true,
            effective_lockset_empty: false,
            store_store: false,
        }
    }

    fn sample_output() -> ShardOutput {
        let mut races = HashMap::new();
        races.insert(
            SiteKey::Functions("writer".into(), "reader".into()),
            RaceAcc {
                rank: (3, 1),
                race: sample_race(5),
            },
        );
        races.insert(
            SiteKey::Stacks(7, 9),
            RaceAcc {
                rank: (0, 2),
                race: sample_race(2),
            },
        );
        ShardOutput {
            races,
            candidate_pairs: 42,
            hb_pruned: 10,
            lockset_protected: 5,
            racy_pairs: 7,
            hb_memo_hits: 3,
            lockset_memo_hits: 4,
            groups_examined: 6,
            pairs_budget_dropped: 0,
            truncated: None,
        }
    }

    #[test]
    fn shard_entry_roundtrips_the_engine_output() {
        let out = sample_output();
        let entry = ShardEntry::from_output(11, &out);
        assert_eq!(entry.shard, 11);
        assert_eq!(entry.races.len(), 2);
        // Sorted by rank: the Stacks entry (rank (0,2)) comes first.
        assert_eq!(entry.races[0].site_kind, "stacks");
        let back = entry.to_output();
        assert_eq!(back.candidate_pairs, out.candidate_pairs);
        assert_eq!(back.racy_pairs, out.racy_pairs);
        assert_eq!(back.truncated, out.truncated);
        assert_eq!(back.races.len(), out.races.len());
        for (key, acc) in &out.races {
            let b = back.races.get(key).expect("key survives the roundtrip");
            assert_eq!(b.rank, acc.rank);
            assert_eq!(b.race, acc.race);
        }
    }

    #[test]
    fn checkpoint_file_roundtrips_and_validates() {
        let dir = std::env::temp_dir().join(format!("hwk-ck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let fp = config_fingerprint(&AnalysisConfig::default());
        let session = CheckpointSession::new(path.clone(), fp.clone(), "trace.hwkt".into(), None);
        session.set_declared_events(100);
        session.record_ingest(IngestProgress {
            stream_offset: 512,
            events_decoded: 100,
            events_kept: 99,
            events_analyzed: 99,
        });
        session.record_shard(11, &sample_output());
        session.record_shard(3, &sample_output());
        assert!(session.take_error().is_none());

        let ck = AnalysisCheckpoint::load(&path).expect("written checkpoint loads");
        assert_eq!(ck.version, CHECKPOINT_VERSION);
        assert_eq!(ck.phase, "pairing");
        assert_eq!(ck.ingest.as_ref().unwrap().stream_offset, 512);
        assert_eq!(
            ck.shards.iter().map(|e| e.shard).collect::<Vec<_>>(),
            vec![3, 11],
            "entries stay sorted by shard"
        );
        ck.validate_resume(&fp, 100).expect("same config + source");
        assert!(matches!(
            ck.validate_resume("v1;other", 100),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        assert!(matches!(
            ck.validate_resume(&fp, 101),
            Err(CheckpointError::SourceMismatch { .. })
        ));
        let outputs = ck.shard_outputs();
        assert_eq!(outputs.len(), 2);
        assert!(outputs.contains_key(&3) && outputs.contains_key(&11));
        assert!(
            !path.with_extension("tmp").exists(),
            "atomic write leaves no tmp file"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_and_shape_mismatches_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("hwk-ckv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.ckpt");

        let mut ck = AnalysisCheckpoint {
            version: CHECKPOINT_VERSION + 1,
            ..Default::default()
        };
        write_atomic(&path, &ck).unwrap();
        assert!(matches!(
            AnalysisCheckpoint::load(&path),
            Err(HawkSetError::Checkpoint(CheckpointError::VersionMismatch { found }))
                if found == CHECKPOINT_VERSION + 1
        ));

        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(
            AnalysisCheckpoint::load(&path),
            Err(HawkSetError::Checkpoint(CheckpointError::Malformed(_)))
        ));

        ck.version = CHECKPOINT_VERSION;
        write_atomic(&path, &ck).unwrap();
        AnalysisCheckpoint::load(&path).expect("current version loads");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scripted_flush_failure_is_deferred_and_keeps_the_prior_checkpoint() {
        use crate::ioplane::{FaultScript, ScriptedIo};
        let dir = std::env::temp_dir().join(format!("hwk-ckf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        // First flush commits; the second fails at fsync, the third at
        // write. The committed file must survive both.
        let plane = Arc::new(ScriptedIo::new(
            FaultScript::parse("checkpoint:fsync:1:eio;checkpoint:write:2:enospc").unwrap(),
        ));
        let session = CheckpointSession::new(path.clone(), "fp".into(), "t.hwkt".into(), None)
            .with_plane(plane);
        session.record_ingest(IngestProgress {
            stream_offset: 64,
            ..Default::default()
        });
        assert!(session.take_error().is_none());
        session.record_ingest(IngestProgress {
            stream_offset: 128,
            ..Default::default()
        });
        let err = session.take_error().expect("fsync failure deferred");
        assert_eq!(err.raw_os_error(), Some(5));
        session.record_ingest(IngestProgress {
            stream_offset: 256,
            ..Default::default()
        });
        let err = session.take_error().expect("write failure deferred");
        assert_eq!(err.raw_os_error(), Some(28));
        let ck = AnalysisCheckpoint::load(&path).expect("committed checkpoint intact");
        assert_eq!(ck.ingest.unwrap().stream_offset, 64);
        assert!(!path.with_extension("tmp").exists(), "failed tmp removed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_tracks_report_affecting_knobs_only() {
        let base = config_fingerprint(&AnalysisConfig::default());
        let mut cfg = AnalysisConfig {
            threads: 8,
            checkpoint_every: Some(10),
            ..Default::default()
        };
        cfg.budget.deadline = Some(std::time::Duration::from_secs(1));
        cfg.budget.stage_timeout = Some(std::time::Duration::from_secs(1));
        assert_eq!(
            config_fingerprint(&cfg),
            base,
            "schedule/cadence knobs must not invalidate checkpoints"
        );
        cfg.irh = false;
        assert_ne!(config_fingerprint(&cfg), base);
        cfg.irh = true;
        cfg.budget.memory_budget = Some(1 << 20);
        assert_ne!(config_fingerprint(&cfg), base);
    }
}
