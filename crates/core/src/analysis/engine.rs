//! Sharded parallel pairing engine (stage 3, Algorithm 1).
//!
//! The pairing loop is partitioned by *address*: every store-window group
//! is assigned to one of [`PAIR_SHARDS`] shards keyed by a hash of the
//! window's starting cache line, and the per-shard loops run concurrently
//! on [`std::thread::scope`] workers (claimed from an atomic cursor, see
//! [`crate::parallel`]). Loads are not partitioned — every shard reads the
//! same immutable word → load-group index — so a window group is paired
//! against exactly the candidates the sequential loop would have seen, in
//! the same order.
//!
//! Determinism contract: the report is **bit-identical for every worker
//! count**, including truncation. Three mechanisms carry that contract:
//!
//! 1. the shard count is fixed ([`PAIR_SHARDS`]), independent of the
//!    worker count — threads only decide *who* executes a shard, never
//!    *what* a shard contains;
//! 2. [`AnalysisBudget::max_candidate_pairs`] is pre-split into per-shard
//!    slices proportional to each shard's window-group count (remainder to
//!    the lowest-index non-empty shards), so a budget trips at the same
//!    point in the same shard no matter the schedule;
//! 3. the merge is order-independent: per-`SiteKey` accumulators combine
//!    by witness *rank* (the global group order the sequential loop used),
//!    pair counts add, flags OR, and the final sort re-establishes the
//!    report order.
//!
//! The deadline budget is the one exception — wall-clock truncation cannot
//! be deterministic — and is propagated through a shared stop flag.
//!
//! [`AnalysisBudget::max_candidate_pairs`]: super::AnalysisBudget::max_candidate_pairs

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crate::addr::line_of;
use crate::fxhash::FxHashMap;
use crate::lockset::{LockEntry, Lockset};
use crate::memsim::{AccessSet, CloseReason, LsId, SimStats, StoreWindow, VcId};
use crate::obs::{MetricsRegistry, Stage};
use crate::parallel::{Heartbeat, Watchdog};
use crate::trace::StackTable;
use crate::vclock::ClockOrder;

use super::{
    AnalysisConfig, AnalysisReport, BudgetExceeded, Coverage, PairingStats, PipelineStats,
    QuarantineStats, Race, RaceKey,
};

/// Fixed shard count. Not tunable: the shard a window lands in is part of
/// the (deterministic) budget-splitting semantics, so it must not vary
/// with the machine.
pub(crate) const PAIR_SHARDS: usize = 64;

/// Below this many window groups the fan-out overhead dominates; the
/// automatic thread default then runs the shards on one worker. The
/// output is identical either way.
const PARALLEL_GROUPS: usize = 128;

/// Shard assignment: Fibonacci-hash the window's starting cache line.
fn shard_of(line: u64) -> usize {
    ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % PAIR_SHARDS
}

/// Equivalence-class key of a store window for §4-style grouping:
/// `(start, len, tid, reserved, store-clock, effective-lockset, close-clock,
/// stack, close/atomic/nt bits)`.
type WinKey = (u64, u32, u32, u32, u32, u32, u32, u32, u8);

/// Equivalence-class key of a load: `(start, len, tid, lockset, clock,
/// stack, atomic)`.
type LoadKey = (u64, u32, u32, u32, u32, u32, bool);

/// Report-deduplication key: the pair of *sites* (functions containing the
/// store and the load), falling back to exact-backtrace identity when site
/// information is missing.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) enum SiteKey {
    Functions(String, String),
    Stacks(u32, u32),
}

/// A race plus the rank of its first witness: `(window-group index,
/// load-group index)` in the global order the sequential loop examines
/// pairs. The merge keeps the minimum — i.e. exactly the witness the
/// sequential loop's `or_insert_with` would have kept.
#[derive(Clone)]
pub(crate) struct RaceAcc {
    pub(crate) rank: (u32, u32),
    pub(crate) race: Race,
}

impl RaceAcc {
    /// Combines two shards' accumulators for the same site pair: witness
    /// fields from the lower rank, pair counts added, sticky flags ORed.
    fn absorb(&mut self, other: RaceAcc) {
        let (keep, add) = if other.rank < self.rank {
            let prev = std::mem::replace(self, other);
            (self, prev)
        } else {
            (&mut *self, other)
        };
        keep.race.pair_count += add.race.pair_count;
        keep.race.store_never_persisted |= add.race.store_never_persisted;
        keep.race.effective_lockset_empty |= add.race.effective_lockset_empty;
    }
}

/// Everything a shard's pairing loop produces. `Clone` + `pub(crate)`
/// fields so the checkpoint layer can persist finished shards and feed
/// them back through [`PairingControls::resume`].
#[derive(Clone, Default)]
pub(crate) struct ShardOutput {
    pub(crate) races: HashMap<SiteKey, RaceAcc>,
    pub(crate) candidate_pairs: u64,
    pub(crate) hb_pruned: u64,
    pub(crate) lockset_protected: u64,
    pub(crate) racy_pairs: u64,
    pub(crate) hb_memo_hits: u64,
    pub(crate) lockset_memo_hits: u64,
    pub(crate) groups_examined: u64,
    /// Candidate pairs in the groups a tripped pair budget left
    /// unexamined — enumerated (cheap: no HB/lockset classification) so
    /// the metrics' candidate-pair conservation law stays exact under
    /// truncation. Zero unless `truncated == Some(CandidatePairs)`.
    pub(crate) pairs_budget_dropped: u64,
    pub(crate) truncated: Option<BudgetExceeded>,
}

impl ShardOutput {
    /// True when this output is a pure function of the input (no wall-clock
    /// or cancellation dependence) and may be cached across runs. Deadline,
    /// watchdog and interrupt stops are schedule-dependent and never cached.
    pub(crate) fn cacheable(&self) -> bool {
        matches!(self.truncated, None | Some(BudgetExceeded::CandidatePairs))
    }
}

/// The checkpoint layer's per-shard write hook (worker-thread context).
pub(crate) type ShardHook<'a> = &'a (dyn Fn(usize, &ShardOutput) + Sync);

/// Optional hooks into [`run_pairing_controlled`] used by checkpoint/resume.
#[derive(Default)]
pub(crate) struct PairingControls<'a> {
    /// Finished shard outputs from a previous (killed) run, keyed by shard
    /// index. A present shard is not re-executed: its cached output is
    /// merged as-is (its per-shard metrics contribution included), which
    /// preserves bit-identical reports because only
    /// [`ShardOutput::cacheable`] outputs are ever stored.
    pub resume: Option<&'a HashMap<usize, ShardOutput>>,
    /// Called (from worker threads) with every freshly computed cacheable
    /// shard output — the checkpoint layer's write hook.
    pub on_shard: Option<ShardHook<'a>>,
}

/// One load group's pairing-relevant fields, flattened into a contiguous
/// array indexed by group id. The inner loop visits load groups by the
/// (sorted) candidate list; reading a 48-byte row here instead of chasing
/// `load_groups[gi] → loads[li]` through two scattered vecs keeps the
/// per-candidate work inside one or two cache lines.
#[derive(Clone, Copy)]
struct LoadPre {
    start: u64,
    end: u64,
    tid: u32,
    /// Interned clock id (raw).
    vc: u32,
    /// Normalized lockset id.
    norm_ls: u32,
    stack: u32,
    count: u64,
}

/// Per-shard race accumulator keyed by `(store_stack, load_stack)`: the
/// hot loop only bumps integers here; resolving stacks to sites and
/// building [`Race`] witnesses happens once per distinct stack pair when
/// the shard folds into [`ShardOutput::races`].
struct StackPairAcc {
    /// `(window-group, load-group)` of the first witness, in loop order.
    rank: (u32, u32),
    /// Window/load indices of that first witness.
    win_i: u32,
    load_i: u32,
    pair_count: u64,
    never_persisted: bool,
    ls_empty: bool,
}

/// Read-only context shared by every shard worker.
struct PairingCtx<'a> {
    stacks: &'a StackTable,
    access: &'a AccessSet,
    cfg: &'a AnalysisConfig,
    /// Raw lockset id → normalized (timestamp-stripped) id.
    norm_of_raw: &'a [u32],
    /// Normalized id → lockset value.
    norm_sets: &'a [Lockset],
    /// (representative load index, population) per load group.
    load_groups: &'a [(u32, u64)],
    /// Flattened hot fields per load group (same indexing as
    /// `load_groups`).
    load_pre: &'a [LoadPre],
    /// (representative window index, population) per window group.
    window_groups: &'a [(u32, u64)],
    /// 8-byte word → load-group indices touching it. Probe-only, never
    /// iterated: safe for the fast deterministic hasher.
    by_word: &'a FxHashMap<u64, Vec<u32>>,
    deadline: Option<std::time::Instant>,
    stop: &'a AtomicBool,
    /// Tripped by the stage watchdog (or pre-set when `stage_timeout` is
    /// zero): unfinished shards stop with [`BudgetExceeded::StageStalled`].
    stalled: &'a AtomicBool,
    /// Cooperative interrupt (SIGINT/SIGTERM): unfinished shards stop with
    /// [`BudgetExceeded::Interrupted`].
    interrupt: Option<&'a AtomicBool>,
    obs: &'a MetricsRegistry,
}

impl PairingCtx<'_> {
    fn norm(&self, raw: LsId) -> u32 {
        self.norm_of_raw[raw.id() as usize]
    }

    /// Fills `candidates` with the deduplicated load-group indices sharing
    /// a word with `win` — the same set, in the same order, for the main
    /// loop and the budget-dropped tail enumeration.
    fn collect_candidates(&self, win: &StoreWindow, candidates: &mut Vec<u32>) {
        candidates.clear();
        for w in win.range.words() {
            if let Some(loads) = self.by_word.get(&w) {
                candidates.extend_from_slice(loads);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
    }

    /// The happens-before filter of Algorithm 1 line 17, computed on a memo
    /// miss: the pair is ordered (cannot race) if the load happened-before
    /// the store became visible, or the value was guaranteed persisted (or
    /// gone) before the load could run.
    ///
    /// Both directions are `X ⊑ W` queries where `X` is a thread snapshot
    /// clock — exactly the shape the FastTrack-style [`Epoch`] compression
    /// answers in O(1) (`X ⊑ W ⟺ X.time ≤ W[X.tid]`). The full
    /// vector comparison remains as the fallback for ids without a recorded
    /// snapshot epoch (post-join merges) and for epoch-demoted runs
    /// (ill-formed unvalidated traces, [`AccessSet::epoch_sound`]).
    fn hb_ordered(&self, win: &StoreWindow, ld_vc: VcId) -> bool {
        let load_vc = self.access.vclocks.get(ld_vc);
        let load_before_store = match self.access.epoch_of(ld_vc) {
            Some(e) => {
                let fast = e.le_clock(self.access.vclocks.get(win.store_vc));
                debug_assert_eq!(
                    fast,
                    matches!(
                        load_vc.compare(self.access.vclocks.get(win.store_vc)),
                        ClockOrder::Before | ClockOrder::Equal
                    ),
                    "epoch fast path diverged from full clocks (load ⊑ store)"
                );
                fast
            }
            None => matches!(
                load_vc.compare(self.access.vclocks.get(win.store_vc)),
                ClockOrder::Before | ClockOrder::Equal
            ),
        };
        if load_before_store {
            return true;
        }
        match win.close_vc {
            Some(cvc) => match self.access.epoch_of(cvc) {
                Some(e) => {
                    let fast = e.le_clock(load_vc);
                    debug_assert_eq!(
                        fast,
                        matches!(
                            self.access.vclocks.get(cvc).compare(load_vc),
                            ClockOrder::Before | ClockOrder::Equal
                        ),
                        "epoch fast path diverged from full clocks (close ⊑ load)"
                    );
                    fast
                }
                None => matches!(
                    self.access.vclocks.get(cvc).compare(load_vc),
                    ClockOrder::Before | ClockOrder::Equal
                ),
            },
            // Never persisted: the window is unbounded.
            None => false,
        }
    }

    /// Counts the candidate pairs of one window group without classifying
    /// them — the cross-thread, byte-overlapping pairs the main loop
    /// *would* have examined. Used to account for the tail a tripped pair
    /// budget skipped.
    fn group_pair_count(&self, win_gi: u32, candidates: &mut Vec<u32>) -> u64 {
        let (wi, wcount) = self.window_groups[win_gi as usize];
        let win = &self.access.windows[wi as usize];
        self.collect_candidates(win, candidates);
        let (win_start, win_end) = (win.range.start, win.range.end());
        let mut pairs = 0;
        for &gi in candidates.iter() {
            let lp = &self.load_pre[gi as usize];
            if lp.tid == win.tid.0 || lp.start >= win_end || win_start >= lp.end {
                continue;
            }
            pairs += wcount * lp.count;
        }
        pairs
    }

    /// The sequential inner loop of Algorithm 1 over one shard's window
    /// groups (`plan`, in global group order), with a per-shard candidate-
    /// pair budget `slice`.
    /// Sliced sleep standing in for a stuck shard in tests: silent (no
    /// heartbeats, so the watchdog can fire) but cooperative — a tripped
    /// stall or interrupt flag cuts it short.
    fn injected_stall(&self, shard: usize) {
        let Some(inj) = self.cfg.stall_injection else {
            return;
        };
        if inj.shard != shard {
            return;
        }
        let t0 = std::time::Instant::now();
        while t0.elapsed() < inj.delay {
            if self.stalled.load(Ordering::Relaxed)
                || self.interrupt.is_some_and(|i| i.load(Ordering::Relaxed))
                || self.stop.load(Ordering::Relaxed)
            {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn run_shard(
        &self,
        shard: usize,
        plan: &[u32],
        slice: Option<u64>,
        hb: &Heartbeat<'_>,
    ) -> ShardOutput {
        let mut out = ShardOutput::default();
        self.injected_stall(shard);
        // Memo tables are per-shard: shards share no mutable state, and a
        // shard's windows cluster on the same lines (hence the same clock
        // and lockset ids), which is where memoization pays.
        let mut hb_memo: FxHashMap<(u32, u32, u32), bool> = FxHashMap::default();
        let mut protected_memo: FxHashMap<(u32, u32), bool> = FxHashMap::default();
        let mut race_accs: FxHashMap<u64, StackPairAcc> = FxHashMap::default();
        let mut candidates: Vec<u32> = Vec::new();
        // First plan index NOT examined (budget/deadline stop point).
        let mut stopped_at = plan.len();

        for (idx, &win_gi) in plan.iter().enumerate() {
            hb.beat();
            if let Some(max) = slice {
                if out.candidate_pairs >= max {
                    out.truncated = Some(BudgetExceeded::CandidatePairs);
                    stopped_at = idx;
                    break;
                }
            }
            if self.stalled.load(Ordering::Relaxed) {
                out.truncated = Some(BudgetExceeded::StageStalled);
                stopped_at = idx;
                break;
            }
            if self.interrupt.is_some_and(|i| i.load(Ordering::Relaxed)) {
                out.truncated = Some(BudgetExceeded::Interrupted);
                stopped_at = idx;
                break;
            }
            if let Some(at) = self.deadline {
                if self.stop.load(Ordering::Relaxed) || std::time::Instant::now() >= at {
                    self.stop.store(true, Ordering::Relaxed);
                    out.truncated = Some(BudgetExceeded::Deadline);
                    stopped_at = idx;
                    break;
                }
            }
            out.groups_examined += 1;
            let (wi, wcount) = self.window_groups[win_gi as usize];
            let win = &self.access.windows[wi as usize];

            self.collect_candidates(win, &mut candidates);

            // Everything the inner loop needs from the window, hoisted out
            // of the per-candidate path.
            let win_tid = win.tid.0;
            let (win_start, win_end) = (win.range.start, win.range.end());
            let close_raw = win.close_vc.map(|c| c.id()).unwrap_or(u32::MAX);
            let store_raw = win.store_vc.id();
            let win_norm = self.norm(win.effective_ls);
            let win_never_persisted = win.close == CloseReason::NeverPersisted;
            let win_ls_empty = self.access.locksets.get(win.effective_ls).is_empty();

            for &gi in &candidates {
                let lp = &self.load_pre[gi as usize];
                // Algorithm 1 line 16: same-thread pairs cannot race.
                if lp.tid == win_tid {
                    continue;
                }
                // Line 15 (refined): byte-level overlap, not just word
                // sharing.
                if lp.start >= win_end || win_start >= lp.end {
                    continue;
                }
                let pairs = wcount * lp.count;
                out.candidate_pairs += pairs;

                // Line 17: inter-thread happens-before filter over the
                // window [store_vc, close_vc]. The pair is impossible if
                // the load happened-before the store became visible, or
                // the value was guaranteed persisted (or gone) before the
                // load could run. (Disabled by the Figure 3 ablation.)
                let key = (store_raw, close_raw, lp.vc);
                let ordered = self.cfg.use_hb
                    && match hb_memo.get(&key) {
                        Some(&v) => {
                            out.hb_memo_hits += 1;
                            v
                        }
                        None => {
                            let v = self.hb_ordered(win, VcId::from_raw(lp.vc));
                            hb_memo.insert(key, v);
                            v
                        }
                    };
                if ordered {
                    out.hb_pruned += pairs;
                    continue;
                }

                // Line 18: effective lockset ∩ load lockset (normalized
                // ids).
                let lkey = (win_norm, lp.norm_ls);
                let protected = match protected_memo.get(&lkey) {
                    Some(&v) => {
                        out.lockset_memo_hits += 1;
                        v
                    }
                    None => {
                        let v = self.norm_sets[lkey.0 as usize]
                            .protects_against(&self.norm_sets[lkey.1 as usize]);
                        protected_memo.insert(lkey, v);
                        v
                    }
                };
                if protected {
                    out.lockset_protected += pairs;
                    continue;
                }

                // Line 19: racy — bump the stack-pair accumulator; the
                // site-level dedup and witness construction run once per
                // distinct stack pair in the shard fold below.
                out.racy_pairs += pairs;
                let skey = (u64::from(win.stack) << 32) | u64::from(lp.stack);
                let acc = race_accs.entry(skey).or_insert_with(|| StackPairAcc {
                    rank: (win_gi, gi),
                    win_i: wi,
                    load_i: self.load_groups[gi as usize].0,
                    pair_count: 0,
                    never_persisted: false,
                    ls_empty: false,
                });
                acc.pair_count += pairs;
                acc.never_persisted |= win_never_persisted;
                acc.ls_empty |= win_ls_empty;
            }
        }

        // Fold stack-pair accumulators into the site-keyed race map, in
        // ascending first-witness rank — the same order the old per-pair
        // `or_insert_with` encountered them, so witness selection (lowest
        // rank wins via `absorb`) is bit-identical.
        let mut accs: Vec<(u64, StackPairAcc)> = race_accs.into_iter().collect();
        accs.sort_unstable_by_key(|(_, a)| a.rank);
        for (skey, a) in accs {
            let win = &self.access.windows[a.win_i as usize];
            let ld = &self.access.loads[a.load_i as usize];
            let (store_stack, load_stack) = ((skey >> 32) as u32, skey as u32);
            let store_site = self.stacks.site(store_stack);
            let load_site = self.stacks.site(load_stack);
            let key = match (store_site, load_site) {
                (Some(s), Some(l)) => SiteKey::Functions(s.function.clone(), l.function.clone()),
                _ => SiteKey::Stacks(store_stack, load_stack),
            };
            let acc = RaceAcc {
                rank: a.rank,
                race: Race {
                    key: RaceKey {
                        store_stack,
                        load_stack,
                    },
                    store_site: store_site.cloned(),
                    load_site: load_site.cloned(),
                    store_tid: win.tid,
                    load_tid: ld.tid,
                    example_range: win.range.intersection(&ld.range).unwrap_or(win.range),
                    pair_count: a.pair_count,
                    store_atomic: win.atomic,
                    load_atomic: ld.atomic,
                    store_non_temporal: win.non_temporal,
                    store_never_persisted: a.never_persisted,
                    effective_lockset_empty: a.ls_empty,
                    store_store: false,
                },
            };
            match out.races.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().absorb(acc),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(acc);
                }
            }
        }
        // Pair-budget stops leave a deterministic tail of unexamined
        // groups; enumerate (but don't classify) their pairs so the
        // candidate-pair conservation law stays exact. Deadline stops skip
        // this: the stop point is wall-clock-dependent, and racing to
        // enumerate a tail after the deadline would defeat the budget.
        if out.truncated == Some(BudgetExceeded::CandidatePairs) {
            for &win_gi in &plan[stopped_at..] {
                out.pairs_budget_dropped += self.group_pair_count(win_gi, &mut candidates);
            }
        }
        self.obs.pairing.shard_candidate_pairs[shard]
            .add(out.candidate_pairs + out.pairs_budget_dropped);
        out
    }
}

/// Splits `max_candidate_pairs` into per-shard slices proportional to each
/// shard's window-group count, remainder to the lowest-index non-empty
/// shards. `None` (no budget) stays `None` everywhere.
fn budget_slices(max: Option<u64>, plan: &[Vec<u32>]) -> Vec<Option<u64>> {
    let Some(max) = max else {
        return vec![None; plan.len()];
    };
    let total: u64 = plan.iter().map(|p| p.len() as u64).sum();
    if total == 0 {
        return vec![Some(max); plan.len()];
    }
    let mut slices: Vec<u64> = plan
        .iter()
        .map(|p| ((max as u128 * p.len() as u128) / total as u128) as u64)
        .collect();
    let mut remainder = max - slices.iter().sum::<u64>();
    for (i, p) in plan.iter().enumerate() {
        if remainder == 0 {
            break;
        }
        if !p.is_empty() {
            slices[i] += 1;
            remainder -= 1;
        }
    }
    slices.into_iter().map(Some).collect()
}

/// Stage 3 entry point: the sharded, deterministic pairing of store
/// windows with loads, merged back into a single [`AnalysisReport`].
pub(crate) fn run_pairing(
    stacks: &StackTable,
    access: &AccessSet,
    cfg: &AnalysisConfig,
    obs: &MetricsRegistry,
) -> AnalysisReport {
    run_pairing_controlled(stacks, access, cfg, obs, PairingControls::default())
}

/// [`run_pairing`] with checkpoint/resume hooks (see [`PairingControls`]).
pub(crate) fn run_pairing_controlled(
    stacks: &StackTable,
    access: &AccessSet,
    cfg: &AnalysisConfig,
    obs: &MetricsRegistry,
    controls: PairingControls<'_>,
) -> AnalysisReport {
    let _stage = obs.stage(Stage::Pairing);
    let mut stats = PairingStats::default();
    let mut coverage = Coverage::default();

    // The inter-thread lockset intersection ignores acquisition timestamps
    // (§3.1.2: they are "only meaningful in the thread-local context"), so
    // locksets are first *normalized* — timestamps stripped and the result
    // re-interned. Without this, every critical section carries a distinct
    // lockset id and the grouping below cannot collapse locked accesses.
    let mut norm_of_raw: Vec<u32> = Vec::with_capacity(access.locksets.len());
    let mut norm_sets: Vec<Lockset> = Vec::new();
    {
        let mut index: FxHashMap<Lockset, u32> = FxHashMap::default();
        for (_, ls) in access.locksets.iter() {
            let stripped = Lockset::from_entries(
                ls.iter()
                    .map(|e| LockEntry {
                        lock: e.lock,
                        mode: e.mode,
                        acq_ts: 0,
                    })
                    .collect(),
            );
            let id = *index.entry(stripped.clone()).or_insert_with(|| {
                norm_sets.push(stripped);
                (norm_sets.len() - 1) as u32
            });
            norm_of_raw.push(id);
        }
    }

    // §4: "we group PM accesses by thread id and address" — accesses with
    // identical (range, thread, lockset, vector clock, backtrace) are
    // interchangeable for Algorithm 1 (every check reads only those
    // fields), so each equivalence class is paired once and its population
    // multiplies the pair counts. On zipfian workloads this collapses the
    // hot keys' millions of accesses into a handful of groups.
    let mut load_groups: Vec<(u32, u64)> = Vec::new(); // (repr index, count)
    {
        let mut index: FxHashMap<LoadKey, u32> = FxHashMap::default();
        for (i, ld) in access.loads.iter().enumerate() {
            if !ld.live() || (!cfg.include_atomics && ld.atomic) {
                continue;
            }
            stats.live_loads += 1;
            let key = (
                ld.range.start,
                ld.range.len,
                ld.tid.0,
                norm_of_raw[ld.ls.id() as usize],
                ld.vc.id(),
                ld.stack,
                ld.atomic,
            );
            match index.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    load_groups[*e.get() as usize].1 += 1;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(load_groups.len() as u32);
                    load_groups.push((i as u32, 1));
                }
            }
        }
    }
    let mut window_groups: Vec<(u32, u64)> = Vec::new();
    {
        let mut index: FxHashMap<WinKey, u32> = FxHashMap::default();
        for (i, w) in access.windows.iter().enumerate() {
            if !w.live() || (!cfg.include_atomics && w.atomic) {
                continue;
            }
            stats.live_windows += 1;
            let close_bits = match w.close {
                CloseReason::Persisted => 0u8,
                CloseReason::Overwritten => 1,
                CloseReason::NeverPersisted => 2,
            } | (u8::from(w.atomic) << 2)
                | (u8::from(w.non_temporal) << 3);
            // The raw store lockset is irrelevant to pairing (only the
            // effective lockset is consulted), so it is not in the key.
            let key = (
                w.range.start,
                w.range.len,
                w.tid.0,
                0,
                w.store_vc.id(),
                norm_of_raw[w.effective_ls.id() as usize],
                w.close_vc.map(|c| c.id()).unwrap_or(u32::MAX),
                w.stack,
                close_bits,
            );
            match index.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    window_groups[*e.get() as usize].1 += 1;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(window_groups.len() as u32);
                    window_groups.push((i as u32, 1));
                }
            }
        }
    }

    // Flatten each load group's hot fields (see [`LoadPre`]).
    let load_pre: Vec<LoadPre> = load_groups
        .iter()
        .map(|&(li, count)| {
            let ld = &access.loads[li as usize];
            LoadPre {
                start: ld.range.start,
                end: ld.range.end(),
                tid: ld.tid.0,
                vc: ld.vc.id(),
                norm_ls: norm_of_raw[ld.ls.id() as usize],
                stack: ld.stack,
                count,
            }
        })
        .collect();

    // Index load groups by 8-byte word. Shared read-only by every shard:
    // loads are replicated logically, not physically.
    let mut by_word: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for (gi, &(li, _)) in load_groups.iter().enumerate() {
        for w in access.loads[li as usize].range.words() {
            by_word.entry(w).or_default().push(gi as u32);
        }
    }

    // Under eADR (§2.1) every store is durable the instant it is visible:
    // the visible-but-not-durable window Definition 1 requires has zero
    // length, so no persistency-induced race can exist and pairing is
    // skipped wholesale.
    let window_groups_live: &[(u32, u64)] = if cfg.eadr { &[] } else { &window_groups };
    coverage.window_groups_total = window_groups_live.len() as u64;

    // Shard plan: each window group has exactly one home shard, chosen by
    // its starting cache line, listed in global group order.
    let mut plan: Vec<Vec<u32>> = Vec::new();
    plan.resize_with(PAIR_SHARDS, Vec::new);
    for (gi, &(wi, _)) in window_groups_live.iter().enumerate() {
        let line = line_of(access.windows[wi as usize].range.start);
        plan[shard_of(line)].push(gi as u32);
    }
    // Shard occupancy (window groups per shard) — the load-imbalance
    // picture. Observed for every shard, empty ones included.
    for p in &plan {
        obs.pairing.shard_occupancy.observe(p.len() as u64);
    }
    let slices = budget_slices(cfg.budget.max_candidate_pairs, &plan);
    let deadline = cfg.budget.deadline.map(|d| std::time::Instant::now() + d);
    let stop = AtomicBool::new(false);
    // A zero stage timeout is the deterministic degenerate case (pinned by
    // the golden corpus): every shard observes the stall flag immediately,
    // no supervisor scheduling involved.
    let stalled = AtomicBool::new(cfg.budget.stage_timeout == Some(Duration::ZERO));
    let ctx = PairingCtx {
        stacks,
        access,
        cfg,
        norm_of_raw: &norm_of_raw,
        norm_sets: &norm_sets,
        load_groups: &load_groups,
        load_pre: &load_pre,
        window_groups: &window_groups,
        by_word: &by_word,
        deadline,
        stop: &stop,
        stalled: &stalled,
        interrupt: cfg.interrupt.as_deref(),
        obs,
    };
    // An explicit thread request is honored as-is; under the automatic
    // default, small inputs stay on one worker because the fan-out
    // overhead dominates. The output is identical either way.
    let workers = if cfg.threads == 0 && window_groups_live.len() < PARALLEL_GROUPS {
        1
    } else {
        crate::parallel::effective_threads(cfg.threads)
    };
    let trip_stall = || stalled.store(true, Ordering::SeqCst);
    let watchdog = cfg
        .budget
        .stage_timeout
        .filter(|t| !t.is_zero())
        .map(|timeout| Watchdog {
            timeout,
            on_stall: &trip_stall,
        });
    let (outputs, busy, _) =
        crate::parallel::map_indexed_watched(PAIR_SHARDS, workers, watchdog, |s, hb| {
            if let Some(cached) = controls.resume.and_then(|r| r.get(&s)) {
                // Replayed shard: merge the previous run's output verbatim,
                // including its contribution to the shard-sum law.
                obs.pairing.shard_candidate_pairs[s]
                    .add(cached.candidate_pairs + cached.pairs_budget_dropped);
                return cached.clone();
            }
            let out = ctx.run_shard(s, &plan[s], slices[s], hb);
            if let Some(on_shard) = controls.on_shard {
                if out.cacheable() {
                    on_shard(s, &out);
                }
            }
            out
        });
    obs.record_worker_busy(&busy);

    // Deterministic merge, in shard-index order. Every combining operation
    // is commutative and associative (sum, OR, min-rank), so the result is
    // independent of which worker produced which shard when.
    let mut merged: HashMap<SiteKey, RaceAcc> = HashMap::new();
    let mut reason: Option<BudgetExceeded> = None;
    let mut budget_dropped = 0u64;
    for out in outputs {
        stats.candidate_pairs += out.candidate_pairs;
        stats.hb_pruned += out.hb_pruned;
        stats.lockset_protected += out.lockset_protected;
        stats.racy_pairs += out.racy_pairs;
        stats.hb_memo_hits += out.hb_memo_hits;
        stats.lockset_memo_hits += out.lockset_memo_hits;
        budget_dropped += out.pairs_budget_dropped;
        coverage.window_groups_examined += out.groups_examined;
        if reason.is_none() {
            reason = out.truncated;
        }
        for (key, acc) in out.races {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().absorb(acc),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(acc);
                }
            }
        }
    }
    coverage.truncated = reason.is_some();
    coverage.reason = reason;

    // Optional store/store pass — the §3.1.1 ablation. HawkSet's default
    // skips it: two stores lack the load-side-effect dependency that makes
    // a persistency-induced race harmful, and pairing them explodes the
    // report count on lock-free designs. Kept sequential: it is off by
    // default and quadratic grouping, not wall-clock, is its cost.
    if cfg.check_store_store && !cfg.eadr && !coverage.truncated {
        let mut candidates: Vec<u32> = Vec::new();
        let mut by_word_stores: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (gi, &(wi, _)) in window_groups.iter().enumerate() {
            for word in access.windows[wi as usize].range.words() {
                by_word_stores.entry(word).or_default().push(gi as u32);
            }
        }
        for (g1, &(i1, c1)) in window_groups.iter().enumerate() {
            let w1 = &access.windows[i1 as usize];
            candidates.clear();
            for word in w1.range.words() {
                if let Some(v) = by_word_stores.get(&word) {
                    candidates.extend_from_slice(v);
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
            for &g2 in &candidates {
                if (g2 as usize) <= g1 {
                    continue; // each unordered pair once
                }
                let (i2, c2) = window_groups[g2 as usize];
                let w2 = &access.windows[i2 as usize];
                if w2.tid == w1.tid || !w2.range.overlaps(&w1.range) {
                    continue;
                }
                if cfg.use_hb {
                    // Windows must overlap in the happens-before order.
                    let w1_closed_before_w2 = match w1.close_vc {
                        Some(c) => access
                            .vclocks
                            .get(c)
                            .happens_before(access.vclocks.get(w2.store_vc)),
                        None => false,
                    };
                    let w2_closed_before_w1 = match w2.close_vc {
                        Some(c) => access
                            .vclocks
                            .get(c)
                            .happens_before(access.vclocks.get(w1.store_vc)),
                        None => false,
                    };
                    if w1_closed_before_w2 || w2_closed_before_w1 {
                        continue;
                    }
                }
                let eff1 = &norm_sets[norm_of_raw[w1.effective_ls.id() as usize] as usize];
                let eff2 = &norm_sets[norm_of_raw[w2.effective_ls.id() as usize] as usize];
                if eff1.protects_against(eff2) {
                    continue;
                }
                let s1 = stacks.site(w1.stack);
                let s2 = stacks.site(w2.stack);
                let key = match (s1, s2) {
                    (Some(a), Some(b)) => {
                        SiteKey::Functions(format!("ss:{}", a.function), b.function.clone())
                    }
                    _ => SiteKey::Stacks(w1.stack ^ 0x8000_0000, w2.stack),
                };
                let acc = merged.entry(key).or_insert_with(|| RaceAcc {
                    rank: (u32::MAX, u32::MAX),
                    race: Race {
                        key: RaceKey {
                            store_stack: w1.stack,
                            load_stack: w2.stack,
                        },
                        store_site: s1.cloned(),
                        load_site: s2.cloned(),
                        store_tid: w1.tid,
                        load_tid: w2.tid,
                        example_range: w1.range.intersection(&w2.range).unwrap_or(w1.range),
                        pair_count: 0,
                        store_atomic: w1.atomic,
                        load_atomic: w2.atomic,
                        store_non_temporal: w1.non_temporal,
                        store_never_persisted: false,
                        effective_lockset_empty: false,
                        store_store: true,
                    },
                });
                acc.race.pair_count += c1 * c2;
            }
        }
    }

    let mut races: Vec<Race> = merged.into_values().map(|acc| acc.race).collect();
    races.sort_by(|a, b| {
        b.pair_count
            .cmp(&a.pair_count)
            .then_with(|| a.key.cmp(&b.key))
    });
    stats.distinct_races = races.len() as u64;

    // Mirror the pairing stats into the metrics registry. The metrics'
    // `candidate_pairs` includes the budget-dropped tail (so the
    // conservation law is exact); the schema-v1 `stats.pairing` field
    // keeps its narrower examined-pairs meaning.
    let p = &obs.pairing;
    p.live_windows.set(stats.live_windows);
    p.live_loads.set(stats.live_loads);
    p.candidate_pairs
        .set(stats.candidate_pairs + budget_dropped);
    p.pairs_reported.set(stats.racy_pairs);
    p.pairs_pruned_hb.set(stats.hb_pruned);
    p.pairs_pruned_lockset.set(stats.lockset_protected);
    p.pairs_budget_dropped.set(budget_dropped);
    p.distinct_races.set(stats.distinct_races);
    p.hb_memo_hits.set(stats.hb_memo_hits);
    p.lockset_memo_hits.set(stats.lockset_memo_hits);

    AnalysisReport {
        races,
        stats: PipelineStats {
            sim: SimStats::default(),
            pairing: stats,
            quarantine: QuarantineStats::default(),
            duration: Default::default(),
        },
        coverage,
        metrics: None,
        fixes: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for line in [0u64, 1, 63, 64, 0x40, 0x80, u64::MAX / 64] {
            let s = shard_of(line);
            assert!(s < PAIR_SHARDS);
            assert_eq!(s, shard_of(line), "assignment must be pure");
        }
    }

    #[test]
    fn budget_slices_sum_to_max_and_respect_emptiness() {
        let mut plan: Vec<Vec<u32>> = vec![Vec::new(); 8];
        plan[1] = vec![0, 1, 2];
        plan[4] = vec![3];
        plan[6] = vec![4, 5];
        let slices = budget_slices(Some(10), &plan);
        let total: u64 = slices.iter().map(|s| s.unwrap()).sum();
        assert_eq!(total, 10, "slices partition the budget exactly");
        assert!(slices[1].unwrap() >= 5); // proportionality: 3/6 of 10
        assert_eq!(slices[0], Some(0), "empty shards get nothing");
        let unbounded = budget_slices(None, &plan);
        assert!(unbounded.iter().all(|s| s.is_none()));
    }
}
