//! Delay injection.
//!
//! PMRace combines fuzzing with "specialized delay injection techniques to
//! improve the chance of observing interleavings that constitute a
//! persistency-induced race" (§6.3). The injector hooks every PM operation
//! of the instrumented runtime and sleeps with a configurable probability,
//! stretching the visible-but-not-durable windows so that another thread's
//! load can land inside them.
//!
//! Decisions are deterministic in `(seed, thread, op-index, address)` so a
//! campaign round is reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hawkset_core::trace::ThreadId;
use pm_runtime::{Hook, HookPoint};

/// Deterministic, probability-driven PM-operation delayer.
pub struct DelayInjector {
    seed: u64,
    /// Delay probability in 1/1024 units.
    prob_1024: u64,
    max_delay_us: u64,
    counter: AtomicU64,
    injected: AtomicU64,
}

impl DelayInjector {
    /// Creates an injector firing with probability `prob` (clamped to
    /// [0, 1]) and uniform delays up to `max_delay_us` microseconds.
    /// `max_delay_us == 0` disables injection entirely: the hook becomes a
    /// no-op and [`injected`](Self::injected) stays 0.
    pub fn new(seed: u64, prob: f64, max_delay_us: u64) -> Arc<Self> {
        let prob_1024 = (prob.clamp(0.0, 1.0) * 1024.0) as u64;
        Arc::new(Self {
            seed,
            prob_1024,
            max_delay_us,
            counter: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        })
    }

    /// Number of delays injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Wraps the injector as a runtime hook.
    pub fn hook(self: &Arc<Self>) -> Hook {
        let me = Arc::clone(self);
        Arc::new(move |tid: ThreadId, point: HookPoint| {
            if me.max_delay_us == 0 {
                return; // injection disabled
            }
            let n = me.counter.fetch_add(1, Ordering::Relaxed);
            let addr = match point {
                HookPoint::BeforeStore(a)
                | HookPoint::BeforeLoad(a)
                | HookPoint::BeforeFlush(a) => a,
                HookPoint::BeforeFence => 0,
            };
            let h = pm_workloads::zipfian::fnv1a(
                me.seed ^ n.rotate_left(17) ^ u64::from(tid.0).rotate_left(33) ^ addr,
            );
            if h % 1024 < me.prob_1024 {
                // Bias delays toward the persistency path: stretching the
                // store→fence window is what exposes the races.
                let bias = match point {
                    HookPoint::BeforeFence | HookPoint::BeforeFlush(_) => 4,
                    HookPoint::BeforeStore(_) => 2,
                    HookPoint::BeforeLoad(_) => 1,
                };
                let us = (h >> 10) % (me.max_delay_us * bias) + 1;
                me.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(us));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_fires() {
        let inj = DelayInjector::new(1, 0.0, 100);
        let hook = inj.hook();
        for i in 0..1000 {
            hook(ThreadId(0), HookPoint::BeforeStore(i));
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn full_probability_always_fires() {
        let inj = DelayInjector::new(1, 1.0, 1);
        let hook = inj.hook();
        for i in 0..50 {
            hook(ThreadId(0), HookPoint::BeforeLoad(i));
        }
        assert_eq!(inj.injected(), 50);
    }

    #[test]
    fn moderate_probability_fires_sometimes() {
        let inj = DelayInjector::new(7, 0.25, 1);
        let hook = inj.hook();
        for i in 0..400 {
            hook(ThreadId(1), HookPoint::BeforeFence);
            let _ = i;
        }
        let n = inj.injected();
        assert!(n > 40 && n < 180, "expected ≈100 of 400, got {n}");
    }

    /// `max_delay_us: 0` must mean "disabled", not a silent 1 µs floor.
    #[test]
    fn zero_max_delay_disables_injection() {
        let inj = DelayInjector::new(1, 1.0, 0);
        let hook = inj.hook();
        for i in 0..200 {
            hook(ThreadId(0), HookPoint::BeforeStore(i));
        }
        assert_eq!(inj.injected(), 0, "max_delay_us = 0 must never inject");
    }

    /// Same (seed, prob, max_delay_us) ⇒ identical injection decisions on
    /// identical op streams; a different seed places delays differently.
    #[test]
    fn injection_is_deterministic_in_seed() {
        let run = |seed: u64| {
            let inj = DelayInjector::new(seed, 0.25, 1);
            let hook = inj.hook();
            for i in 0..300 {
                hook(ThreadId(0), HookPoint::BeforeStore(i));
                hook(ThreadId(1), HookPoint::BeforeFlush(i));
                hook(ThreadId(1), HookPoint::BeforeFence);
            }
            inj.injected()
        };
        assert_eq!(run(42), run(42), "same seed must inject identically");
        assert_ne!(
            run(42),
            run(1042),
            "different seeds should diverge on 900 ops"
        );
    }
}
