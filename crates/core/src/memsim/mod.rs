//! Worst-case persistence simulation (pipeline stage 1, §3.2 Ⓐ–Ⓒ).
//!
//! The simulator replays the trace in observation order, maintaining:
//!
//! * **Memory Simulation** Ⓐ — a worst-case cache that considers a store
//!   persisted *only* after an explicit flush of its cache line followed by
//!   a fence from the flushing thread (arbitrary cache evictions give no
//!   guarantee, so they are ignored);
//! * **Lock Tracking** Ⓑ — each thread's current lockset, with per-entry
//!   acquisition timestamps from a thread-local logical clock;
//! * **Thread Tracking** Ⓒ — per-thread vector clocks with the batching
//!   optimization of §4 (only the first PM operation after a thread
//!   create/join boundary bumps the local counter);
//! * the Initialization Removal Heuristic, applied online alongside the
//!   instrumentation exactly as in the original implementation (§4).
//!
//! The output is an [`AccessSet`]: closed [`StoreWindow`]s, [`LoadAccess`]es
//! and the interning tables shared by both — the input of the lockset
//! analysis stage.

pub mod patch;
pub mod window;

use std::collections::BTreeSet;

use crate::addr::{line_of, AddrRange, LineId};
use crate::fxhash::FxHashMap;
use crate::intern::Interner;
use crate::irh::PublicationTracker;
use crate::lockset::{LockEntry, Lockset};
use crate::trace::{EventKind, LockId, LockMode, StackId, ThreadId, Trace, TraceView};
use crate::vclock::{ClockOrder, Epoch, VectorClock};

pub use window::{CloseReason, LoadAccess, LsId, StoreWindow, VcId};

/// Counters describing one simulation run, reported alongside the analysis
/// (§5.3 cost study and the sharing ratios of §4).
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SimStats {
    /// Total events replayed.
    pub events: u64,
    /// PM stores seen.
    pub stores: u64,
    /// PM loads seen.
    pub loads: u64,
    /// Flush instructions seen.
    pub flushes: u64,
    /// Fence instructions seen.
    pub fences: u64,
    /// Store windows created (≥ stores: cross-line stores split).
    pub windows_created: u64,
    /// Windows closed by explicit persistence.
    pub windows_persisted: u64,
    /// Windows closed by overwrite.
    pub windows_overwritten: u64,
    /// Windows still unpersisted at the end of the execution.
    pub windows_unpersisted: u64,
    /// Windows discarded by the Initialization Removal Heuristic.
    pub irh_discarded_windows: u64,
    /// Loads dropped by the Initialization Removal Heuristic.
    pub irh_dropped_loads: u64,
    /// Distinct locksets interned.
    pub distinct_locksets: u64,
    /// Distinct vector clocks interned.
    pub distinct_vclocks: u64,
    /// Lockset/vector-clock intern requests (sharing-ratio numerator).
    pub intern_requests: u64,
    /// Words tracked by the publication tracker.
    pub tracked_words: u64,
    /// Accesses ignored because they fell outside every registered PM
    /// region (only possible when the trace registers regions).
    pub non_pm_accesses: u64,
    /// Closed windows evicted to stay under the memory budget. The window
    /// partition law becomes `windows_persisted + windows_overwritten +
    /// windows_unpersisted == |windows| + windows_evicted`.
    #[serde(default)]
    pub windows_evicted: u64,
    /// Loads evicted to stay under the memory budget.
    #[serde(default)]
    pub loads_evicted: u64,
    /// True when the live-state memory budget was exceeded at least once;
    /// the report's coverage must then carry `reason = memory_budget`.
    #[serde(default)]
    pub memory_budget_hit: bool,
}

impl SimStats {
    /// The stage-1 section of a [`MetricsSnapshot`]: the cache-simulation
    /// counters without the IRH ones, which get their own section.
    ///
    /// [`MetricsSnapshot`]: crate::obs::MetricsSnapshot
    pub fn memsim_metrics(&self) -> crate::obs::MemsimMetrics {
        crate::obs::MemsimMetrics {
            events: self.events,
            stores: self.stores,
            loads: self.loads,
            flushes: self.flushes,
            fences: self.fences,
            windows_created: self.windows_created,
            windows_persisted: self.windows_persisted,
            windows_overwritten: self.windows_overwritten,
            windows_unpersisted: self.windows_unpersisted,
            non_pm_accesses: self.non_pm_accesses,
            distinct_locksets: self.distinct_locksets,
            distinct_vclocks: self.distinct_vclocks,
            intern_requests: self.intern_requests,
            windows_evicted: self.windows_evicted,
            loads_evicted: self.loads_evicted,
        }
    }

    /// The IRH section of a [`MetricsSnapshot`].
    ///
    /// [`MetricsSnapshot`]: crate::obs::MetricsSnapshot
    pub fn irh_metrics(&self) -> crate::obs::IrhMetrics {
        crate::obs::IrhMetrics {
            windows_discarded: self.irh_discarded_windows,
            loads_dropped: self.irh_dropped_loads,
            tracked_words: self.tracked_words,
        }
    }
}

/// Everything stage 1 + 2 hand to the lockset analysis.
#[derive(Debug)]
pub struct AccessSet {
    /// All store windows (including IRH-discarded ones, flagged).
    pub windows: Vec<StoreWindow>,
    /// All loads (including IRH-dropped ones, flagged).
    pub loads: Vec<LoadAccess>,
    /// Interned locksets referenced by windows and loads.
    pub locksets: Interner<Lockset>,
    /// Interned vector clocks referenced by windows and loads.
    pub vclocks: Interner<VectorClock>,
    /// FastTrack-style epochs, indexed by interned clock id. `Some(tid@c)`
    /// records that the clock with that id is thread `tid`'s *first* value
    /// at own-time `c` (a post-tick snapshot), which licenses the O(1)
    /// happens-before test `clock ⊑ W ⟺ c ≤ W[tid]` (see
    /// [`Epoch`]). `None` marks ids first interned at non-snapshot points
    /// (e.g. post-join merges) — queries on those fall back to the full
    /// comparison.
    pub epochs: Vec<Option<Epoch>>,
    /// `false` when the replay observed an event sequence that breaks the
    /// epoch soundness invariants — a `ThreadCreate` re-seating a child
    /// whose clock was not dominated, which makes a thread's clock history
    /// non-monotone. Only reachable through unvalidated input (strict
    /// validation rejects double creates and quarantine drops them); when
    /// unset, every epoch query must use full clocks.
    pub epoch_sound: bool,
    /// Simulation counters.
    pub stats: SimStats,
}

impl AccessSet {
    /// The epoch stand-in for interned clock `vc`, or `None` when the id
    /// has no recorded snapshot epoch or the whole run was demoted.
    #[inline]
    pub fn epoch_of(&self, vc: VcId) -> Option<Epoch> {
        if !self.epoch_sound {
            return None;
        }
        self.epochs.get(vc.id() as usize).copied().flatten()
    }
}

/// Per-thread simulation state.
struct ThreadState {
    lockset: Lockset,
    ls_id: LsId,
    vc: VectorClock,
    vc_id: VcId,
    /// Set after create/join boundaries; the next PM operation ticks the
    /// vector clock (the §4 batching optimization).
    needs_tick: bool,
}

/// An open (still unpersisted, not overwritten) piece of a store, confined
/// to a single cache line.
struct OpenPiece {
    tid: ThreadId,
    store_seq: u64,
    stack: StackId,
    range: AddrRange,
    store_ls: LsId,
    store_vc: VcId,
    atomic: bool,
    non_temporal: bool,
    /// Threads whose next fence persists this piece (they flushed the line
    /// after the store, or issued the store non-temporally).
    pending_fence: Vec<ThreadId>,
}

/// Options controlling the simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Apply the Initialization Removal Heuristic (§3.1.3). Table 4 runs
    /// the pipeline both ways.
    pub irh: bool,
    /// Simulate an eADR platform (§2.1): the persistent domain extends to
    /// the cache, so every store is durable the moment it becomes visible.
    /// Store windows close instantly (`Persisted` at the store's own
    /// clock/lockset) and no persistency-induced race can exist — the
    /// paper's argument for why software must not *assume* eADR is that
    /// this convenient world is not the one most deployments run in.
    pub eadr: bool,
    /// Worker threads for the per-thread lockset precompute (`0` = use
    /// [`std::thread::available_parallelism`]). The simulation output is
    /// bit-identical for every value: parallelism only covers the
    /// embarrassingly-parallel per-thread lock replay, and the main replay
    /// loop consumes (and interns) its results in trace order.
    pub threads: usize,
    /// Approximate ceiling (bytes) on live simulation state: closed
    /// windows, recorded loads, open pieces and the interning tables. When
    /// exceeded the simulator degrades instead of aborting: it evicts
    /// report-inert entries first (IRH casualties), then the coldest
    /// (earliest-closed) windows and oldest loads, counting every eviction
    /// into [`SimStats`] and setting `memory_budget_hit` so the final
    /// report carries `coverage.reason = memory_budget`. Checks run on a
    /// fixed event cadence, so enforcement is deterministic and identical
    /// between the batch and streaming paths. `None` disables the budget.
    pub memory_budget: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            irh: true,
            eadr: false,
            threads: 0,
            memory_budget: None,
        }
    }
}

/// One acquire/release as seen by the per-thread lockset replay.
enum LockOp {
    Acquire { lock: LockId, mode: LockMode },
    Release { lock: LockId },
}

/// Fewer total lock operations than this and worker spawn overhead
/// outweighs the replay work; fall back to one (inline) worker.
const PARALLEL_LOCK_OPS: usize = 4096;

/// Computes, for every thread, the lockset value after each of its lock
/// events, in program order. Pure per-thread work — fanned out with
/// [`crate::parallel::map_indexed`] when the trace is big enough.
fn lockset_timelines(view: TraceView<'_>, threads: usize) -> Vec<Vec<Lockset>> {
    let mut per_thread: Vec<Vec<LockOp>> = Vec::new();
    let mut total = 0usize;
    for ev in view.events {
        let op = match &ev.kind {
            EventKind::Acquire { lock, mode } => LockOp::Acquire {
                lock: *lock,
                mode: *mode,
            },
            EventKind::Release { lock } => LockOp::Release { lock: *lock },
            _ => continue,
        };
        let ti = ev.tid.index();
        if per_thread.len() <= ti {
            per_thread.resize_with(ti + 1, Vec::new);
        }
        per_thread[ti].push(op);
        total += 1;
    }
    let workers = if total < PARALLEL_LOCK_OPS {
        1
    } else {
        crate::parallel::effective_threads(threads)
    };
    crate::parallel::map_indexed(per_thread.len(), workers, |i| replay_locks(&per_thread[i]))
}

/// Sequential lock replay for one thread: each acquisition bumps the
/// thread-local logical clock that stamps [`LockEntry::acq_ts`].
fn replay_locks(ops: &[LockOp]) -> Vec<Lockset> {
    let mut ls = Lockset::empty();
    let mut clock = 0u64;
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            LockOp::Acquire { lock, mode } => {
                clock += 1;
                ls = ls.with(LockEntry {
                    lock: *lock,
                    mode: *mode,
                    acq_ts: clock,
                });
            }
            LockOp::Release { lock } => ls = ls.without(*lock),
        }
        out.push(ls.clone());
    }
    out
}

/// Runs the worst-case persistence simulation over a trace.
pub fn simulate(trace: &Trace, cfg: &SimConfig) -> AccessSet {
    simulate_view(TraceView::full(trace), cfg)
}

/// Runs the simulation over a borrowed [`TraceView`] — the zero-copy entry
/// point used when [`AnalysisBudget::max_events`] caps the trace.
///
/// [`AnalysisBudget::max_events`]: crate::analysis::AnalysisBudget::max_events
pub fn simulate_view(view: TraceView<'_>, cfg: &SimConfig) -> AccessSet {
    // Per-thread lock replay is independent of everything else in the
    // trace (acquire/release only mutate the issuing thread's lockset;
    // a cross-thread handoff release is a no-op `without` on the
    // releaser's own set), so the lockset after every lock event can be
    // computed ahead of time, one worker per thread. The replay loop
    // consumes the timelines in trace order and interns the results
    // exactly where the sequential code did, keeping intern ids and stats
    // bit-identical for every worker count.
    let timelines = lockset_timelines(view, cfg.threads);
    let cursors = vec![0usize; timelines.len()];
    let mut core = SimCore::new(
        view.thread_count,
        view.regions.to_vec(),
        cfg.clone(),
        LockReplay::Timelines { timelines, cursors },
    );
    for ev in view.events.iter() {
        core.step(&ev);
    }
    core.finalize()
}

/// Event-at-a-time simulator for the streaming path.
///
/// Produces output bit-identical to [`simulate_view`] over the same event
/// sequence: it shares the whole per-event engine ([`SimCore`]) and differs
/// only in how locksets after lock events are obtained — replayed inline
/// with per-thread logical clocks instead of precomputed timelines, which
/// yields the exact same lockset values interned at the exact same points.
pub struct StreamSimulator {
    core: SimCore,
}

impl StreamSimulator {
    /// Creates a simulator for a trace with the given header.
    pub fn new(thread_count: u32, regions: Vec<crate::trace::PmRegion>, cfg: &SimConfig) -> Self {
        Self {
            core: SimCore::new(
                thread_count,
                regions,
                cfg.clone(),
                LockReplay::Inline { clocks: Vec::new() },
            ),
        }
    }

    /// Feeds the next event, in trace order.
    pub fn step(&mut self, ev: &crate::trace::Event) {
        self.core.step(ev);
    }

    /// Running counters (final totals only after [`finish`](Self::finish)).
    pub fn stats(&self) -> &SimStats {
        &self.core.stats
    }

    /// Closes still-open windows and returns the access set.
    pub fn finish(self) -> AccessSet {
        self.core.finalize()
    }
}

/// Where the lockset value after a lock event comes from.
enum LockReplay {
    /// Batch path: timelines precomputed per thread (possibly in
    /// parallel), consumed in trace order.
    Timelines {
        timelines: Vec<Vec<Lockset>>,
        cursors: Vec<usize>,
    },
    /// Streaming path: inline replay. `clocks[tid]` is the thread-local
    /// logical clock that stamps `LockEntry::acq_ts`, advanced exactly as
    /// [`replay_locks`] does.
    Inline { clocks: Vec<u64> },
}

/// Budget checks run every this many events — a fixed cadence so that
/// enforcement (and therefore the output) is deterministic and identical
/// between the batch and streaming paths.
const MEMORY_CHECK_INTERVAL: u64 = 256;

struct SimCore {
    cfg: SimConfig,
    regions: Vec<crate::trace::PmRegion>,
    filter_pm: bool,
    replay: LockReplay,
    threads: Vec<ThreadState>,
    /// Open store pieces, indexed by cache line. Probe-only hash use
    /// (drains are explicitly sorted), so the fast deterministic hasher
    /// is safe.
    lines: FxHashMap<LineId, Vec<OpenPiece>>,
    /// For each thread, the lines that may hold pieces pending on its
    /// fence. An ordered set: a fence closes windows on every watched line
    /// in one step, and the push order of those windows must not depend on
    /// hash-iteration order or two simulator instances would disagree.
    fence_watch: FxHashMap<ThreadId, BTreeSet<LineId>>,
    publication: PublicationTracker,
    locksets: Interner<Lockset>,
    vclocks: Interner<VectorClock>,
    /// Snapshot epochs per interned clock id (see [`AccessSet::epochs`]).
    vc_epochs: Vec<Option<Epoch>>,
    epoch_sound: bool,
    windows: Vec<StoreWindow>,
    loads: Vec<LoadAccess>,
    stats: SimStats,
}

impl SimCore {
    fn new(
        thread_count: u32,
        regions: Vec<crate::trace::PmRegion>,
        cfg: SimConfig,
        replay: LockReplay,
    ) -> Self {
        let mut locksets = Interner::new();
        let mut vclocks = Interner::new();
        let empty_ls = locksets.intern(Lockset::empty());
        let zero_vc = vclocks.intern(VectorClock::new());
        let threads = (0..thread_count.max(1))
            .map(|_| ThreadState {
                lockset: Lockset::empty(),
                ls_id: empty_ls,
                vc: VectorClock::new(),
                vc_id: zero_vc,
                needs_tick: true,
            })
            .collect();
        let filter_pm = !regions.is_empty();
        let mut core = Self {
            cfg,
            regions,
            filter_pm,
            replay,
            threads,
            lines: FxHashMap::default(),
            fence_watch: FxHashMap::default(),
            publication: PublicationTracker::new(),
            locksets,
            vclocks,
            vc_epochs: Vec::new(),
            epoch_sound: true,
            windows: Vec::new(),
            loads: Vec::new(),
            stats: SimStats::default(),
        };
        // The zero clock is trivially its own snapshot: zero ⊑ anything and
        // `0 ≤ W[t]` always, so any owner works.
        core.note_snapshot(zero_vc, ThreadId::MAIN);
        core
    }

    /// Records that the clock interned as `id` is thread `tid`'s first value
    /// at its current own-time (a post-tick snapshot) — the condition under
    /// which the [`Epoch`] fast path is sound for that id. First recording
    /// wins; the replay is sequential, so this is deterministic.
    fn note_snapshot(&mut self, id: VcId, tid: ThreadId) {
        let i = id.id() as usize;
        if self.vc_epochs.len() <= i {
            self.vc_epochs.resize(i + 1, None);
        }
        if self.vc_epochs[i].is_none() {
            self.vc_epochs[i] = Some(Epoch::of(tid, self.vclocks.get(id)));
        }
    }

    /// Registers an id interned at a non-snapshot point (post-join merge):
    /// the table slot exists but stays `None` unless some later snapshot
    /// interning re-derives the same clock value.
    fn note_opaque(&mut self, id: VcId) {
        let i = id.id() as usize;
        if self.vc_epochs.len() <= i {
            self.vc_epochs.resize(i + 1, None);
        }
    }

    fn is_pm(&self, range: &AddrRange) -> bool {
        self.regions.iter().any(|r| r.contains(range))
    }

    fn step(&mut self, ev: &crate::trace::Event) {
        self.stats.events += 1;
        // A trace that bypassed the builder (or was salvaged from a
        // corrupt file) can name threads beyond the header count; grow
        // the table instead of indexing out of bounds.
        self.ensure_thread(ev.tid);
        if let EventKind::ThreadJoin { child } = &ev.kind {
            self.ensure_thread(*child);
        }
        match &ev.kind {
            EventKind::Store {
                range,
                non_temporal,
                atomic,
            } => {
                if self.filter_pm && !self.is_pm(range) {
                    self.stats.non_pm_accesses += 1;
                } else {
                    self.stats.stores += 1;
                    self.tick_if_needed(ev.tid);
                    self.on_store(ev.tid, ev.seq, ev.stack, *range, *non_temporal, *atomic);
                }
            }
            EventKind::Load { range, atomic } => {
                if self.filter_pm && !self.is_pm(range) {
                    self.stats.non_pm_accesses += 1;
                } else {
                    self.stats.loads += 1;
                    self.tick_if_needed(ev.tid);
                    self.on_load(ev.tid, ev.seq, ev.stack, *range, *atomic);
                }
            }
            EventKind::Flush { addr } => {
                self.stats.flushes += 1;
                self.tick_if_needed(ev.tid);
                self.on_flush(ev.tid, *addr);
            }
            EventKind::Fence => {
                self.stats.fences += 1;
                self.tick_if_needed(ev.tid);
                self.on_fence(ev.tid);
            }
            EventKind::Acquire { .. } | EventKind::Release { .. } => {
                let ti = ev.tid.index();
                let ls = match &mut self.replay {
                    LockReplay::Timelines { timelines, cursors } => {
                        let ls = timelines[ti][cursors[ti]].clone();
                        cursors[ti] += 1;
                        ls
                    }
                    LockReplay::Inline { clocks } => {
                        if clocks.len() <= ti {
                            clocks.resize(ti + 1, 0);
                        }
                        match &ev.kind {
                            EventKind::Acquire { lock, mode } => {
                                clocks[ti] += 1;
                                self.threads[ti].lockset.with(LockEntry {
                                    lock: *lock,
                                    mode: *mode,
                                    acq_ts: clocks[ti],
                                })
                            }
                            EventKind::Release { lock } => self.threads[ti].lockset.without(*lock),
                            _ => unreachable!("outer match arm is Acquire | Release"),
                        }
                    }
                };
                let t = &mut self.threads[ti];
                t.lockset = ls.clone();
                t.ls_id = self.locksets.intern(ls);
            }
            EventKind::ThreadCreate { child } => {
                self.ensure_thread(*child);
                let parent = ev.tid.index();
                self.threads[parent].vc.tick(ev.tid);
                let mut child_vc = self.threads[parent].vc.clone();
                child_vc.tick(*child);
                let parent_vc = self.threads[parent].vc.clone();
                let parent_id = self.vclocks.intern(parent_vc);
                self.threads[parent].vc_id = parent_id;
                self.threads[parent].needs_tick = true;
                // Parent just ticked: snapshot.
                self.note_snapshot(parent_id, ev.tid);
                // Re-seating the child clock is only epoch-sound when the
                // child is fresh (or at least dominated, with its own-time
                // strictly advancing): otherwise the child's clock history
                // stops being monotone and every previously recorded epoch
                // for it becomes a lie. Only unvalidated traces can get
                // here (strict validation rejects double creates and the
                // quarantine drops them); demote the whole run to full
                // clock comparisons when it happens.
                let c = &mut self.threads[child.index()];
                let old_ok = matches!(
                    c.vc.compare(&child_vc),
                    ClockOrder::Before | ClockOrder::Equal
                ) && c.vc.get(*child) < child_vc.get(*child);
                if !old_ok {
                    self.epoch_sound = false;
                }
                c.vc = child_vc;
                let cvc = c.vc.clone();
                let child_id = self.vclocks.intern(cvc);
                self.threads[child.index()].vc_id = child_id;
                self.threads[child.index()].needs_tick = true;
                // Child ticked onto a fresh own-time: snapshot.
                self.note_snapshot(child_id, *child);
            }
            EventKind::ThreadJoin { child } => {
                let child_vc = self.threads[child.index()].vc.clone();
                let w = &mut self.threads[ev.tid.index()];
                w.vc.merge(&child_vc);
                let wvc = w.vc.clone();
                let wid = self.vclocks.intern(wvc);
                self.threads[ev.tid.index()].vc_id = wid;
                self.threads[ev.tid.index()].needs_tick = true;
                // The merge grew the clock *without* ticking: the joiner
                // already had a value at this own-time, so this one is not
                // a snapshot — no epoch unless the value independently is
                // one.
                self.note_opaque(wid);
            }
        }
        if self.stats.events.is_multiple_of(MEMORY_CHECK_INTERVAL) {
            self.enforce_budget();
        }
    }

    /// Approximate bytes of live simulation state, mirroring the dominant
    /// allocations: recorded windows/loads, open pieces and the interning
    /// tables (locksets at a flat estimate, vector clocks by thread count).
    fn approx_live_bytes(&self) -> u64 {
        use std::mem::size_of;
        let open: usize = self.lines.values().map(Vec::len).sum();
        (self.windows.len() * size_of::<StoreWindow>()) as u64
            + (self.loads.len() * size_of::<LoadAccess>()) as u64
            + (open * size_of::<OpenPiece>()) as u64
            + self.locksets.len() as u64 * 64
            + self.vclocks.len() as u64 * (8 * self.threads.len() as u64 + 32)
    }

    /// Degrades instead of aborting when the memory budget is exceeded:
    /// evicts report-inert entries first (IRH casualties change nothing),
    /// then the coldest (earliest-closed) windows, then the oldest loads,
    /// until live state fits in 75% of the budget. Everything here is a
    /// deterministic function of the event prefix, so batch and streaming
    /// degrade identically.
    fn enforce_budget(&mut self) {
        let Some(limit) = self.cfg.memory_budget else {
            return;
        };
        let live = self.approx_live_bytes();
        if live <= limit {
            return;
        }
        self.stats.memory_budget_hit = true;
        let target = limit - limit / 4;
        let need = live.saturating_sub(target);
        let wsz = std::mem::size_of::<StoreWindow>() as u64;
        let lsz = std::mem::size_of::<LoadAccess>() as u64;
        let w0 = self.windows.len();
        let l0 = self.loads.len();
        let mut freed = 0u64;
        self.windows.retain(|w| {
            if freed >= need || !w.irh_discarded {
                true
            } else {
                freed += wsz;
                false
            }
        });
        self.loads.retain(|l| {
            if freed >= need || !l.irh_dropped {
                true
            } else {
                freed += lsz;
                false
            }
        });
        self.windows.retain(|_| {
            if freed >= need {
                true
            } else {
                freed += wsz;
                false
            }
        });
        self.loads.retain(|_| {
            if freed >= need {
                true
            } else {
                freed += lsz;
                false
            }
        });
        self.stats.windows_evicted += (w0 - self.windows.len()) as u64;
        self.stats.loads_evicted += (l0 - self.loads.len()) as u64;
        // retain() keeps capacity; give the memory back so the budget
        // holds for the process, not just the model.
        self.windows.shrink_to_fit();
        self.loads.shrink_to_fit();
    }

    fn finalize(mut self) -> AccessSet {
        self.close_remaining();
        self.stats.distinct_locksets = self.locksets.len() as u64;
        self.stats.distinct_vclocks = self.vclocks.len() as u64;
        self.stats.intern_requests = self.locksets.requests() + self.vclocks.requests();
        self.stats.tracked_words = self.publication.tracked_words() as u64;
        self.vc_epochs.resize(self.vclocks.len(), None);
        AccessSet {
            windows: self.windows,
            loads: self.loads,
            locksets: self.locksets,
            vclocks: self.vclocks,
            epochs: self.vc_epochs,
            epoch_sound: self.epoch_sound,
            stats: self.stats,
        }
    }

    fn ensure_thread(&mut self, tid: ThreadId) {
        if self.threads.len() <= tid.index() {
            let empty_ls = self.locksets.intern(Lockset::empty());
            let zero_vc = self.vclocks.intern(VectorClock::new());
            self.threads.resize_with(tid.index() + 1, || ThreadState {
                lockset: Lockset::empty(),
                ls_id: empty_ls,
                vc: VectorClock::new(),
                vc_id: zero_vc,
                needs_tick: true,
            });
        }
    }

    /// §4 batching: bump the vector clock only on the first PM operation
    /// after a create/join boundary.
    fn tick_if_needed(&mut self, tid: ThreadId) {
        let t = &mut self.threads[tid.index()];
        if t.needs_tick {
            t.vc.tick(tid);
            t.needs_tick = false;
            let vc = t.vc.clone();
            let id = self.vclocks.intern(vc);
            self.threads[tid.index()].vc_id = id;
            // The tick just moved `tid` to a fresh own-time: this is the
            // first (minimal) value the thread has there, i.e. a snapshot.
            self.note_snapshot(id, tid);
        }
    }

    fn on_store(
        &mut self,
        tid: ThreadId,
        seq: u64,
        stack: StackId,
        range: AddrRange,
        non_temporal: bool,
        atomic: bool,
    ) {
        self.publication.record_access(tid, &range);
        // Close / shrink overlapping open pieces: the overwritten bytes'
        // visibility window ends here.
        let closer_ls = self.threads[tid.index()].lockset.clone();
        let closer_vc = self.threads[tid.index()].vc_id;
        for line in range.lines() {
            let Some(pieces) = self.lines.get_mut(&line) else {
                continue;
            };
            let mut replacement = Vec::with_capacity(pieces.len());
            for piece in pieces.drain(..) {
                if !piece.range.overlaps(&range) {
                    replacement.push(piece);
                    continue;
                }
                let hit = piece.range.intersection(&range).expect("overlap checked");
                let (head, tail) = piece.range.subtract(&range);
                // The overwritten part closes now.
                let effective = if piece.tid == tid {
                    let store_ls = self.locksets.get(piece.store_ls).clone();
                    store_ls.intersect_same_thread(&closer_ls)
                } else {
                    let store_ls = self.locksets.get(piece.store_ls).clone();
                    store_ls.intersect_cross_thread(&closer_ls)
                };
                let effective_ls = self.locksets.intern(effective);
                let discarded = false; // overwritten stores are never IRH-discarded (§3.1.3)
                self.stats.windows_overwritten += 1;
                self.windows.push(StoreWindow {
                    tid: piece.tid,
                    store_seq: piece.store_seq,
                    stack: piece.stack,
                    range: hit,
                    store_ls: piece.store_ls,
                    store_vc: piece.store_vc,
                    effective_ls,
                    close_vc: Some(closer_vc),
                    close: CloseReason::Overwritten,
                    atomic: piece.atomic,
                    non_temporal: piece.non_temporal,
                    irh_discarded: discarded,
                });
                for rem in [head, tail].into_iter().flatten() {
                    replacement.push(OpenPiece {
                        tid: piece.tid,
                        store_seq: piece.store_seq,
                        stack: piece.stack,
                        range: rem,
                        store_ls: piece.store_ls,
                        store_vc: piece.store_vc,
                        atomic: piece.atomic,
                        non_temporal: piece.non_temporal,
                        pending_fence: piece.pending_fence.clone(),
                    });
                }
            }
            *pieces = replacement;
        }
        // Open one new piece per touched cache line.
        let t = &self.threads[tid.index()];
        let (store_ls, store_vc) = (t.ls_id, t.vc_id);
        for line in range.lines() {
            let start = crate::addr::line_base(line).max(range.start);
            let end = (crate::addr::line_base(line) + crate::addr::CACHE_LINE).min(range.end());
            let piece_range = AddrRange::new(start, (end - start) as u32);
            self.stats.windows_created += 1;
            if self.cfg.eadr {
                // eADR: visibility implies durability — the window is
                // zero-length and fully protected by the store's lockset.
                let discarded = self.cfg.irh && self.publication.all_private_to(tid, &piece_range);
                self.stats.windows_persisted += 1;
                if discarded {
                    self.stats.irh_discarded_windows += 1;
                }
                self.windows.push(StoreWindow {
                    tid,
                    store_seq: seq,
                    stack,
                    range: piece_range,
                    store_ls,
                    store_vc,
                    effective_ls: store_ls,
                    close_vc: Some(store_vc),
                    close: CloseReason::Persisted,
                    atomic,
                    non_temporal,
                    irh_discarded: discarded,
                });
                continue;
            }
            let pending = if non_temporal {
                self.fence_watch.entry(tid).or_default().insert(line);
                vec![tid]
            } else {
                Vec::new()
            };
            self.lines.entry(line).or_default().push(OpenPiece {
                tid,
                store_seq: seq,
                stack,
                range: piece_range,
                store_ls,
                store_vc,
                atomic,
                non_temporal,
                pending_fence: pending,
            });
        }
    }

    fn on_load(&mut self, tid: ThreadId, seq: u64, stack: StackId, range: AddrRange, atomic: bool) {
        self.publication.record_access(tid, &range);
        let dropped = self.cfg.irh && self.publication.all_private_to(tid, &range);
        if dropped {
            self.stats.irh_dropped_loads += 1;
        }
        let t = &self.threads[tid.index()];
        self.loads.push(LoadAccess {
            tid,
            seq,
            stack,
            range,
            ls: t.ls_id,
            vc: t.vc_id,
            atomic,
            irh_dropped: dropped,
        });
    }

    fn on_flush(&mut self, tid: ThreadId, addr: u64) {
        let line = line_of(addr);
        let Some(pieces) = self.lines.get_mut(&line) else {
            return;
        };
        let mut watched = false;
        for piece in pieces.iter_mut() {
            if !piece.pending_fence.contains(&tid) {
                piece.pending_fence.push(tid);
            }
            watched = true;
        }
        if watched {
            self.fence_watch.entry(tid).or_default().insert(line);
        }
    }

    fn on_fence(&mut self, tid: ThreadId) {
        let Some(lines) = self.fence_watch.remove(&tid) else {
            return;
        };
        let fencer_ls = self.threads[tid.index()].lockset.clone();
        let fencer_vc = self.threads[tid.index()].vc_id;
        for line in lines {
            let Some(pieces) = self.lines.get_mut(&line) else {
                continue;
            };
            let mut kept = Vec::with_capacity(pieces.len());
            for piece in pieces.drain(..) {
                if !piece.pending_fence.contains(&tid) {
                    kept.push(piece);
                    continue;
                }
                let effective = if piece.tid == tid {
                    let store_ls = self.locksets.get(piece.store_ls).clone();
                    store_ls.intersect_same_thread(&fencer_ls)
                } else {
                    let store_ls = self.locksets.get(piece.store_ls).clone();
                    store_ls.intersect_cross_thread(&fencer_ls)
                };
                let effective_ls = self.locksets.intern(effective);
                let discarded =
                    self.cfg.irh && self.publication.all_private_to(piece.tid, &piece.range);
                self.stats.windows_persisted += 1;
                if discarded {
                    self.stats.irh_discarded_windows += 1;
                }
                self.windows.push(StoreWindow {
                    tid: piece.tid,
                    store_seq: piece.store_seq,
                    stack: piece.stack,
                    range: piece.range,
                    store_ls: piece.store_ls,
                    store_vc: piece.store_vc,
                    effective_ls,
                    close_vc: Some(fencer_vc),
                    close: CloseReason::Persisted,
                    atomic: piece.atomic,
                    non_temporal: piece.non_temporal,
                    irh_discarded: discarded,
                });
            }
            if kept.is_empty() {
                self.lines.remove(&line);
            } else {
                *self.lines.get_mut(&line).expect("line present") = kept;
            }
        }
    }

    /// Closes every still-open piece as never-persisted: the value's
    /// vulnerability window extends to the end of the execution, no lock
    /// protected a persist that never happened, so the effective lockset is
    /// empty and the close clock unbounded.
    fn close_remaining(&mut self) {
        let empty_ls = self.locksets.intern(Lockset::empty());
        let mut lines: Vec<_> = std::mem::take(&mut self.lines).into_iter().collect();
        lines.sort_by_key(|(l, _)| *l);
        for (_, pieces) in lines {
            for piece in pieces {
                self.stats.windows_unpersisted += 1;
                self.windows.push(StoreWindow {
                    tid: piece.tid,
                    store_seq: piece.store_seq,
                    stack: piece.stack,
                    range: piece.range,
                    store_ls: piece.store_ls,
                    store_vc: piece.store_vc,
                    effective_ls: empty_ls,
                    close_vc: None,
                    close: CloseReason::NeverPersisted,
                    atomic: piece.atomic,
                    non_temporal: piece.non_temporal,
                    irh_discarded: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Frame, LockId, LockMode, TraceBuilder};

    fn builder() -> TraceBuilder {
        TraceBuilder::new()
    }

    fn store(range: AddrRange) -> EventKind {
        EventKind::Store {
            range,
            non_temporal: false,
            atomic: false,
        }
    }

    fn ntstore(range: AddrRange) -> EventKind {
        EventKind::Store {
            range,
            non_temporal: true,
            atomic: false,
        }
    }

    fn load(range: AddrRange) -> EventKind {
        EventKind::Load {
            range,
            atomic: false,
        }
    }

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    fn sim(trace: &Trace) -> AccessSet {
        simulate(
            trace,
            &SimConfig {
                irh: false,
                eadr: false,
                threads: 1,
                memory_budget: None,
            },
        )
    }

    #[test]
    fn store_flush_fence_persists() {
        let mut b = builder();
        let s = b.intern_stack([Frame::new("w", "t.rs", 1)]);
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        b.push(T0, s, EventKind::Fence);
        let out = sim(&b.finish());
        assert_eq!(out.windows.len(), 1);
        assert_eq!(out.windows[0].close, CloseReason::Persisted);
        assert!(out.windows[0].close_vc.is_some());
    }

    #[test]
    fn flush_without_fence_does_not_persist() {
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        let out = sim(&b.finish());
        assert_eq!(out.windows.len(), 1);
        assert_eq!(out.windows[0].close, CloseReason::NeverPersisted);
        assert!(out.windows[0].close_vc.is_none());
    }

    #[test]
    fn fence_without_flush_does_not_persist() {
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Fence);
        let out = sim(&b.finish());
        assert_eq!(out.windows[0].close, CloseReason::NeverPersisted);
    }

    #[test]
    fn flush_before_store_gives_no_guarantee() {
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Fence);
        let out = sim(&b.finish());
        assert_eq!(out.windows[0].close, CloseReason::NeverPersisted);
    }

    #[test]
    fn store_after_flush_not_covered_by_that_flush() {
        // store A; flush; store B (different bytes, same line); fence.
        // A persists; B does not (worst case: the flush captured pre-B
        // content).
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        b.push(T0, s, store(AddrRange::new(0x108, 8)));
        b.push(T0, s, EventKind::Fence);
        let out = sim(&b.finish());
        let a = out.windows.iter().find(|w| w.range.start == 0x100).unwrap();
        let bb = out.windows.iter().find(|w| w.range.start == 0x108).unwrap();
        assert_eq!(a.close, CloseReason::Persisted);
        assert_eq!(bb.close, CloseReason::NeverPersisted);
    }

    #[test]
    fn non_temporal_store_persists_at_fence_without_flush() {
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, ntstore(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Fence);
        let out = sim(&b.finish());
        assert_eq!(out.windows[0].close, CloseReason::Persisted);
        assert!(out.windows[0].non_temporal);
    }

    #[test]
    fn non_temporal_store_without_fence_is_unpersisted() {
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, ntstore(AddrRange::new(0x100, 8)));
        let out = sim(&b.finish());
        assert_eq!(out.windows[0].close, CloseReason::NeverPersisted);
    }

    #[test]
    fn fence_only_acts_for_the_flushing_thread() {
        // T0 stores and flushes; T1 fences. No persistence guarantee: the
        // fence must come from the thread that issued the flush.
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, EventKind::ThreadCreate { child: T1 });
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        b.push(T1, s, EventKind::Fence);
        b.push(T0, s, EventKind::ThreadJoin { child: T1 });
        let out = sim(&b.finish());
        assert_eq!(out.windows[0].close, CloseReason::NeverPersisted);
    }

    #[test]
    fn cross_thread_flush_and_fence_persist() {
        // T0 stores; T1 flushes and fences: persisted (helper-thread
        // persistence is a real PM pattern).
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, EventKind::ThreadCreate { child: T1 });
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T1, s, EventKind::Flush { addr: 0x100 });
        b.push(T1, s, EventKind::Fence);
        b.push(T0, s, EventKind::ThreadJoin { child: T1 });
        let out = sim(&b.finish());
        assert_eq!(out.windows[0].close, CloseReason::Persisted);
    }

    #[test]
    fn cross_line_store_splits_and_persists_per_line() {
        // The TurboHash #3 pattern: a 16-byte entry straddles two lines but
        // only the first line is flushed.
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, store(AddrRange::new(0x138, 16))); // lines 4 and 5
        b.push(T0, s, EventKind::Flush { addr: 0x100 }); // line 4 only
        b.push(T0, s, EventKind::Fence);
        let out = sim(&b.finish());
        assert_eq!(out.windows.len(), 2);
        let first = out.windows.iter().find(|w| w.range.start == 0x138).unwrap();
        let second = out.windows.iter().find(|w| w.range.start == 0x140).unwrap();
        assert_eq!(first.range.len, 8);
        assert_eq!(first.close, CloseReason::Persisted);
        assert_eq!(second.range.len, 8);
        assert_eq!(second.close, CloseReason::NeverPersisted);
    }

    #[test]
    fn overwrite_closes_window() {
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        b.push(T0, s, EventKind::Fence);
        let out = sim(&b.finish());
        assert_eq!(out.windows.len(), 2);
        let first = out.windows.iter().find(|w| w.store_seq == 0).unwrap();
        let second = out.windows.iter().find(|w| w.store_seq == 1).unwrap();
        assert_eq!(first.close, CloseReason::Overwritten);
        assert_eq!(second.close, CloseReason::Persisted);
    }

    #[test]
    fn partial_overwrite_keeps_remainder_open() {
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, store(AddrRange::new(0x100, 24)));
        b.push(T0, s, store(AddrRange::new(0x108, 8))); // punches the middle
        let out = sim(&b.finish());
        // First store: overwritten middle (closed) + head + tail (open, then
        // never persisted). Second store: never persisted.
        let overwritten: Vec<_> = out
            .windows
            .iter()
            .filter(|w| w.close == CloseReason::Overwritten)
            .collect();
        assert_eq!(overwritten.len(), 1);
        assert_eq!(overwritten[0].range, AddrRange::new(0x108, 8));
        let unpersisted: Vec<_> = out
            .windows
            .iter()
            .filter(|w| w.close == CloseReason::NeverPersisted)
            .collect();
        let head = unpersisted
            .iter()
            .find(|w| w.range == AddrRange::new(0x100, 8));
        let tail = unpersisted
            .iter()
            .find(|w| w.range == AddrRange::new(0x110, 8));
        assert!(head.is_some() && tail.is_some());
    }

    #[test]
    fn effective_lockset_empty_when_persist_outside_lock() {
        // Figure 2a/2c.
        let mut b = builder();
        let s = b.intern_stack([]);
        let a = LockId(0xa);
        b.push(
            T0,
            s,
            EventKind::Acquire {
                lock: a,
                mode: LockMode::Exclusive,
            },
        );
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Release { lock: a });
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        b.push(T0, s, EventKind::Fence);
        let out = sim(&b.finish());
        assert_eq!(out.windows[0].close, CloseReason::Persisted);
        assert!(out.locksets.get(out.windows[0].effective_ls).is_empty());
    }

    #[test]
    fn effective_lockset_kept_within_one_critical_section() {
        // Figure 2b-with-2d-fix: same critical section keeps the lock.
        let mut b = builder();
        let s = b.intern_stack([]);
        let a = LockId(0xa);
        b.push(
            T0,
            s,
            EventKind::Acquire {
                lock: a,
                mode: LockMode::Exclusive,
            },
        );
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        b.push(T0, s, EventKind::Fence);
        b.push(T0, s, EventKind::Release { lock: a });
        let out = sim(&b.finish());
        assert_eq!(out.locksets.get(out.windows[0].effective_ls).len(), 1);
    }

    #[test]
    fn effective_lockset_empty_on_release_reacquire() {
        // Figure 2d: lock released and re-acquired between store and
        // persist — the logical timestamp differs, the intersection is
        // empty even though the lock id matches.
        let mut b = builder();
        let s = b.intern_stack([]);
        let a = LockId(0xa);
        b.push(
            T0,
            s,
            EventKind::Acquire {
                lock: a,
                mode: LockMode::Exclusive,
            },
        );
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Release { lock: a });
        b.push(
            T0,
            s,
            EventKind::Acquire {
                lock: a,
                mode: LockMode::Exclusive,
            },
        );
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        b.push(T0, s, EventKind::Fence);
        b.push(T0, s, EventKind::Release { lock: a });
        let out = sim(&b.finish());
        assert_eq!(out.windows[0].close, CloseReason::Persisted);
        assert!(out.locksets.get(out.windows[0].effective_ls).is_empty());
    }

    #[test]
    fn vector_clocks_follow_figure3() {
        // T0 creates T1, then T2; accesses in between (Figure 3, threads
        // renumbered from 1-based to 0-based).
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, store(AddrRange::new(0x100, 8))); // Store1
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        b.push(T0, s, EventKind::Fence); // Persist1
        b.push(T0, s, EventKind::ThreadCreate { child: T1 });
        b.push(T1, s, load(AddrRange::new(0x100, 8))); // Load1 in T1
        b.push(T0, s, store(AddrRange::new(0x140, 8))); // Store3 (Y)
        b.push(T0, s, EventKind::ThreadCreate { child: ThreadId(2) });
        b.push(ThreadId(2), s, load(AddrRange::new(0x140, 8))); // Load in T2
        b.push(T0, s, EventKind::Flush { addr: 0x140 });
        b.push(T0, s, EventKind::Fence); // Persist3
        b.push(T0, s, EventKind::ThreadJoin { child: T1 });
        b.push(T0, s, EventKind::ThreadJoin { child: ThreadId(2) });
        let out = sim(&b.finish());

        // Store1's persist clock happens-before both loads.
        let w1 = out.windows.iter().find(|w| w.range.start == 0x100).unwrap();
        let persist1 = out.vclocks.get(w1.close_vc.unwrap());
        let l1 = out.loads.iter().find(|l| l.tid == T1).unwrap();
        let l2 = out.loads.iter().find(|l| l.tid == ThreadId(2)).unwrap();
        assert!(persist1.happens_before(out.vclocks.get(l1.vc)));

        // Store3's *store* clock precedes T2's load, but its *persist*
        // clock is concurrent with it — the §3.1.2 example.
        let w3 = out.windows.iter().find(|w| w.range.start == 0x140).unwrap();
        let store3 = out.vclocks.get(w3.store_vc);
        let persist3 = out.vclocks.get(w3.close_vc.unwrap());
        assert!(store3.happens_before(out.vclocks.get(l2.vc)));
        assert!(persist3.concurrent_with(out.vclocks.get(l2.vc)));
    }

    #[test]
    fn irh_discards_persisted_private_stores_only() {
        let mut b = builder();
        let s = b.intern_stack([]);
        // Private init, persisted: discarded.
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        b.push(T0, s, EventKind::Fence);
        // Private init, NOT persisted: kept (the §3.1.3 publish-without-
        // persist race must remain detectable).
        b.push(T0, s, store(AddrRange::new(0x200, 8)));
        b.push(T0, s, EventKind::ThreadCreate { child: T1 });
        b.push(T1, s, load(AddrRange::new(0x100, 8)));
        b.push(T1, s, load(AddrRange::new(0x200, 8)));
        b.push(T0, s, EventKind::ThreadJoin { child: T1 });
        let out = simulate(
            &b.finish(),
            &SimConfig {
                irh: true,
                eadr: false,
                threads: 1,
                memory_budget: None,
            },
        );
        let w_persisted = out.windows.iter().find(|w| w.range.start == 0x100).unwrap();
        let w_unpersisted = out.windows.iter().find(|w| w.range.start == 0x200).unwrap();
        assert!(w_persisted.irh_discarded);
        assert!(!w_unpersisted.irh_discarded);
        assert_eq!(out.stats.irh_discarded_windows, 1);
    }

    #[test]
    fn irh_keeps_post_publication_stores() {
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, EventKind::ThreadCreate { child: T1 });
        b.push(T1, s, load(AddrRange::new(0x100, 8))); // T1 touches first
        b.push(T0, s, store(AddrRange::new(0x100, 8))); // publishes
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        b.push(T0, s, EventKind::Fence);
        b.push(T0, s, EventKind::ThreadJoin { child: T1 });
        let out = simulate(
            &b.finish(),
            &SimConfig {
                irh: true,
                eadr: false,
                threads: 1,
                memory_budget: None,
            },
        );
        assert!(!out.windows[0].irh_discarded);
    }

    #[test]
    fn irh_drops_private_loads() {
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, load(AddrRange::new(0x100, 8))); // private load: dropped
        b.push(T0, s, EventKind::ThreadCreate { child: T1 });
        b.push(T1, s, load(AddrRange::new(0x100, 8))); // publishes: kept
        b.push(T0, s, load(AddrRange::new(0x100, 8))); // public now: kept
        b.push(T0, s, EventKind::ThreadJoin { child: T1 });
        let out = simulate(
            &b.finish(),
            &SimConfig {
                irh: true,
                eadr: false,
                threads: 1,
                memory_budget: None,
            },
        );
        assert_eq!(out.loads.len(), 3);
        assert!(out.loads[0].irh_dropped);
        assert!(!out.loads[1].irh_dropped);
        assert!(!out.loads[2].irh_dropped);
        assert_eq!(out.stats.irh_dropped_loads, 1);
    }

    #[test]
    fn pm_region_filter_skips_volatile_accesses() {
        let mut b = builder();
        b.add_region(crate::trace::PmRegion {
            base: 0x1000,
            len: 0x1000,
            path: "pm".into(),
        });
        let s = b.intern_stack([]);
        b.push(T0, s, store(AddrRange::new(0x100, 8))); // volatile
        b.push(T0, s, store(AddrRange::new(0x1000, 8))); // PM
        let out = sim(&b.finish());
        assert_eq!(out.stats.non_pm_accesses, 1);
        assert_eq!(out.stats.stores, 1);
        assert_eq!(out.windows.len(), 1);
        assert_eq!(out.windows[0].range.start, 0x1000);
    }

    #[test]
    fn eadr_mode_closes_windows_at_the_store() {
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, store(AddrRange::new(0x100, 8))); // no flush, no fence
        let out = simulate(
            &b.finish(),
            &SimConfig {
                irh: false,
                eadr: true,
                threads: 1,
                memory_budget: None,
            },
        );
        assert_eq!(out.windows.len(), 1);
        assert_eq!(out.windows[0].close, CloseReason::Persisted);
        assert_eq!(out.windows[0].close_vc, Some(out.windows[0].store_vc));
        assert_eq!(out.windows[0].effective_ls, out.windows[0].store_ls);
        assert_eq!(out.stats.windows_unpersisted, 0);
    }

    /// Asserts [`StreamSimulator`] and [`simulate`] produce bit-identical
    /// output on `trace`: same windows/loads (including interned ids) and
    /// the same *values* behind every id in both interners.
    fn assert_stream_matches_batch(trace: &Trace, cfg: &SimConfig) {
        let batch = simulate(trace, cfg);
        let mut s = StreamSimulator::new(trace.thread_count, trace.regions.clone(), cfg);
        for ev in trace.events.iter() {
            s.step(&ev);
        }
        let stream = s.finish();
        assert_eq!(batch.windows, stream.windows);
        assert_eq!(batch.loads, stream.loads);
        assert_eq!(batch.stats, stream.stats);
        for w in &batch.windows {
            assert_eq!(
                batch.locksets.get(w.store_ls),
                stream.locksets.get(w.store_ls)
            );
            assert_eq!(
                batch.locksets.get(w.effective_ls),
                stream.locksets.get(w.effective_ls)
            );
            assert_eq!(
                batch.vclocks.get(w.store_vc),
                stream.vclocks.get(w.store_vc)
            );
            if let Some(c) = w.close_vc {
                assert_eq!(batch.vclocks.get(c), stream.vclocks.get(c));
            }
        }
        for l in &batch.loads {
            assert_eq!(batch.locksets.get(l.ls), stream.locksets.get(l.ls));
            assert_eq!(batch.vclocks.get(l.vc), stream.vclocks.get(l.vc));
        }
    }

    /// A busy trace exercising every replay path: multiple threads, nested
    /// and re-acquired locks, overwrites, cross-thread persists, NT stores,
    /// private (IRH-droppable) accesses.
    fn busy_trace() -> Trace {
        let mut b = builder();
        let s = b.intern_stack([Frame::new("w", "t.rs", 1)]);
        let (a, bb) = (LockId(0xa), LockId(0xb));
        let acq = |lock| EventKind::Acquire {
            lock,
            mode: LockMode::Exclusive,
        };
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        b.push(T0, s, EventKind::Fence);
        b.push(T0, s, EventKind::ThreadCreate { child: T1 });
        for round in 0..4u64 {
            let x = AddrRange::new(0x1000 + round * 0x40, 8);
            b.push(T0, s, acq(a));
            b.push(T0, s, acq(bb));
            b.push(T0, s, store(x));
            b.push(T0, s, EventKind::Release { lock: bb });
            b.push(T0, s, EventKind::Flush { addr: x.start });
            b.push(T0, s, EventKind::Fence);
            b.push(T0, s, EventKind::Release { lock: a });
            b.push(T1, s, acq(a));
            b.push(T1, s, load(x));
            b.push(T1, s, EventKind::Release { lock: a });
            b.push(T1, s, ntstore(AddrRange::new(0x2000 + round * 0x40, 16)));
            b.push(T1, s, EventKind::Fence);
            b.push(T0, s, store(x)); // overwrite
        }
        b.push(T1, s, EventKind::Flush { addr: 0x1000 });
        b.push(T1, s, EventKind::Fence); // cross-thread persist
        b.push(T0, s, EventKind::ThreadJoin { child: T1 });
        b.finish()
    }

    #[test]
    fn stream_simulator_matches_batch() {
        let trace = busy_trace();
        for irh in [false, true] {
            for threads in [1, 4] {
                let cfg = SimConfig {
                    irh,
                    eadr: false,
                    threads,
                    memory_budget: None,
                };
                assert_stream_matches_batch(&trace, &cfg);
            }
        }
    }

    /// A long trace whose persisted windows pile up until a small budget
    /// forces evictions.
    fn window_heavy_trace() -> Trace {
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, EventKind::ThreadCreate { child: T1 });
        for i in 0..400u64 {
            let x = AddrRange::new(0x1_0000 + i * 0x40, 8);
            b.push(T0, s, store(x));
            b.push(T0, s, EventKind::Flush { addr: x.start });
            b.push(T0, s, EventKind::Fence);
            b.push(T1, s, load(x));
        }
        b.push(T0, s, EventKind::ThreadJoin { child: T1 });
        b.finish()
    }

    #[test]
    fn memory_budget_evicts_deterministically() {
        let trace = window_heavy_trace();
        let cfg = SimConfig {
            irh: false,
            eadr: false,
            threads: 1,
            memory_budget: Some(8 * 1024),
        };
        let out = simulate(&trace, &cfg);
        assert!(out.stats.memory_budget_hit);
        assert!(out.stats.windows_evicted > 0);
        // Extended partition law: closes account for kept + evicted.
        assert_eq!(
            out.stats.windows_persisted
                + out.stats.windows_overwritten
                + out.stats.windows_unpersisted,
            out.windows.len() as u64 + out.stats.windows_evicted
        );
        // The budget path stays bit-identical between batch and streaming.
        assert_stream_matches_batch(&trace, &cfg);
        // And an unbudgeted run evicts nothing.
        let free = simulate(
            &trace,
            &SimConfig {
                memory_budget: None,
                ..cfg
            },
        );
        assert!(!free.stats.memory_budget_hit);
        assert_eq!(free.stats.windows_evicted, 0);
        assert!(free.windows.len() > out.windows.len());
    }

    #[test]
    fn stats_are_consistent() {
        let mut b = builder();
        let s = b.intern_stack([]);
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, store(AddrRange::new(0x100, 8)));
        b.push(T0, s, EventKind::Flush { addr: 0x100 });
        b.push(T0, s, EventKind::Fence);
        b.push(T0, s, load(AddrRange::new(0x100, 8)));
        let out = sim(&b.finish());
        assert_eq!(out.stats.stores, 2);
        assert_eq!(out.stats.loads, 1);
        assert_eq!(out.stats.flushes, 1);
        assert_eq!(out.stats.fences, 1);
        assert_eq!(out.stats.windows_created, 2);
        assert_eq!(
            out.stats.windows_persisted
                + out.stats.windows_overwritten
                + out.stats.windows_unpersisted,
            out.windows.len() as u64
        );
    }
}
