//! # hawkset-core
//!
//! Automatic, application-agnostic, efficient detection of
//! **persistency-induced races** in Persistent Memory (PM) programs — a
//! from-scratch Rust reproduction of *HawkSet* (EuroSys 2025).
//!
//! A persistency-induced race (Definition 1 of the paper) occurs when a
//! thread loads a value modified by another thread while that value is *not
//! guaranteed to be persisted*: the value is visible (it is in the cache)
//! but a crash can still lose it, so post-crash state may reflect side
//! effects of the load without the store itself.
//!
//! The crate implements the full analysis pipeline of the paper:
//!
//! 1. a trace model ([`trace`]) fed by an instrumentation substrate,
//! 2. a worst-case persistence simulation ([`memsim`]) that turns stores,
//!    flushes and fences into *store visibility windows*,
//! 3. the Initialization Removal Heuristic ([`irh`]),
//! 4. the PM-aware lockset analysis ([`analysis`]) with effective locksets
//!    ([`lockset`]) and inter-thread happens-before pruning ([`vclock`]).
//!
//! # Examples
//!
//! ```
//! use hawkset_core::addr::AddrRange;
//! use hawkset_core::analysis::{AnalysisConfig, Analyzer};
//! use hawkset_core::trace::{EventKind, Frame, LockId, LockMode, ThreadId, TraceBuilder};
//!
//! // Figure 1c of the paper: store under lock A, persist outside the
//! // critical section, concurrent load under lock A in another thread.
//! let mut b = TraceBuilder::new();
//! let x = AddrRange::new(0x1000, 8);
//! let a = LockId(0xa);
//! let st = b.intern_stack([Frame::new("writer", "fig1c.rs", 3)]);
//! let ld = b.intern_stack([Frame::new("reader", "fig1c.rs", 9)]);
//!
//! b.push(ThreadId(0), st, EventKind::ThreadCreate { child: ThreadId(1) });
//! b.push(ThreadId(0), st, EventKind::Acquire { lock: a, mode: LockMode::Exclusive });
//! b.push(ThreadId(0), st, EventKind::Store { range: x, non_temporal: false, atomic: false });
//! b.push(ThreadId(0), st, EventKind::Release { lock: a });
//! b.push(ThreadId(1), ld, EventKind::Acquire { lock: a, mode: LockMode::Exclusive });
//! b.push(ThreadId(1), ld, EventKind::Load { range: x, atomic: false });
//! b.push(ThreadId(1), ld, EventKind::Release { lock: a });
//! b.push(ThreadId(0), st, EventKind::Flush { addr: 0x1000 }); // persist too late,
//! b.push(ThreadId(0), st, EventKind::Fence); //                 outside the lock
//! b.push(ThreadId(0), st, EventKind::ThreadJoin { child: ThreadId(1) });
//!
//! let report = Analyzer::new(AnalysisConfig::default()).run(&b.finish());
//! assert_eq!(report.races.len(), 1, "the Figure 1c race must be detected");
//! ```

pub mod addr;
pub mod analysis;
pub mod error;
pub mod faults;
pub mod fxhash;
pub mod intern;
pub mod ioplane;
pub mod irh;
pub mod lockset;
pub mod memsim;
pub mod obs;
pub mod parallel;
pub mod stats;
pub mod sync_config;
pub mod trace;
pub mod vclock;

pub use analysis::{AnalysisConfig, AnalysisReport, Analyzer, Race, Strictness};
pub use error::{HawkSetError, ResourceError};
pub use ioplane::{plane_from_env, FaultScript, IoPlane, RealIo, ScriptedIo};
pub use obs::{MetricsSnapshot, ObsHook};
pub use trace::{Trace, TraceBuilder};
