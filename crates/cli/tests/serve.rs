//! End-to-end tests for the `hawkset serve` daemon: the full loop of
//! daemon startup, framed client submissions, crash-kill recovery of the
//! COW race database, graceful drain, fairness/shedding, and the metrics
//! conservation law — all driven through the real binary over real
//! sockets.
#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn hawkset() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hawkset"))
}

fn demo_trace(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("hawkset-serve-test-{name}.hwkt"));
    let out = hawkset()
        .args(["demo", path.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "demo failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hawkset-serve-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A running daemon. Spawns `hawkset serve --tcp 127.0.0.1:0`, waits for
/// the readiness line, and parses the ephemeral port out of it. Killed on
/// drop so a failing assertion never leaks a process.
struct Daemon {
    child: Child,
    tcp: String,
}

impl Daemon {
    fn start(db: &Path, extra_args: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let mut cmd = hawkset();
        cmd.args([
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--db",
            db.to_str().unwrap(),
        ])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn daemon");
        let stdout = child.stdout.take().expect("daemon stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read readiness line");
        assert!(
            line.starts_with("serve: ready"),
            "unexpected readiness line: {line:?}"
        );
        let tcp = line
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("tcp="))
            .expect("readiness line carries the bound tcp address")
            .to_string();
        Daemon { child, tcp }
    }

    fn sigterm(&self) {
        let rc = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("kill spawns");
        assert!(rc.success());
    }

    fn sigkill(&mut self) {
        self.child.kill().expect("SIGKILL");
        let _ = self.child.wait();
    }

    /// SIGTERM, then assert the graceful-drain exit-code contract (0).
    fn drain(mut self) {
        self.sigterm();
        let status = self.child.wait().expect("wait daemon");
        assert_eq!(status.code(), Some(0), "graceful drain exits 0");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Foreground submission; returns (exit code, stdout, stderr).
fn submit(tcp: &str, tenant: &str, trace: &Path) -> (i32, String, String) {
    let out = hawkset()
        .args([
            "submit",
            "--tcp",
            tcp,
            "--tenant",
            tenant,
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn submit");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Background submission child (reaped by the caller).
fn submit_bg(tcp: &str, tenant: &str, trace: &Path) -> Child {
    hawkset()
        .args([
            "submit",
            "--tcp",
            tcp,
            "--tenant",
            tenant,
            trace.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn submit")
}

/// Foreground submission over the unix socket; returns (code, out, err).
fn submit_unix(sock: &Path, tenant: &str, trace: &Path) -> (i32, String, String) {
    let out = hawkset()
        .args([
            "submit",
            "--socket",
            sock.to_str().unwrap(),
            "--tenant",
            tenant,
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn submit");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Background submission over the unix socket (reaped by the caller).
fn submit_bg_unix(sock: &Path, tenant: &str, trace: &Path) -> Child {
    hawkset()
        .args([
            "submit",
            "--socket",
            sock.to_str().unwrap(),
            "--tenant",
            tenant,
            trace.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn submit")
}

/// Canonical stable-snapshot bytes via `hawkset query --json`.
fn query_json(db: &Path) -> Vec<u8> {
    let out = hawkset()
        .args(["query", "--json", "--db", db.to_str().unwrap()])
        .output()
        .expect("spawn query");
    assert!(
        out.status.success(),
        "query failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn metrics_json(db: &Path) -> serde_json::Value {
    let bytes = std::fs::read(db.join("serve-metrics.json")).expect("metrics file written");
    serde_json::from_slice(&bytes).expect("metrics file is valid JSON")
}

/// Asserts the three conservation laws straight off the metrics file.
fn assert_conservation(m: &serde_json::Value) {
    let n = |v: &serde_json::Value| v.as_u64().expect("numeric metric");
    assert_eq!(
        n(&m["submitted"]),
        n(&m["admitted"]) + n(&m["shed"]["total"]),
        "submitted = admitted + shed: {m:?}"
    );
    assert_eq!(
        n(&m["admitted"]),
        n(&m["outcomes"]["completed_clean"])
            + n(&m["outcomes"]["completed_races"])
            + n(&m["outcomes"]["failed"])
            + n(&m["in_flight"]),
        "admitted = resolved + in_flight: {m:?}"
    );
    assert_eq!(
        n(&m["shed"]["total"]),
        n(&m["shed"]["queue_full"])
            + n(&m["shed"]["tenant_cap"])
            + n(&m["shed"]["draining"])
            + n(&m["shed"]["storage"]),
        "shed total = causes: {m:?}"
    );
}

/// Submissions over both transports complete, identical traces dedupe
/// into one record with per-tenant provenance, SIGTERM drains to exit 0,
/// and the metrics file balances.
#[test]
fn roundtrip_dedupe_drain_and_metrics() {
    let trace = demo_trace("roundtrip");
    let db = fresh_dir("roundtrip");
    let sock =
        std::env::temp_dir().join(format!("hawkset-serve-test-rt-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let daemon = Daemon::start(&db, &["--socket", sock.to_str().unwrap()], &[]);

    // Same trace from two tenants, one per transport. Exit 1 = races
    // reported (the demo trace carries the Figure-1c race).
    let (code, out, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 1, "stdout:\n{out}\nstderr:\n{err}");
    assert!(out.contains("races reported"), "stdout:\n{out}");
    let sock_submit = hawkset()
        .args([
            "submit",
            "--socket",
            sock.to_str().unwrap(),
            "--tenant",
            "tenant-b",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn submit");
    assert_eq!(
        sock_submit.status.code(),
        Some(1),
        "stderr:\n{}",
        String::from_utf8_lossy(&sock_submit.stderr)
    );

    daemon.drain();
    assert!(!sock.exists(), "drain removes the unix socket");

    // One deduped record, occurrence count 2, both tenants credited.
    let snapshot: serde_json::Value =
        serde_json::from_slice(&query_json(&db)).expect("snapshot JSON");
    assert_eq!(snapshot["jobs_recorded"], 2u64);
    let records = snapshot["records"].as_array().expect("records array");
    assert_eq!(records.len(), 1, "identical traces dedupe: {snapshot:?}");
    assert_eq!(records[0]["occurrences"], 2u64);
    let tenants = records[0]["tenants"].as_array().expect("tenants");
    assert_eq!(tenants.len(), 2, "per-tenant provenance: {snapshot:?}");

    let m = metrics_json(&db);
    assert_conservation(&m);
    assert_eq!(m["submitted"], 2u64);
    assert_eq!(m["outcomes"]["completed_races"], 2u64);
    assert_eq!(m["in_flight"], 0u64, "drain leaves nothing in flight");
}

/// Headline, part 1: SIGKILL mid-ingest (worker stalled inside the
/// analysis), restart, recover to the last stable snapshot, resubmit —
/// the database converges byte-for-byte with an uninterrupted run.
#[test]
fn sigkill_mid_ingest_recovers_and_converges() {
    let trace = demo_trace("kill-ingest");
    let db = fresh_dir("kill-ingest");

    let mut daemon = Daemon::start(&db, &[], &[("HAWKSET_TEST_JOB_DELAY_MS", "30000")]);
    let mut client = submit_bg(&daemon.tcp, "tenant-a", &trace);
    // Give the submission time to be admitted and picked up by a worker
    // (which then stalls in the injected delay) — then pull the plug.
    std::thread::sleep(Duration::from_millis(800));
    daemon.sigkill();
    let _ = client.wait();

    // Restart on the same directory: recovery must land on the stable
    // bootstrap snapshot (nothing was ever committed).
    let daemon = Daemon::start(&db, &[], &[]);
    let before: serde_json::Value =
        serde_json::from_slice(&query_json(&db)).expect("snapshot JSON");
    assert_eq!(before["jobs_recorded"], 0u64, "no torn/partial commit");
    let (code, out, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 1, "stdout:\n{out}\nstderr:\n{err}");
    daemon.drain();

    // Reference: the same single submission against a fresh database.
    let db_ref = fresh_dir("kill-ingest-ref");
    let daemon = Daemon::start(&db_ref, &[], &[]);
    let (code, _, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 1, "stderr:\n{err}");
    daemon.drain();

    assert_eq!(
        String::from_utf8_lossy(&query_json(&db)),
        String::from_utf8_lossy(&query_json(&db_ref)),
        "killed-and-resubmitted database must converge byte-for-byte"
    );
}

/// Headline, part 2: SIGKILL mid-checkpoint, between writing the new
/// snapshot generation and swapping CURRENT. The orphan generation is
/// discarded on restart, the stable root is intact, and resubmission
/// converges byte-for-byte.
#[test]
fn sigkill_mid_root_swap_recovers_and_converges() {
    let trace = demo_trace("kill-swap");
    let db = fresh_dir("kill-swap");

    let mut daemon = Daemon::start(&db, &[], &[("HAWKSET_TEST_DB_SWAP_DELAY_MS", "30000")]);
    let mut client = submit_bg(&daemon.tcp, "tenant-a", &trace);
    // Wait for the next generation file to hit the disk — at that point
    // the checkpoint is sleeping in the injected window before the
    // CURRENT swap. Killing now is a torn root swap.
    let orphan = db.join("snapshot-000001.json");
    let t0 = Instant::now();
    while !orphan.exists() {
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "snapshot generation 1 never appeared"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    daemon.sigkill();
    let _ = client.wait();

    // Recovery ignores the orphan: CURRENT still names generation 0.
    let daemon = Daemon::start(&db, &[], &[]);
    let before: serde_json::Value =
        serde_json::from_slice(&query_json(&db)).expect("snapshot JSON");
    assert_eq!(before["generation"], 0u64, "orphan generation discarded");
    assert_eq!(before["jobs_recorded"], 0u64);
    let (code, _, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 1, "stderr:\n{err}");
    daemon.drain();

    let db_ref = fresh_dir("kill-swap-ref");
    let daemon = Daemon::start(&db_ref, &[], &[]);
    let (code, _, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 1, "stderr:\n{err}");
    daemon.drain();

    assert_eq!(
        String::from_utf8_lossy(&query_json(&db)),
        String::from_utf8_lossy(&query_json(&db_ref)),
        "mid-swap kill must converge byte-for-byte after resubmission"
    );
}

/// Fairness under a saturated pool: a tenant at its pending cap is shed
/// with an explicit reason while another tenant is still admitted, and
/// the conservation law balances the books afterwards.
#[test]
fn saturated_tenant_sheds_while_others_are_admitted() {
    let trace = demo_trace("fairness");
    let db = fresh_dir("fairness");
    let daemon = Daemon::start(
        &db,
        &["--workers", "1", "--tenant-cap", "1", "--queue-cap", "8"],
        &[("HAWKSET_TEST_JOB_DELAY_MS", "1500")],
    );

    // A#1 occupies the single worker; A#2 fills tenant A's pending cap.
    let mut a1 = submit_bg(&daemon.tcp, "tenant-a", &trace);
    std::thread::sleep(Duration::from_millis(500));
    let mut a2 = submit_bg(&daemon.tcp, "tenant-a", &trace);
    std::thread::sleep(Duration::from_millis(300));

    // A#3 must be shed with the tenant-cap reason — an explicit frame,
    // never a silent drop or an indefinite hang.
    let (code, _, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 3, "shed maps to exit 3; stderr:\n{err}");
    assert!(err.contains("tenant-cap"), "stderr names the cause:\n{err}");

    // A different tenant is still welcome: fairness is per tenant, not
    // a global lockout.
    let (code, _, err) = submit(&daemon.tcp, "tenant-b", &trace);
    assert_eq!(code, 1, "tenant B admitted and completed; stderr:\n{err}");

    assert_eq!(a1.wait().expect("a1").code(), Some(1));
    assert_eq!(a2.wait().expect("a2").code(), Some(1));
    daemon.drain();

    let m = metrics_json(&db);
    assert_conservation(&m);
    assert_eq!(m["submitted"], 4u64);
    assert_eq!(m["admitted"], 3u64);
    assert_eq!(m["shed"]["tenant_cap"], 1u64);
    assert_eq!(m["outcomes"]["completed_races"], 3u64);

    // All three admitted jobs were the same trace: one record, three
    // occurrences, two tenants.
    let snapshot: serde_json::Value =
        serde_json::from_slice(&query_json(&db)).expect("snapshot JSON");
    assert_eq!(snapshot["jobs_recorded"], 3u64);
    assert_eq!(snapshot["records"][0]["occurrences"], 3u64);
}

/// Unix-socket mirror of the headline SIGKILL test: the crash/recover/
/// converge contract is transport-independent. The TCP variant above
/// keeps the historical coverage; this one exercises the framing,
/// admission, and durability path end to end over `--socket`.
#[test]
fn sigkill_mid_ingest_recovers_and_converges_over_unix() {
    let trace = demo_trace("kill-ingest-unix");
    let db = fresh_dir("kill-ingest-unix");
    let sock = std::env::temp_dir().join(format!(
        "hawkset-serve-test-kiu-{}.sock",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&sock);
    let sock_arg = sock.to_str().unwrap().to_string();

    let mut daemon = Daemon::start(
        &db,
        &["--socket", &sock_arg],
        &[("HAWKSET_TEST_JOB_DELAY_MS", "30000")],
    );
    let mut client = submit_bg_unix(&sock, "tenant-a", &trace);
    std::thread::sleep(Duration::from_millis(800));
    daemon.sigkill();
    let _ = client.wait();

    let daemon = Daemon::start(&db, &["--socket", &sock_arg], &[]);
    let before: serde_json::Value =
        serde_json::from_slice(&query_json(&db)).expect("snapshot JSON");
    assert_eq!(before["jobs_recorded"], 0u64, "no torn/partial commit");
    let (code, out, err) = submit_unix(&sock, "tenant-a", &trace);
    assert_eq!(code, 1, "stdout:\n{out}\nstderr:\n{err}");
    daemon.drain();

    let db_ref = fresh_dir("kill-ingest-unix-ref");
    let daemon = Daemon::start(&db_ref, &[], &[]);
    let (code, _, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 1, "stderr:\n{err}");
    daemon.drain();

    assert_eq!(
        String::from_utf8_lossy(&query_json(&db)),
        String::from_utf8_lossy(&query_json(&db_ref)),
        "unix-socket kill-and-resubmit must converge byte-for-byte"
    );
}

/// Unix-socket mirror of the shed-accounting test: explicit sheds and the
/// conservation law are transport-independent too.
#[test]
fn saturated_tenant_sheds_with_balanced_books_over_unix() {
    let trace = demo_trace("fairness-unix");
    let db = fresh_dir("fairness-unix");
    let sock =
        std::env::temp_dir().join(format!("hawkset-serve-test-fu-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let daemon = Daemon::start(
        &db,
        &[
            "--socket",
            sock.to_str().unwrap(),
            "--workers",
            "1",
            "--tenant-cap",
            "1",
            "--queue-cap",
            "8",
        ],
        &[("HAWKSET_TEST_JOB_DELAY_MS", "1500")],
    );

    let mut a1 = submit_bg_unix(&sock, "tenant-a", &trace);
    std::thread::sleep(Duration::from_millis(500));
    let mut a2 = submit_bg_unix(&sock, "tenant-a", &trace);
    std::thread::sleep(Duration::from_millis(300));

    let (code, _, err) = submit_unix(&sock, "tenant-a", &trace);
    assert_eq!(code, 3, "shed maps to exit 3; stderr:\n{err}");
    assert!(err.contains("tenant-cap"), "stderr names the cause:\n{err}");

    let (code, _, err) = submit_unix(&sock, "tenant-b", &trace);
    assert_eq!(code, 1, "tenant B admitted and completed; stderr:\n{err}");

    assert_eq!(a1.wait().expect("a1").code(), Some(1));
    assert_eq!(a2.wait().expect("a2").code(), Some(1));
    daemon.drain();

    let m = metrics_json(&db);
    assert_conservation(&m);
    assert_eq!(m["submitted"], 4u64);
    assert_eq!(m["admitted"], 3u64);
    assert_eq!(m["shed"]["tenant_cap"], 1u64);
    assert_eq!(m["outcomes"]["completed_races"], 3u64);
}

/// Supervisor resilience: a worker panic on the first attempt is caught,
/// the job retries with backoff, and the client still gets its verdict.
#[test]
fn worker_panic_is_retried_transparently() {
    let trace = demo_trace("panic-retry");
    let db = fresh_dir("panic-retry");
    let daemon = Daemon::start(&db, &[], &[("HAWKSET_TEST_PANIC_FIRST_ATTEMPT", "1")]);

    let (code, out, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 1, "stdout:\n{out}\nstderr:\n{err}");
    daemon.drain();

    let m = metrics_json(&db);
    assert_conservation(&m);
    assert!(m["outcomes"]["worker_panics"].as_u64().unwrap() >= 1);
    assert!(m["outcomes"]["retries"].as_u64().unwrap() >= 1);
    assert_eq!(m["outcomes"]["completed_races"], 1u64);
    assert_eq!(m["outcomes"]["failed"], 0u64);
}

/// `query --verify` recomputes the expected database from batch
/// `analyze --json` reports and matches the served state byte-for-byte.
#[test]
fn query_verify_matches_batch_analyze() {
    let trace = demo_trace("verify");
    let db = fresh_dir("verify");

    // Batch reference report.
    let report = hawkset()
        .args(["analyze", "--json", trace.to_str().unwrap()])
        .output()
        .expect("spawn analyze");
    assert_eq!(report.status.code(), Some(1));
    let report_path = std::env::temp_dir().join(format!(
        "hawkset-serve-test-verify-report-{}.json",
        std::process::id()
    ));
    std::fs::write(&report_path, &report.stdout).expect("write report");

    let daemon = Daemon::start(&db, &[], &[]);
    let (code, _, err) = submit(&daemon.tcp, "tenant-a", &trace);
    assert_eq!(code, 1, "stderr:\n{err}");
    let (code, _, err) = submit(&daemon.tcp, "tenant-b", &trace);
    assert_eq!(code, 1, "stderr:\n{err}");
    daemon.drain();

    let out = hawkset()
        .args([
            "query",
            "--db",
            db.to_str().unwrap(),
            "--verify",
            &format!("tenant-a={}", report_path.display()),
            "--verify",
            &format!("tenant-b={}", report_path.display()),
        ])
        .output()
        .expect("spawn query --verify");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
