//! Supervised crash-injection campaigns.
//!
//! HawkSet *infers* which races can corrupt persistent state; PMRace's
//! post-failure stage and Durinn's crash-state testing *confirm* bugs by
//! actually producing the crash state and re-running recovery on it. This
//! module is that confirming loop for the reproduction:
//!
//! 1. each **round** runs an application workload under a
//!    [`CrashInjector`] in continue mode, capturing the persisted-only
//!    pool image at deterministic `(seed, op-index)` crash points;
//! 2. every captured image is **audited**: the pools are remapped into a
//!    fresh environment ([`PmEnv::map_pool_from_image`]), the
//!    application's [`recover`](Application::recover) runs, and
//!    [`check_invariants`](Application::check_invariants) looks for
//!    corruption recovery cannot repair;
//! 3. the round's trace goes through the HawkSet analysis, and any malign
//!    known race it reports is attached to the round — joining "the crash
//!    state is broken" with "this race explains why";
//! 4. the whole round runs in a **panic-isolated worker** with a watchdog
//!    deadline; transient failures (`Panicked`, `TimedOut`) are retried
//!    with capped exponential backoff, while findings
//!    (`RecoveryFailed`, `InvariantViolated`) are terminal;
//! 5. campaign state is **checkpointed** to disk after every round, so a
//!    killed campaign resumes exactly where it stopped, re-running only
//!    unfinished rounds.

use std::collections::{BTreeSet, HashSet};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use hawkset_core::analysis::{AnalysisConfig, Analyzer, FixReport, FixSuggestion, Race};
use hawkset_core::ioplane::{write_atomic, FaultScript, ScriptedIo};
use pm_apps::registry::{KnownRace, RaceClass};
use pm_apps::{Application, ExecOptions};
use pm_runtime::{CrashImage, CrashInjector, CrashMode, PmEnv};
use serde::{Deserialize, Serialize};

use crate::coverage::{extract_coverage, CoveragePoint};
use crate::delay::{DelayInjector, DelaySpec};
use crate::steer::{materialize_workload, round_seed, AxisSet, RoundPlan, Steer};

/// How one campaign round ended. `Ok`, `RecoveryFailed` and
/// `InvariantViolated` are terminal (the latter two are the findings the
/// campaign exists to produce); `Panicked` and `TimedOut` are transient
/// and retried up to [`CrashCampaignConfig::max_retries`] times.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind")]
pub enum RoundOutcome {
    /// Every captured crash state recovered and passed its audit.
    Ok,
    /// The workload (or audit) panicked.
    Panicked {
        /// The panic payload, if it carried a message.
        message: String,
    },
    /// The round missed its watchdog deadline.
    TimedOut,
    /// A captured crash state could not be reopened at all.
    RecoveryFailed {
        /// What recovery reported.
        error: String,
        /// The op index of the crash point whose image failed.
        crash_op: u64,
    },
    /// Recovery succeeded but the audit found corruption.
    InvariantViolated {
        /// Rendered violations, worst image only.
        violations: Vec<String>,
        /// The op index of the crash point whose image failed.
        crash_op: u64,
    },
}

impl RoundOutcome {
    /// Transient outcomes are retried; terminal ones (including findings)
    /// are not.
    pub fn is_transient(&self) -> bool {
        matches!(self, RoundOutcome::Panicked { .. } | RoundOutcome::TimedOut)
    }

    /// `true` for the two finding outcomes.
    pub fn is_finding(&self) -> bool {
        matches!(
            self,
            RoundOutcome::RecoveryFailed { .. } | RoundOutcome::InvariantViolated { .. }
        )
    }
}

/// A malign known race that the round's HawkSet analysis reported — the
/// join between a confirmed crash-state failure and its likely cause.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributedRace {
    /// Table 2 bug id.
    pub bug_id: u32,
    /// Store site frame name.
    pub store_fn: String,
    /// Load site frame name.
    pub load_fn: String,
    /// Ground-truth description.
    pub description: String,
    /// Replay-validated repair suggestion for the matched race (present
    /// only when the campaign ran with
    /// [`CrashCampaignConfig::suggest_fixes`] and the race got one);
    /// skipped when absent so pre-existing campaign records round-trip
    /// byte-identically.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fix: Option<String>,
}

/// Everything recorded about one campaign round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index within the campaign.
    pub round: u64,
    /// Final outcome (after retries).
    pub outcome: RoundOutcome,
    /// Retries spent on transient failures before settling.
    pub retries: u32,
    /// The crash points injected (empty if the round never completed).
    pub crash_points: Vec<u64>,
    /// The measured PM-operation horizon crash points were placed in.
    /// Placement is a pure function of `(seed, round, horizon)`; the
    /// horizon itself varies with thread interleaving, so it is recorded
    /// to keep rounds auditable and re-derivable.
    pub op_horizon: u64,
    /// Crash images captured and audited.
    pub images_captured: u64,
    /// Malign known races the round's trace analysis reported.
    pub attributed: Vec<AttributedRace>,
    /// Wall-clock time including retries.
    pub duration_ms: u64,
    /// The round's deterministic coverage signature (see
    /// [`extract_coverage`]); skipped when empty so pre-existing campaign
    /// records round-trip byte-identically.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub coverage: Vec<CoveragePoint>,
    /// The steered plan the round executed (`None` for uniform rounds).
    /// Carried in the checkpoint so `--resume` rebuilds the corpus from
    /// the records alone.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub plan: Option<RoundPlan>,
}

/// Campaign state persisted after every round — the `--resume` format.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// Application name; a resume against a different app is rejected.
    pub app: String,
    /// Campaign seed; a resume with a different seed is rejected.
    pub seed: u64,
    /// Total rounds the campaign was asked for.
    pub rounds: u64,
    /// Records of the rounds finished so far.
    pub completed: Vec<RoundRecord>,
    /// [`CrashCampaignConfig::fingerprint`] of the recording campaign.
    /// `None` on checkpoints written before steering existed; a steered
    /// resume refuses those, since the records carry no plans to rebuild
    /// the corpus from.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fingerprint: Option<u64>,
}

/// Which transient failure a test harness wants simulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker sleeps past the watchdog deadline.
    Hang,
    /// The worker panics immediately.
    Panic,
}

/// A supervision-test fault: round `round` misbehaves on every attempt
/// numbered below `first_attempts` (so `u32::MAX` means "always").
#[derive(Clone, Copy, Debug)]
pub struct InjectedFault {
    /// The round the fault applies to.
    pub round: u64,
    /// What goes wrong.
    pub kind: FaultKind,
    /// Attempts 0..first_attempts misbehave; later retries run normally.
    pub first_attempts: u32,
}

/// Crash-campaign parameters.
#[derive(Clone, Debug)]
pub struct CrashCampaignConfig {
    /// Rounds to run.
    pub rounds: u64,
    /// Crash points injected per round.
    pub crash_points: usize,
    /// Main-phase operations per round's workload.
    pub main_ops: u64,
    /// Campaign seed: drives per-round workload generation and crash-point
    /// placement.
    pub seed: u64,
    /// Watchdog deadline per attempt.
    pub round_timeout: Duration,
    /// Retries allowed per round for transient failures.
    pub max_retries: u32,
    /// Initial retry backoff (doubles per retry).
    pub retry_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Where to checkpoint after every round (`None` = no checkpointing).
    pub checkpoint: Option<PathBuf>,
    /// Load `checkpoint` first and re-run only unfinished rounds.
    pub resume: bool,
    /// Supervision-test faults (empty in production use).
    pub faults: Vec<InjectedFault>,
    /// Worker threads for each round's race analysis (`0` = available
    /// parallelism); see [`Analyzer::threads`].
    pub analysis_threads: usize,
    /// Compute replay-validated repair suggestions in each round's
    /// analysis and attach them to the attributed ground-truth races.
    pub suggest_fixes: bool,
    /// Coverage-guided steering: derive round plans from a corpus of
    /// coverage-adding rounds instead of uniform per-round seeds.
    pub steer: bool,
    /// Which axes steering may mutate (ignored when `steer` is off).
    pub axes: AxisSet,
    /// Base delay-injection probability applied to every round, in
    /// `[0.0, 1.0]`; validated (not clamped) by [`Self::validate`].
    pub delay_probability: f64,
    /// Base delay upper bound, microseconds.
    pub max_delay_us: u64,
}

impl Default for CrashCampaignConfig {
    fn default() -> Self {
        Self {
            rounds: 4,
            crash_points: 8,
            main_ops: 200,
            seed: 1,
            round_timeout: Duration::from_secs(30),
            max_retries: 2,
            retry_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            checkpoint: None,
            resume: false,
            faults: Vec::new(),
            analysis_threads: 0,
            suggest_fixes: false,
            steer: false,
            axes: AxisSet::default(),
            delay_probability: 0.0,
            max_delay_us: 0,
        }
    }
}

impl CrashCampaignConfig {
    /// Rejects configurations that would previously have been silently
    /// clamped or would corrupt a campaign: zero rounds, and NaN or
    /// out-of-range delay probabilities.
    pub fn validate(&self) -> Result<(), String> {
        if self.rounds == 0 {
            return Err("rounds must be at least 1".into());
        }
        if !self.delay_probability.is_finite() || !(0.0..=1.0).contains(&self.delay_probability) {
            return Err(format!(
                "delay probability must be a finite value in [0, 1], got {}",
                self.delay_probability
            ));
        }
        Ok(())
    }

    /// The base delay schedule every round starts from.
    pub fn base_delay(&self) -> DelaySpec {
        DelaySpec::uniform(self.delay_probability, self.max_delay_us)
    }

    /// Fingerprint of every config knob that changes what rounds *do* —
    /// a resumed campaign must match the checkpoint's fingerprint exactly,
    /// otherwise steering state rebuilt from the records would diverge
    /// from the rounds that produced them.
    pub fn fingerprint(&self) -> u64 {
        let base = self.base_delay();
        let repr = format!(
            "steer={} axes={} crash_points={} main_ops={} delay={}:{}",
            self.steer,
            self.axes.render(),
            self.crash_points,
            self.main_ops,
            base.prob_1024,
            base.max_delay_us,
        );
        // FNV-1a over the canonical rendering.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// One round's slot in the coverage discovery timeline.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageTick {
    /// Round index.
    pub round: u64,
    /// Coverage points this round saw first.
    pub new_points: u64,
    /// Cumulative distinct points after this round.
    pub total_points: u64,
}

/// Version of the coverage report shape.
pub const COVERAGE_REPORT_VERSION: u64 = 1;

/// The `coverage` section of the crashtest JSON report: what the campaign
/// discovered, and when. Deterministic for a deterministic campaign.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// [`COVERAGE_REPORT_VERSION`].
    pub version: u64,
    /// Distinct coverage points across all rounds.
    pub points_total: u64,
    /// Distinct race sites (`Site` points) across all rounds.
    pub race_sites: u64,
    /// Rounds that discovered at least one new point (the corpus size a
    /// steered campaign would rebuild from these records).
    pub corpus_size: u64,
    /// Rendered distinct race sites, sorted (`store -> load`).
    pub sites: Vec<String>,
    /// Per-round discovery timeline, in round order.
    pub timeline: Vec<CoverageTick>,
}

/// The outcome of a whole campaign.
#[derive(Debug)]
pub struct CrashCampaignResult {
    /// One record per round, in round order (resumed rounds included).
    pub records: Vec<RoundRecord>,
    /// Rounds executed by *this* invocation (excludes resumed ones).
    pub executed_this_run: u64,
    /// `true` if prior rounds were loaded from a checkpoint.
    pub resumed_from_checkpoint: bool,
    /// Wall-clock time of this invocation.
    pub duration: Duration,
}

impl CrashCampaignResult {
    /// `true` when every round ended [`RoundOutcome::Ok`].
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(|r| r.outcome == RoundOutcome::Ok)
    }

    /// Rounds whose outcome is a finding.
    pub fn findings(&self) -> impl Iterator<Item = &RoundRecord> {
        self.records.iter().filter(|r| r.outcome.is_finding())
    }

    /// Builds the campaign's coverage report by replaying the records'
    /// coverage signatures in round order (`records` is already sorted).
    pub fn coverage_report(&self) -> CoverageReport {
        let mut seen: BTreeSet<CoveragePoint> = BTreeSet::new();
        let mut timeline = Vec::with_capacity(self.records.len());
        let mut corpus_size = 0u64;
        for rec in &self.records {
            let before = seen.len();
            seen.extend(rec.coverage.iter().cloned());
            let new_points = (seen.len() - before) as u64;
            if new_points > 0 {
                corpus_size += 1;
            }
            timeline.push(CoverageTick {
                round: rec.round,
                new_points,
                total_points: seen.len() as u64,
            });
        }
        let sites: Vec<String> = seen
            .iter()
            .filter_map(|p| match p {
                CoveragePoint::Site { store, load } => Some(format!("{store} -> {load}")),
                _ => None,
            })
            .collect();
        CoverageReport {
            version: COVERAGE_REPORT_VERSION,
            points_total: seen.len() as u64,
            race_sites: sites.len() as u64,
            corpus_size,
            sites,
            timeline,
        }
    }

    /// Aggregates the campaign into a [`CampaignMetrics`] object — the
    /// crashtest counterpart of the analyzer's metrics snapshot, written
    /// by `hawkset crashtest --metrics`.
    ///
    /// Outcome, retry, image and crash-point counters are deterministic
    /// for a deterministic campaign; wall-clock data lives in the `timing`
    /// subobject. `timing.backoff_ms_total` is *reconstructed* from the
    /// retry counts and the configured capped-doubling schedule (the
    /// supervisor sleeps exactly that schedule), so it is deterministic
    /// too, but it sits in `timing` because it measures waiting, not work.
    pub fn metrics(&self, cfg: &CrashCampaignConfig) -> CampaignMetrics {
        let mut m = CampaignMetrics {
            version: CAMPAIGN_METRICS_VERSION,
            rounds_total: self.records.len() as u64,
            ..CampaignMetrics::default()
        };
        for rec in &self.records {
            match rec.outcome {
                RoundOutcome::Ok => m.rounds_ok += 1,
                RoundOutcome::Panicked { .. } => m.rounds_panicked += 1,
                RoundOutcome::TimedOut => m.rounds_timed_out += 1,
                RoundOutcome::RecoveryFailed { .. } => m.rounds_recovery_failed += 1,
                RoundOutcome::InvariantViolated { .. } => m.rounds_invariant_violated += 1,
            }
            m.retries_total += u64::from(rec.retries);
            m.images_captured_total += rec.images_captured;
            m.crash_points_total += rec.crash_points.len() as u64;
            m.races_attributed_total += rec.attributed.len() as u64;
            // First `retries` terms of the capped-doubling schedule
            // b, 2b, 4b, …, max_backoff.
            let mut backoff = cfg.retry_backoff;
            for _ in 0..rec.retries {
                m.timing.backoff_ms_total += backoff.as_millis() as u64;
                backoff = (backoff * 2).min(cfg.max_backoff);
            }
            m.timing.round_ms_total += rec.duration_ms;
        }
        m.timing.total_ms = self.duration.as_secs_f64() * 1e3;
        m
    }
}

/// Version of the campaign metrics shape.
pub const CAMPAIGN_METRICS_VERSION: u64 = 1;

/// Wall-clock section of [`CampaignMetrics`] — everything here is
/// machine- or schedule-dependent (except the reconstructed backoff sum,
/// which still measures waiting rather than work).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignTiming {
    /// Wall-clock time of this invocation.
    pub total_ms: f64,
    /// Sum of per-round durations (including retries).
    pub round_ms_total: u64,
    /// Total supervisor backoff sleep, reconstructed from retry counts and
    /// the configured capped-doubling schedule.
    pub backoff_ms_total: u64,
}

/// Aggregated campaign counters: per-outcome round counts, retry/backoff
/// totals, capture totals. The per-outcome counts partition
/// `rounds_total` (the sum of `rounds_ok`, `rounds_panicked`,
/// `rounds_timed_out`, `rounds_recovery_failed` and
/// `rounds_invariant_violated`) by construction, and the law is checked
/// by [`CampaignMetrics::conservation_violations`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignMetrics {
    /// [`CAMPAIGN_METRICS_VERSION`].
    pub version: u64,
    /// Rounds recorded (resumed rounds included).
    pub rounds_total: u64,
    /// Rounds that ended [`RoundOutcome::Ok`].
    pub rounds_ok: u64,
    /// Rounds that settled as [`RoundOutcome::Panicked`] after retries.
    pub rounds_panicked: u64,
    /// Rounds that settled as [`RoundOutcome::TimedOut`] after retries.
    pub rounds_timed_out: u64,
    /// Rounds ending in [`RoundOutcome::RecoveryFailed`].
    pub rounds_recovery_failed: u64,
    /// Rounds ending in [`RoundOutcome::InvariantViolated`].
    pub rounds_invariant_violated: u64,
    /// Transient-failure retries across all rounds.
    pub retries_total: u64,
    /// Crash images captured and audited across all rounds.
    pub images_captured_total: u64,
    /// Crash points injected across all rounds.
    pub crash_points_total: u64,
    /// Malign known races attributed across all rounds.
    pub races_attributed_total: u64,
    /// Wall-clock section.
    pub timing: CampaignTiming,
}

impl CampaignMetrics {
    /// Pretty-printed standalone JSON (the `--metrics` file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("campaign metrics serialization cannot fail")
    }

    /// Checks the per-outcome round accounting; one line per violation.
    pub fn conservation_violations(&self) -> Vec<String> {
        let rhs = self.rounds_ok
            + self.rounds_panicked
            + self.rounds_timed_out
            + self.rounds_recovery_failed
            + self.rounds_invariant_violated;
        if self.rounds_total != rhs {
            vec![format!(
                "campaign law violated: rounds_total ({}) != sum of per-outcome counts ({})",
                self.rounds_total, rhs,
            )]
        } else {
            Vec::new()
        }
    }
}

/// Matches a report against the malign ground truth, returning every
/// Table 2 bug the analysis confirmed (deduplicated by bug id). When the
/// report carries repair suggestions, each attributed bug is joined with
/// the suggestion targeting its matched race.
pub fn attribute_races(
    races: &[Race],
    known: &[KnownRace],
    fixes: Option<&FixReport>,
) -> Vec<AttributedRace> {
    known
        .iter()
        .filter(|k| k.class == RaceClass::Malign)
        .filter_map(|k| {
            let race = races.iter().find(|r| k.matches(r))?;
            let fix = fixes.and_then(|f| {
                f.suggestions
                    .iter()
                    .find(|s| s.race == race.key)
                    .map(FixSuggestion::summary)
            });
            Some(AttributedRace {
                bug_id: k.id,
                store_fn: k.store_fn.to_string(),
                load_fn: k.load_fn.to_string(),
                description: k.description.to_string(),
                fix,
            })
        })
        .collect()
}

/// Loads a checkpoint file.
pub fn load_checkpoint(path: &Path) -> Result<CampaignCheckpoint, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    serde_json::from_str(&raw)
        .map_err(|e| format!("checkpoint {} is not valid: {e}", path.display()))
}

/// Writes a checkpoint atomically (temp file + rename), so a crash while
/// checkpointing never corrupts the previous checkpoint.
fn write_checkpoint(path: &Path, ck: &CampaignCheckpoint) -> Result<(), String> {
    let json = serde_json::to_string_pretty(ck)
        .map_err(|e| format!("cannot serialize checkpoint: {e}"))?;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, json)
        .map_err(|e| format!("cannot write checkpoint {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot install checkpoint {}: {e}", path.display()))
}

/// What a worker sends back when it finishes (as opposed to panicking or
/// hanging).
struct WorkerReport {
    outcome: RoundOutcome,
    crash_points: Vec<u64>,
    op_horizon: u64,
    images_captured: u64,
    attributed: Vec<AttributedRace>,
    coverage: Vec<CoveragePoint>,
}

/// Audits one captured crash image: remap every pool (in mapping order, so
/// addresses match), run recovery, then the invariant audit. Returns the
/// failure outcome, or `None` if the image is sound.
fn audit_image(app: &dyn Application, image: &CrashImage) -> Option<RoundOutcome> {
    let renv = PmEnv::new();
    let pools: Vec<_> = image
        .pools
        .iter()
        .map(|p| renv.map_pool_from_image(p.path.clone(), p.bytes.clone()))
        .collect();
    let first = pools.first()?;
    let t = renv.main_thread();
    match app.recover(first, &t) {
        Err(e) => Some(RoundOutcome::RecoveryFailed {
            error: e.0,
            crash_op: image.op_index,
        }),
        Ok(()) => {
            let violations = app.check_invariants(first, &t);
            if violations.is_empty() {
                None
            } else {
                Some(RoundOutcome::InvariantViolated {
                    violations: violations.iter().map(ToString::to_string).collect(),
                    crash_op: image.op_index,
                })
            }
        }
    }
}

/// Runs the plan's storage-fault probe: a scripted-fault atomic write in
/// a fresh temp directory. The probe exercises the checkpoint/artifact
/// write path (`write_atomic`) under the scheduled fault and reports
/// whether it survived — an io-axis coverage point.
fn io_probe(script: &str) -> Option<CoveragePoint> {
    let faults = FaultScript::parse(script).ok()?;
    let plane = ScriptedIo::new(faults);
    let dir = std::env::temp_dir().join(format!(
        "hawkset-io-probe-{}-{:x}",
        std::process::id(),
        // Unique per probe within the process without consulting a clock.
        {
            use std::sync::atomic::{AtomicU64, Ordering};
            static N: AtomicU64 = AtomicU64::new(0);
            N.fetch_add(1, Ordering::Relaxed)
        }
    ));
    std::fs::create_dir_all(&dir).ok()?;
    let survived = write_atomic(&plane, "campaign", &dir, "probe.json", b"{}\n").is_ok();
    let _ = std::fs::remove_dir_all(&dir);
    Some(CoveragePoint::Io {
        script: script.to_string(),
        survived,
    })
}

/// One round, run to completion on the calling thread: materialize the
/// plan's workload, measure the op horizon, re-run with the plan's delay
/// schedule and seeded crash points, audit every captured image, analyze
/// the trace for attributable races, and extract the round's coverage
/// signature.
fn round_body(
    app: &Arc<dyn Application>,
    main_ops: u64,
    plan: &RoundPlan,
    analysis_threads: usize,
    suggest_fixes: bool,
) -> WorkerReport {
    // Pass 1 — measure the run's PM-operation horizon so crash points land
    // inside it. An injector with no points is a pure op counter; the
    // probe pass never installs the delay hook (delays change timing, not
    // the op count, so the horizon is cheaper to measure undelayed).
    let probe = CrashInjector::at_points([], CrashMode::Continue);
    let workload = materialize_workload(app.as_ref(), plan, main_ops);
    let opts = ExecOptions {
        crash: Some(Arc::clone(&probe)),
        ..Default::default()
    };
    app.execute_with(&workload, &opts);
    let horizon = probe.op_count();

    // Pass 2 — same workload under the plan's delay schedule and seeded
    // crash points, continue mode: one run yields every candidate crash
    // state plus a full analysis trace.
    let injector = CrashInjector::seeded(
        plan.crash_salt,
        plan.crash_points,
        horizon,
        CrashMode::Continue,
    );
    let delay = (!plan.delay.is_noop()).then(|| {
        DelayInjector::with_spec(
            plan.workload_seed ^ 0x5851_f42d_4c95_7f2d,
            plan.delay.clone(),
        )
    });
    let opts = ExecOptions {
        hook: delay.as_ref().map(DelayInjector::hook),
        crash: Some(Arc::clone(&injector)),
        ..Default::default()
    };
    let result = app.execute_with(&workload, &opts);

    let mut outcome = RoundOutcome::Ok;
    if app.supports_recovery() {
        for image in injector.take_images() {
            if let Some(failure) = audit_image(app.as_ref(), &image) {
                outcome = failure;
                break; // first failing crash point, in op order
            }
        }
    }
    let mut acfg = AnalysisConfig::default();
    if let Some(budget) = plan.memory_budget {
        acfg.budget.memory_budget = Some(budget);
    }
    let report = Analyzer::new(acfg)
        .threads(analysis_threads)
        .suggest_fixes(suggest_fixes)
        .run(&result.trace);
    let mut coverage = extract_coverage(&report, &outcome);
    if let Some(script) = &plan.io_script {
        if let Some(point) = io_probe(script) {
            coverage.push(point);
            coverage.sort();
            coverage.dedup();
        }
    }
    WorkerReport {
        outcome,
        crash_points: injector.points().to_vec(),
        op_horizon: horizon,
        images_captured: injector.images_captured(),
        attributed: attribute_races(&report.races, &app.known_races(), report.fixes.as_ref()),
        coverage,
    }
}

/// Renders a panic payload for the `Panicked` outcome.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(c) = payload.downcast_ref::<pm_runtime::SimulatedCrash>() {
        c.to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs one round under supervision: panic-isolated worker, watchdog
/// deadline, capped-backoff retries for transient failures.
fn run_supervised_round(
    app: &Arc<dyn Application>,
    cfg: &CrashCampaignConfig,
    round: u64,
    plan: &RoundPlan,
    fault: Option<InjectedFault>,
) -> RoundRecord {
    let started = Instant::now();
    let mut attempt: u32 = 0;
    let mut backoff = cfg.retry_backoff;
    loop {
        let (tx, rx) = mpsc::channel::<Result<WorkerReport, String>>();
        let worker_app = Arc::clone(app);
        let worker_plan = plan.clone();
        let (main_ops, timeout) = (cfg.main_ops, cfg.round_timeout);
        let analysis_threads = cfg.analysis_threads;
        let suggest_fixes = cfg.suggest_fixes;
        let this_attempt = attempt;
        // Detached worker: a hung round must not block the campaign, so no
        // scoped threads — the watchdog simply abandons the receiver.
        let spawned = std::thread::Builder::new()
            .name(format!("crashtest-r{round}-a{attempt}"))
            .spawn(move || {
                if let Some(f) = fault {
                    if this_attempt < f.first_attempts {
                        match f.kind {
                            FaultKind::Hang => {
                                // Out-sleep the watchdog, then exit quietly;
                                // the supervisor stopped listening long ago.
                                std::thread::sleep(timeout.saturating_mul(4));
                                return;
                            }
                            FaultKind::Panic => {
                                let outcome = std::panic::catch_unwind(|| -> () {
                                    panic!("injected fault: panic in round {round}")
                                })
                                .expect_err("the injected panic fires");
                                let _ = tx.send(Err(panic_message(&*outcome)));
                                return;
                            }
                        }
                    }
                }
                let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    round_body(
                        &worker_app,
                        main_ops,
                        &worker_plan,
                        analysis_threads,
                        suggest_fixes,
                    )
                }));
                // The supervisor may have timed this attempt out already.
                let _ = tx.send(out.map_err(|p| panic_message(&*p)));
            });
        let transient = match spawned {
            Err(e) => RoundOutcome::Panicked {
                message: format!("cannot spawn worker: {e}"),
            },
            Ok(_) => match rx.recv_timeout(cfg.round_timeout) {
                Ok(Ok(report)) => {
                    return RoundRecord {
                        round,
                        outcome: report.outcome,
                        retries: attempt,
                        crash_points: report.crash_points,
                        op_horizon: report.op_horizon,
                        images_captured: report.images_captured,
                        attributed: report.attributed,
                        duration_ms: started.elapsed().as_millis() as u64,
                        coverage: report.coverage,
                        plan: cfg.steer.then(|| plan.clone()),
                    };
                }
                Ok(Err(message)) => RoundOutcome::Panicked { message },
                Err(mpsc::RecvTimeoutError::Timeout) => RoundOutcome::TimedOut,
                Err(mpsc::RecvTimeoutError::Disconnected) => RoundOutcome::Panicked {
                    message: "worker thread died without reporting".into(),
                },
            },
        };
        if attempt < cfg.max_retries {
            attempt += 1;
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(cfg.max_backoff);
            continue;
        }
        return RoundRecord {
            round,
            outcome: transient,
            retries: attempt,
            crash_points: Vec::new(),
            op_horizon: 0,
            images_captured: 0,
            attributed: Vec::new(),
            duration_ms: started.elapsed().as_millis() as u64,
            coverage: Vec::new(),
            plan: cfg.steer.then(|| plan.clone()),
        };
    }
}

/// Runs (or resumes) a supervised crash campaign against `app`.
///
/// With [`CrashCampaignConfig::resume`] set and an existing checkpoint at
/// [`CrashCampaignConfig::checkpoint`], previously completed rounds are
/// loaded and only unfinished rounds execute; the checkpoint must belong
/// to the same application and seed. The checkpoint (when configured) is
/// rewritten atomically after every round.
pub fn run_crash_campaign(
    app: &Arc<dyn Application>,
    cfg: &CrashCampaignConfig,
) -> Result<CrashCampaignResult, String> {
    cfg.validate()?;
    let started = Instant::now();
    let mut completed: Vec<RoundRecord> = Vec::new();
    let mut resumed = false;
    if cfg.resume {
        if let Some(path) = &cfg.checkpoint {
            if path.exists() {
                let ck = load_checkpoint(path)?;
                if ck.app != app.name() {
                    return Err(format!(
                        "checkpoint belongs to `{}`, campaign targets `{}`",
                        ck.app,
                        app.name()
                    ));
                }
                if ck.seed != cfg.seed {
                    return Err(format!(
                        "checkpoint was recorded with seed {}, campaign uses {}",
                        ck.seed, cfg.seed
                    ));
                }
                match ck.fingerprint {
                    Some(f) if f != cfg.fingerprint() => {
                        return Err(format!(
                            "checkpoint was recorded under a different campaign configuration \
                             (fingerprint {f:#018x} != {:#018x}); steering state rebuilt from \
                             its records would diverge from the rounds that produced them",
                            cfg.fingerprint()
                        ));
                    }
                    None if cfg.steer => {
                        return Err("checkpoint predates steering (no config fingerprint); \
                             a steered campaign cannot resume from it"
                            .into());
                    }
                    _ => {}
                }
                completed = ck.completed;
                resumed = true;
            }
        }
    }
    // The steering state is rebuilt purely from the checkpointed records:
    // plan derivation for round r only observes rounds before r, so
    // replaying the records in round order puts the planner exactly where
    // the interrupted campaign left it.
    let mut steer = cfg.steer.then(|| {
        Steer::new(
            cfg.seed,
            cfg.axes.clone(),
            cfg.crash_points,
            cfg.base_delay(),
        )
    });
    if let Some(s) = steer.as_mut() {
        let mut replay = completed.clone();
        replay.sort_by_key(|r| r.round);
        for rec in &replay {
            s.absorb(rec.round, rec.plan.as_ref(), &rec.coverage);
        }
    }
    let done: HashSet<u64> = completed.iter().map(|r| r.round).collect();
    let mut executed = 0;
    for round in 0..cfg.rounds {
        if done.contains(&round) {
            continue;
        }
        let plan = match &steer {
            Some(s) => s.plan(round),
            None => {
                let mut plan = RoundPlan::baseline(round_seed(cfg.seed, round), cfg.crash_points);
                plan.delay = cfg.base_delay();
                plan
            }
        };
        let fault = cfg.faults.iter().find(|f| f.round == round).copied();
        let record = run_supervised_round(app, cfg, round, &plan, fault);
        if let Some(s) = steer.as_mut() {
            s.absorb(round, record.plan.as_ref(), &record.coverage);
        }
        completed.push(record);
        executed += 1;
        if let Some(path) = &cfg.checkpoint {
            let ck = CampaignCheckpoint {
                app: app.name().to_string(),
                seed: cfg.seed,
                rounds: cfg.rounds,
                completed: completed.clone(),
                fingerprint: Some(cfg.fingerprint()),
            };
            write_checkpoint(path, &ck)?;
        }
    }
    completed.sort_by_key(|r| r.round);
    Ok(CrashCampaignResult {
        records: completed,
        executed_this_run: executed,
        resumed_from_checkpoint: resumed,
        duration: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_apps::fastfair::FastFairApp;

    fn tiny_cfg() -> CrashCampaignConfig {
        CrashCampaignConfig {
            rounds: 2,
            crash_points: 3,
            main_ops: 60,
            seed: 5,
            round_timeout: Duration::from_secs(60),
            max_retries: 1,
            retry_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            checkpoint: None,
            resume: false,
            faults: Vec::new(),
            analysis_threads: 0,
            suggest_fixes: false,
            ..Default::default()
        }
    }

    #[test]
    fn campaign_runs_all_rounds_and_captures_images() {
        let app: Arc<dyn Application> = Arc::new(FastFairApp);
        let result = run_crash_campaign(&app, &tiny_cfg()).expect("campaign runs");
        assert_eq!(result.records.len(), 2);
        assert_eq!(result.executed_this_run, 2);
        assert!(!result.resumed_from_checkpoint);
        for rec in &result.records {
            assert!(
                !rec.crash_points.is_empty(),
                "round {} placed no crash points",
                rec.round
            );
            assert!(
                rec.images_captured > 0,
                "round {} captured no images",
                rec.round
            );
            assert!(
                !rec.outcome.is_transient(),
                "round {} ended transient: {:?}",
                rec.round,
                rec.outcome
            );
        }
    }

    /// Campaign metrics: per-outcome counts partition the rounds, capture
    /// totals add up, and the reconstructed backoff sum follows the
    /// capped-doubling schedule.
    #[test]
    fn campaign_metrics_account_for_every_round() {
        let cfg = tiny_cfg();
        let result = CrashCampaignResult {
            records: vec![
                RoundRecord {
                    round: 0,
                    outcome: RoundOutcome::Ok,
                    retries: 0,
                    crash_points: vec![3, 9],
                    op_horizon: 40,
                    images_captured: 2,
                    attributed: Vec::new(),
                    duration_ms: 10,
                    coverage: Vec::new(),
                    plan: None,
                },
                RoundRecord {
                    round: 1,
                    outcome: RoundOutcome::TimedOut,
                    retries: 3,
                    crash_points: vec![5],
                    op_horizon: 40,
                    images_captured: 1,
                    attributed: Vec::new(),
                    duration_ms: 30,
                    coverage: Vec::new(),
                    plan: None,
                },
            ],
            executed_this_run: 2,
            resumed_from_checkpoint: false,
            duration: Duration::from_millis(55),
        };
        let m = result.metrics(&cfg);
        assert!(m.conservation_violations().is_empty());
        assert_eq!(m.version, CAMPAIGN_METRICS_VERSION);
        assert_eq!(m.rounds_total, 2);
        assert_eq!(m.rounds_ok, 1);
        assert_eq!(m.rounds_timed_out, 1);
        assert_eq!(m.retries_total, 3);
        assert_eq!(m.crash_points_total, 3);
        assert_eq!(m.images_captured_total, 3);
        // Schedule from tiny_cfg: 1ms, 2ms, 4ms (cap 8ms never reached).
        assert_eq!(m.timing.backoff_ms_total, 7);
        assert_eq!(m.timing.round_ms_total, 40);
        let back: CampaignMetrics = serde_json::from_str(&m.to_json()).unwrap();
        assert_eq!(back, m);

        let mut broken = m.clone();
        broken.rounds_ok = 0;
        assert_eq!(broken.conservation_violations().len(), 1);
    }

    /// Crash placement is a pure function of `(campaign seed, round,
    /// measured horizon)`. The horizon itself varies with concurrent
    /// interleaving, so the record keeps it; re-deriving the seeded
    /// injector from the recorded horizon must reproduce the placement
    /// exactly, and a different campaign seed must place differently.
    #[test]
    fn crash_points_are_rederivable_from_recorded_seed_and_horizon() {
        let app: Arc<dyn Application> = Arc::new(FastFairApp);
        let cfg = tiny_cfg();
        let result = run_crash_campaign(&app, &cfg).expect("campaign runs");
        for rec in &result.records {
            let round_seed = cfg.seed ^ rec.round.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let rederived = CrashInjector::seeded(
                round_seed,
                cfg.crash_points,
                rec.op_horizon,
                CrashMode::Continue,
            );
            assert_eq!(
                rec.crash_points,
                rederived.points().to_vec(),
                "round {}: placement must be reproducible from (seed, horizon)",
                rec.round
            );
            let other = CrashInjector::seeded(
                round_seed ^ 99,
                cfg.crash_points,
                rec.op_horizon,
                CrashMode::Continue,
            );
            assert_ne!(
                rec.crash_points,
                other.points().to_vec(),
                "round {}: a different seed must place crash points differently",
                rec.round
            );
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let ck = CampaignCheckpoint {
            app: "Fast-Fair".into(),
            seed: 7,
            rounds: 3,
            completed: vec![RoundRecord {
                round: 0,
                outcome: RoundOutcome::InvariantViolated {
                    violations: vec!["fence-key: leaf holds key 9".into()],
                    crash_op: 1234,
                },
                retries: 1,
                crash_points: vec![10, 1234],
                op_horizon: 4000,
                images_captured: 2,
                attributed: vec![AttributedRace {
                    bug_id: 1,
                    store_fn: "fastfair::insert_into_parent".into(),
                    load_fn: "fastfair::find_leaf".into(),
                    description: "load unpersisted pointer".into(),
                    fix: None,
                }],
                duration_ms: 42,
                coverage: vec![CoveragePoint::Audit {
                    outcome: "invariant_violated".into(),
                    detail: "fence-key".into(),
                }],
                plan: None,
            }],
            fingerprint: Some(0xdead_beef),
        };
        let json = serde_json::to_string_pretty(&ck).expect("serializes");
        let back: CampaignCheckpoint = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.app, ck.app);
        assert_eq!(back.completed.len(), 1);
        assert_eq!(back.completed[0].outcome, ck.completed[0].outcome);
        assert_eq!(back.completed[0].attributed, ck.completed[0].attributed);
    }

    #[test]
    fn transient_fault_is_retried_and_recovers() {
        let app: Arc<dyn Application> = Arc::new(FastFairApp);
        let cfg = CrashCampaignConfig {
            rounds: 1,
            max_retries: 2,
            faults: vec![InjectedFault {
                round: 0,
                kind: FaultKind::Panic,
                first_attempts: 1,
            }],
            ..tiny_cfg()
        };
        let result = run_crash_campaign(&app, &cfg).expect("campaign runs");
        let rec = &result.records[0];
        assert_eq!(rec.retries, 1, "one retry consumed by the injected panic");
        assert!(
            !rec.outcome.is_transient(),
            "the retry must have succeeded: {:?}",
            rec.outcome
        );
    }
}
