//! Design-choice ablations (DESIGN.md §4/§5): what each analysis component
//! buys, measured on the real applications.
//!
//! For every application (at `--ops`, default 2 000) one trace is recorded
//! and analyzed under five configurations:
//!
//! * **default** — the full pipeline;
//! * **no IRH** — §3.1.3 off: initialization false positives return;
//! * **no HB** — §3.1.2 off: create/join-ordered accesses are paired,
//!   adding Figure 3-style false positives;
//! * **store-store** — §3.1.1 reversed: stores paired against stores,
//!   showing the report explosion HawkSet's design avoids;
//! * **eADR** — §2.1: the persistent domain covers the cache, so every
//!   report disappears (and with it the need for this tool).

use hawkset_bench::{apps, arg_u64, record_app, TextTable};
use hawkset_core::analysis::{AnalysisConfig, Analyzer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ops = arg_u64(&args, "--ops", 2_000);
    let seed = arg_u64(&args, "--seed", 42);

    println!("HawkSet reproduction — design ablations (workload: {ops} ops, seed {seed})\n");
    let mut table = TextTable::new(&[
        "Application",
        "default",
        "no IRH",
        "no HB",
        "store-store",
        "eADR",
    ]);

    let configs: [(&str, AnalysisConfig); 5] = [
        ("default", AnalysisConfig::default()),
        (
            "no-irh",
            AnalysisConfig {
                irh: false,
                ..Default::default()
            },
        ),
        (
            "no-hb",
            AnalysisConfig {
                use_hb: false,
                ..Default::default()
            },
        ),
        (
            "store-store",
            AnalysisConfig {
                check_store_store: true,
                ..Default::default()
            },
        ),
        (
            "eadr",
            AnalysisConfig {
                eadr: true,
                ..Default::default()
            },
        ),
    ];

    for app in apps() {
        let (trace, _) = record_app(app.as_ref(), ops, seed);
        let counts: Vec<String> = configs
            .iter()
            .map(|(_, cfg)| {
                Analyzer::new(cfg.clone())
                    .run(&trace)
                    .races
                    .len()
                    .to_string()
            })
            .collect();
        let mut row = vec![app.name().to_string()];
        row.extend(counts);
        table.row(row);
    }

    println!("{}", table.render());
    println!("Expected shapes:");
    println!("  no IRH      >= default   (the heuristic only prunes)");
    println!("  no HB       >= default   (vector clocks only prune)");
    println!("  store-store >= default   (extra pass only adds)");
    println!("  eADR        == 0         (visibility implies durability)");
}
