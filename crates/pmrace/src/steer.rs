//! Coverage-guided campaign steering.
//!
//! A steered crash campaign treats each round as a point in a multi-axis
//! configuration space ([`Axis`]): workload mutation, targeted delay
//! schedules, crash-point placement, worker thread count, analysis
//! memory-budget pressure, and scripted storage faults. Rounds that add
//! new [`CoveragePoint`]s enter an AFL-style corpus; later rounds are
//! derived by weighted mutation of corpus entries instead of fresh
//! randomness.
//!
//! Everything is deterministic in the campaign seed: the plan for round
//! *r* is a pure function of `(seed, r, records of rounds 0..r-1)`. A
//! resumed campaign replays the checkpointed records through
//! [`Steer::absorb`] and continues steering exactly where it stopped —
//! no separate corpus state is persisted, so the checkpoint can never
//! disagree with the records it carries.

use std::collections::BTreeSet;

use pm_apps::{AppWorkload, Application};
use pm_workloads::mutate_step;
use serde::{Deserialize, Serialize};

use crate::coverage::CoveragePoint;
use crate::delay::{DelayRule, DelaySpec, PointClass};

/// One steerable campaign axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Axis {
    /// Mutate the round's workload (chained [`mutate_step`]s).
    Workload,
    /// Mutate the delay schedule (base layer + targeted rules).
    Delay,
    /// Re-salt crash-point placement and vary the point count.
    Crash,
    /// Re-deal the workload across a different worker thread count.
    Threads,
    /// Constrain the round's analysis memory budget.
    Memory,
    /// Run a scripted storage-fault probe alongside the round.
    Io,
}

impl Axis {
    /// All axes, in canonical order.
    pub const ALL: [Axis; 6] = [
        Axis::Workload,
        Axis::Delay,
        Axis::Crash,
        Axis::Threads,
        Axis::Memory,
        Axis::Io,
    ];

    /// The CLI/fingerprint name.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Workload => "workload",
            Axis::Delay => "delay",
            Axis::Crash => "crash",
            Axis::Threads => "threads",
            Axis::Memory => "memory",
            Axis::Io => "io",
        }
    }

    fn parse(s: &str) -> Option<Axis> {
        Axis::ALL.into_iter().find(|a| a.name() == s)
    }
}

/// A set of enabled axes — canonically sorted and deduplicated, so its
/// rendering (and therefore the config fingerprint) is stable regardless
/// of the order the user listed them in.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AxisSet(Vec<Axis>);

impl Default for AxisSet {
    /// Every axis except `io` — storage-fault probes touch the real
    /// filesystem, so they are opt-in.
    fn default() -> Self {
        AxisSet(vec![
            Axis::Workload,
            Axis::Delay,
            Axis::Crash,
            Axis::Threads,
            Axis::Memory,
        ])
    }
}

impl AxisSet {
    /// Parses a comma-separated axis list (`workload,delay,io`). Rejects
    /// unknown names and empty lists.
    pub fn parse(s: &str) -> Result<AxisSet, String> {
        let mut axes: Vec<Axis> = Vec::new();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let axis = Axis::parse(part).ok_or_else(|| {
                format!(
                    "unknown axis `{part}` (one of: {})",
                    Axis::ALL.map(Axis::name).join(", ")
                )
            })?;
            axes.push(axis);
        }
        if axes.is_empty() {
            return Err("axis list is empty".into());
        }
        axes.sort();
        axes.dedup();
        Ok(AxisSet(axes))
    }

    /// The enabled axes, canonical order.
    pub fn axes(&self) -> &[Axis] {
        &self.0
    }

    /// Canonical comma-joined rendering (the fingerprint input).
    pub fn render(&self) -> String {
        self.0
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// `true` when `axis` is enabled.
    pub fn contains(&self, axis: Axis) -> bool {
        self.0.contains(&axis)
    }
}

/// One round's point in the axis space. Every field is a *recipe*, not a
/// result: plans serialize into checkpoints and re-materialize into
/// identical rounds on resume.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundPlan {
    /// Seed for the app's default workload generator.
    pub workload_seed: u64,
    /// Chain of [`mutate_step`] seeds folded over the default workload.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub mutations: Vec<u64>,
    /// The round's delay schedule.
    #[serde(default, skip_serializing_if = "DelaySpec::is_noop")]
    pub delay: DelaySpec,
    /// Seed for crash-point placement within the measured horizon.
    pub crash_salt: u64,
    /// Crash points to place.
    pub crash_points: usize,
    /// Re-deal the workload across this many worker threads (`0` = keep
    /// the workload's own count).
    #[serde(default, skip_serializing_if = "is_zero")]
    pub threads: usize,
    /// Memory budget for the round's analysis (`None` = unbounded).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub memory_budget: Option<u64>,
    /// Storage-fault schedule for the round's artifact probe.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub io_script: Option<String>,
    /// Corpus entry (round index) this plan was derived from.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parent: Option<u64>,
}

fn is_zero(n: &usize) -> bool {
    *n == 0
}

impl RoundPlan {
    /// The uniform baseline plan for `round_seed` — byte-for-byte the
    /// behaviour of a pre-steering campaign round: default workload,
    /// no delays, seeded crash placement, no pressure.
    pub fn baseline(round_seed: u64, crash_points: usize) -> RoundPlan {
        RoundPlan {
            workload_seed: round_seed,
            mutations: Vec::new(),
            delay: DelaySpec::none(),
            crash_salt: round_seed,
            crash_points,
            threads: 0,
            memory_budget: None,
            io_script: None,
            parent: None,
        }
    }
}

/// Materializes a plan's workload for `app`: default workload from the
/// plan's seed, then the mutation chain and thread re-deal (both apply
/// only to YCSB-shaped workloads; other shapes steer via the remaining
/// axes).
pub fn materialize_workload(app: &dyn Application, plan: &RoundPlan, main_ops: u64) -> AppWorkload {
    let mut wl = app.default_workload(main_ops, plan.workload_seed);
    if let AppWorkload::Ycsb(w) = &mut wl {
        for &step in &plan.mutations {
            *w = mutate_step(w, step);
        }
        if plan.threads > 0 {
            *w = w.reshard(plan.threads);
        }
    }
    wl
}

/// The per-round seed derivation shared by uniform and steered campaigns.
pub fn round_seed(campaign_seed: u64, round: u64) -> u64 {
    campaign_seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// SplitMix64 — a tiny self-contained deterministic RNG, so plan
/// derivation never depends on an external RNG crate's stream stability.
struct Mix(u64);

impl Mix {
    fn new(seed: u64) -> Mix {
        Mix(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A corpus entry: a plan that added coverage, weighted by how much.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// The round that executed the plan.
    pub round: u64,
    /// The plan itself.
    pub plan: RoundPlan,
    /// Coverage points this round saw first.
    pub new_points: u64,
}

/// Rounds 0..WARMUP always run the uniform baseline (with per-round
/// seeds), so the corpus starts from the same ground truth a uniform
/// campaign explores first.
const WARMUP_ROUNDS: u64 = 2;

/// Longest mutation chain a plan may carry before the oldest steps are
/// shed; bounds checkpoint size and re-materialization cost.
const MAX_MUTATION_CHAIN: usize = 12;

/// Most delay rules a schedule may accumulate.
const MAX_DELAY_RULES: usize = 4;

/// The io-axis fault-script palette (site `campaign` is the artifact
/// probe's site label).
const IO_SCRIPTS: [&str; 4] = [
    "campaign:write:0:torn",
    "campaign:fsync:0:eio",
    "campaign:write:*:enospc",
    "campaign:rename:0:eio",
];

/// Static axis-selection weights (see the comment at the pick site).
fn axis_weight(axis: Axis) -> u64 {
    match axis {
        Axis::Workload => 4,
        Axis::Delay => 3,
        Axis::Threads => 2,
        Axis::Crash | Axis::Memory | Axis::Io => 1,
    }
}

/// The memory-axis budget palette, bytes (`0` means "lift the budget").
/// Budgets start at 256 KiB: tight enough to exercise eviction and emit
/// `Analysis` pressure points, loose enough that budgeted rounds still
/// report most race sites instead of burning the round.
const MEMORY_BUDGETS: [u64; 4] = [0, 1 << 18, 1 << 20, 1 << 22];

/// The coverage-guided round planner. Feed every finished round to
/// [`absorb`](Steer::absorb) (in round order); ask [`plan`](Steer::plan)
/// for the next round's configuration.
pub struct Steer {
    seed: u64,
    axes: AxisSet,
    base_crash_points: usize,
    base_delay: DelaySpec,
    corpus: Vec<CorpusEntry>,
    seen: BTreeSet<CoveragePoint>,
}

impl Steer {
    /// A fresh planner for a campaign with `seed` steering the listed
    /// axes; `base_crash_points` anchors the crash axis's range and
    /// `base_delay` is the schedule baseline plans start from.
    pub fn new(seed: u64, axes: AxisSet, base_crash_points: usize, base_delay: DelaySpec) -> Steer {
        Steer {
            seed,
            axes,
            base_crash_points,
            base_delay,
            corpus: Vec::new(),
            seen: BTreeSet::new(),
        }
    }

    /// The uniform baseline plan for `round` under this campaign's
    /// configuration.
    fn baseline(&self, round: u64) -> RoundPlan {
        let mut plan = RoundPlan::baseline(round_seed(self.seed, round), self.base_crash_points);
        plan.delay = self.base_delay.clone();
        plan
    }

    /// Coverage points seen so far.
    pub fn seen(&self) -> &BTreeSet<CoveragePoint> {
        &self.seen
    }

    /// Corpus entries accumulated so far.
    pub fn corpus(&self) -> &[CorpusEntry] {
        &self.corpus
    }

    /// Derives round `round`'s plan — a pure function of `(seed, round)`
    /// and the corpus state built from rounds before it. Calling it any
    /// number of times returns the same plan.
    pub fn plan(&self, round: u64) -> RoundPlan {
        let rseed = round_seed(self.seed, round);
        if round < WARMUP_ROUNDS || self.corpus.is_empty() {
            return self.baseline(round);
        }
        let mut rng = Mix::new(rseed ^ 0x57ee_12d0_c0ff_ee42);
        // Weighted pick: entries that discovered more get more derivations.
        let total: u64 = self.corpus.iter().map(|e| e.new_points).sum();
        let mut ticket = rng.below(total.max(1));
        let mut chosen = self.corpus.last().expect("corpus non-empty");
        for entry in &self.corpus {
            if ticket < entry.new_points {
                chosen = entry;
                break;
            }
            ticket -= entry.new_points;
        }
        // Derived rounds start from the round's own baseline — a *fresh*
        // workload seed, exactly what a uniform round would run — and
        // graft the chosen corpus entry's perturbation genotype on top:
        // its mutation chain, delay schedule, thread re-deal and pressure
        // settings. Workload-space exploration therefore never regresses
        // below the uniform baseline; the corpus carries the
        // perturbations that proved productive, not the workloads.
        let mut plan = self.baseline(round);
        plan.mutations = chosen.plan.mutations.clone();
        plan.delay = chosen.plan.delay.clone();
        plan.threads = chosen.plan.threads;
        plan.crash_points = chosen.plan.crash_points;
        plan.memory_budget = chosen.plan.memory_budget;
        plan.io_script = chosen.plan.io_script.clone();
        plan.parent = Some(chosen.round);
        let axes = self.axes.axes();
        let mutations = 1 + rng.below(2);
        for _ in 0..mutations {
            // Axes are weighted by how productively they discover
            // coverage: workload and delay mutations change what the trace
            // *is*, thread re-deals change who contends, while crash
            // salts, memory budgets and io scripts mostly refresh audit
            // and pressure points.
            let weights: Vec<u64> = axes.iter().map(|a| axis_weight(*a)).collect();
            let total: u64 = weights.iter().sum();
            let mut ticket = rng.below(total);
            let mut axis = *axes.last().expect("axis set is never empty");
            for (a, w) in axes.iter().zip(&weights) {
                if ticket < *w {
                    axis = *a;
                    break;
                }
                ticket -= w;
            }
            self.mutate_axis(&mut plan, axis, &mut rng);
        }
        plan
    }

    fn mutate_axis(&self, plan: &mut RoundPlan, axis: Axis, rng: &mut Mix) {
        match axis {
            Axis::Workload => {
                plan.mutations.push(rng.next());
                if plan.mutations.len() > MAX_MUTATION_CHAIN {
                    plan.mutations.remove(0);
                }
            }
            Axis::Delay => {
                plan.delay.prob_1024 = (64 + rng.below(256)) as u16;
                plan.delay.max_delay_us = 10 + rng.below(50);
                if rng.below(2) == 0 {
                    let classes = [
                        PointClass::Store,
                        PointClass::Load,
                        PointClass::Flush,
                        PointClass::Fence,
                        PointClass::Acquire,
                        PointClass::Release,
                    ];
                    plan.delay.rules.push(DelayRule {
                        thread: if rng.below(2) == 0 {
                            Some(rng.below(8) as u32)
                        } else {
                            None
                        },
                        point: classes[rng.below(classes.len() as u64) as usize],
                        prob_1024: (512 + rng.below(512)) as u16,
                        max_delay_us: 20 + rng.below(60),
                    });
                    if plan.delay.rules.len() > MAX_DELAY_RULES {
                        plan.delay.rules.remove(0);
                    }
                }
            }
            Axis::Crash => {
                plan.crash_salt = rng.next();
                plan.crash_points = 1 + rng.below(2 * self.base_crash_points as u64 + 2) as usize;
            }
            Axis::Threads => {
                // At least 2: a single-threaded re-deal cannot race and
                // would waste the round.
                plan.threads = 2 + rng.below(7) as usize;
            }
            Axis::Memory => {
                let b = MEMORY_BUDGETS[rng.below(MEMORY_BUDGETS.len() as u64) as usize];
                plan.memory_budget = if b == 0 { None } else { Some(b) };
            }
            Axis::Io => {
                plan.io_script = if rng.below(4) == 0 {
                    None
                } else {
                    Some(IO_SCRIPTS[rng.below(IO_SCRIPTS.len() as u64) as usize].to_string())
                };
            }
        }
    }

    /// Feeds one finished round back into the planner: points not seen
    /// before enter `seen`, and a round that discovered anything enters
    /// the corpus with its plan. Returns the number of fresh points.
    ///
    /// Rounds must be absorbed in round order — plan derivation for round
    /// *r* must only ever observe state from rounds before *r*.
    pub fn absorb(
        &mut self,
        round: u64,
        plan: Option<&RoundPlan>,
        coverage: &[CoveragePoint],
    ) -> u64 {
        let fresh: Vec<CoveragePoint> = coverage
            .iter()
            .filter(|p| !self.seen.contains(*p))
            .cloned()
            .collect();
        let new_points = fresh.len() as u64;
        self.seen.extend(fresh);
        if new_points > 0 {
            let plan = plan.cloned().unwrap_or_else(|| self.baseline(round));
            self.corpus.push(CorpusEntry {
                round,
                plan,
                new_points,
            });
        }
        new_points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_set_parses_sorts_and_rejects() {
        let set = AxisSet::parse("delay, workload,delay").unwrap();
        assert_eq!(set.render(), "workload,delay");
        assert!(AxisSet::parse("workload,bogus").is_err());
        assert!(AxisSet::parse(" , ").is_err());
        assert!(!AxisSet::default().contains(Axis::Io), "io is opt-in");
        assert!(AxisSet::parse("io").unwrap().contains(Axis::Io));
    }

    #[test]
    fn warmup_rounds_are_the_uniform_baseline() {
        let steer = Steer::new(7, AxisSet::default(), 3, DelaySpec::none());
        for round in 0..WARMUP_ROUNDS {
            assert_eq!(
                steer.plan(round),
                RoundPlan::baseline(round_seed(7, round), 3)
            );
        }
    }

    #[test]
    fn plan_is_pure_in_seed_and_corpus_state() {
        let mut steer = Steer::new(11, AxisSet::default(), 2, DelaySpec::none());
        let p0 = steer.plan(0);
        steer.absorb(
            0,
            Some(&p0),
            &[CoveragePoint::Site {
                store: "s".into(),
                load: "l".into(),
            }],
        );
        let a = steer.plan(5);
        let b = steer.plan(5);
        assert_eq!(a, b, "same state, same round, same plan");
        assert_eq!(a.parent, Some(0), "derived from the only corpus entry");

        // Rebuilding the planner from the same absorb sequence reproduces
        // the plan byte-for-byte.
        let mut rebuilt = Steer::new(11, AxisSet::default(), 2, DelaySpec::none());
        rebuilt.absorb(
            0,
            Some(&p0),
            &[CoveragePoint::Site {
                store: "s".into(),
                load: "l".into(),
            }],
        );
        assert_eq!(
            serde_json::to_string(&rebuilt.plan(5)).unwrap(),
            serde_json::to_string(&a).unwrap()
        );
    }

    #[test]
    fn absorb_dedupes_against_seen_not_corpus() {
        let mut steer = Steer::new(1, AxisSet::default(), 2, DelaySpec::none());
        let point = CoveragePoint::Audit {
            outcome: "recovery_failed".into(),
            detail: String::new(),
        };
        assert_eq!(steer.absorb(0, None, std::slice::from_ref(&point)), 1);
        assert_eq!(steer.absorb(1, None, std::slice::from_ref(&point)), 0);
        assert_eq!(steer.corpus().len(), 1, "re-observations add no entries");
        assert_eq!(steer.seen().len(), 1);
    }

    #[test]
    fn steered_plans_leave_the_baseline() {
        let mut steer = Steer::new(3, AxisSet::default(), 2, DelaySpec::none());
        for round in 0..WARMUP_ROUNDS {
            let plan = steer.plan(round);
            steer.absorb(
                round,
                Some(&plan),
                &[CoveragePoint::Site {
                    store: format!("s{round}"),
                    load: "l".into(),
                }],
            );
        }
        // Across a handful of derived rounds, at least one plan must
        // differ from the uniform baseline on some axis.
        let diverged = (WARMUP_ROUNDS..WARMUP_ROUNDS + 8)
            .any(|r| steer.plan(r) != RoundPlan::baseline(round_seed(3, r), 2));
        assert!(diverged, "steering never left the baseline");
    }
}
