//! Table 2 at integration-test scale: every application runs its §5
//! workload, and every bug reachable at this size must be detected.

use hawkset::apps::{all_apps, score, RaceClass};
use hawkset::core::analysis::{AnalysisConfig, Analyzer};

/// Bugs expected at a modest (2k-op) workload. TurboHash #3 needs buckets
/// to fill, which the zipfian mix achieves by 2k ops with the default
/// directory; everything else needs only operation coverage.
fn expected_ids(app: &str) -> Vec<u32> {
    match app {
        "Fast-Fair" => vec![1, 2],
        "TurboHash" => vec![3],
        "P-CLHT" => vec![4],
        "P-Masstree" => vec![5, 6, 7],
        "P-ART" => vec![8, 9],
        "MadFS" => vec![],
        "Memcached-pmem" => vec![10, 11, 12, 13, 14, 15],
        "WIPE" => vec![16, 17, 18],
        "APEX" => vec![19, 20],
        other => panic!("unknown app {other}"),
    }
}

#[test]
fn every_table2_bug_is_detected() {
    let mut all_detected = Vec::new();
    for app in all_apps() {
        let wl = app.default_workload(2_000, 42);
        let trace = app.execute(&wl);
        assert!(trace.validate().is_ok(), "{}: invalid trace", app.name());
        let report = Analyzer::default().run(&trace);
        let b = score(&report.races, &app.known_races());
        for id in expected_ids(app.name()) {
            assert!(
                b.detected_ids.contains(&id),
                "{}: bug #{id} not detected (got {:?})",
                app.name(),
                b.detected_ids
            );
        }
        all_detected.extend(b.detected_ids);
    }
    all_detected.sort_unstable();
    all_detected.dedup();
    assert_eq!(
        all_detected,
        (1..=20).collect::<Vec<u32>>(),
        "all 20 Table 2 bugs"
    );
}

#[test]
fn ground_truths_are_well_formed() {
    let mut ids = Vec::new();
    let mut new_count = 0;
    for app in all_apps() {
        for k in app.known_races() {
            if k.class == RaceClass::Malign {
                assert!(
                    k.id >= 1 && k.id <= 20,
                    "{}: bad bug id {}",
                    app.name(),
                    k.id
                );
                if !ids.contains(&k.id) {
                    ids.push(k.id);
                    if k.new {
                        new_count += 1;
                    }
                }
            } else {
                assert_eq!(k.id, 0, "benign entries carry no Table 2 id");
            }
            assert!(!k.store_fn.is_empty() && !k.load_fn.is_empty());
        }
    }
    ids.sort_unstable();
    assert_eq!(
        ids,
        (1..=20).collect::<Vec<u32>>(),
        "Table 2 ids are covered exactly once"
    );
    assert_eq!(new_count, 7, "the paper reports 7 previously unknown bugs");
}

#[test]
fn irh_never_prunes_a_malign_race() {
    // Bug #2's store targets a *freshly allocated* node: if the run's
    // interleaving persists it before any second thread touches those
    // words, the IRH classifies the store as initialization — exactly what
    // the real tool would do (§3.1.3 is a heuristic). Every other bug
    // writes to already-published memory and must survive the IRH
    // unconditionally.
    const INTERLEAVING_DEPENDENT: &[u32] = &[2];
    for app in all_apps() {
        let wl = app.default_workload(1_000, 7);
        let trace = app.execute(&wl);
        let with_irh = Analyzer::default().run(&trace);
        let without = Analyzer::new(AnalysisConfig {
            irh: false,
            ..Default::default()
        })
        .run(&trace);
        let with_ids = score(&with_irh.races, &app.known_races()).detected_ids;
        let without_ids = score(&without.races, &app.known_races()).detected_ids;
        for id in &without_ids {
            assert!(
                with_ids.contains(id) || INTERLEAVING_DEPENDENT.contains(id),
                "{}: IRH pruned malign bug #{id}",
                app.name()
            );
        }
        assert!(
            with_irh.races.len() <= without.races.len(),
            "{}: IRH must not add reports",
            app.name()
        );
    }
}

#[test]
fn table1_metadata_is_complete() {
    let apps = all_apps();
    assert_eq!(apps.len(), 9, "Table 1 lists nine applications");
    let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
    for expected in [
        "Fast-Fair",
        "TurboHash",
        "P-CLHT",
        "P-Masstree",
        "P-ART",
        "MadFS",
        "Memcached-pmem",
        "WIPE",
        "APEX",
    ] {
        assert!(names.contains(&expected), "missing {expected}");
    }
    for app in &apps {
        assert!(
            ["Lock", "Lock-Free", "Lock/Lock-Free"].contains(&app.sync_method()),
            "{}: unexpected sync method {}",
            app.name(),
            app.sync_method()
        );
    }
}

/// The paper caps P-ART workloads at 1k operations; the driver must honour
/// that regardless of the requested size.
#[test]
fn part_workload_is_capped() {
    let part = all_apps()
        .into_iter()
        .find(|a| a.name() == "P-ART")
        .unwrap();
    let wl = part.default_workload(100_000, 1);
    assert!(
        wl.main_ops() <= 1_000,
        "P-ART hangs beyond 1k ops in the original evaluation"
    );
}
