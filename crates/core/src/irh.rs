//! Initialization Removal Heuristic (§3.1.3).
//!
//! Concurrent programs routinely initialize freshly allocated memory without
//! holding a lock — correct, because the region is not yet visible to other
//! threads, but poison for a naive lockset analysis. Eraser pioneered
//! initialization pruning; HawkSet adapts it to persistency:
//!
//! * an address is considered **published** once a *second* thread accesses
//!   it;
//! * stores that were **explicitly persisted** by the sole-accessor thread
//!   before publication are discarded;
//! * **unpersisted** stores are kept even if they precede publication — a
//!   thread that initializes memory and publishes the pointer *without
//!   persisting* is exactly the race the tool must not miss;
//! * accesses after publication are always kept.
//!
//! Publication is tracked at 8-byte-word granularity and is sticky: freed
//! and reallocated PM stays published, which reproduces the tool's known
//! limitation on memory-reusing applications such as memcached (§7).

use std::collections::HashMap;

use crate::addr::AddrRange;
use crate::trace::ThreadId;

/// Per-word publication state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WordState {
    /// Accessed only by this thread so far.
    Sole(ThreadId),
    /// A second thread has accessed the word.
    Published,
}

/// Tracks which PM words have become visible to more than one thread.
#[derive(Debug, Default)]
pub struct PublicationTracker {
    words: HashMap<u64, WordState>,
}

impl PublicationTracker {
    /// Creates an empty tracker (all words untouched).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access by `tid` to `range`, updating publication state.
    ///
    /// Returns `true` if **any** word of the range was already published
    /// *before* this access — i.e. whether the access itself is to public
    /// memory. The access that publishes a word (the first one from a
    /// second thread) returns `false` for that word but flips it to
    /// published for all later queries; it is nevertheless always kept by
    /// the pipeline, because [`was_published_before`] is only consulted for
    /// discarding decisions on *prior* sole-thread activity.
    ///
    /// [`was_published_before`]: PublicationTracker::is_published
    pub fn record_access(&mut self, tid: ThreadId, range: &AddrRange) -> bool {
        let mut any_public = false;
        for w in range.words() {
            match self.words.get(&w) {
                None => {
                    self.words.insert(w, WordState::Sole(tid));
                }
                Some(WordState::Sole(owner)) if *owner == tid => {}
                Some(WordState::Sole(_)) => {
                    self.words.insert(w, WordState::Published);
                }
                Some(WordState::Published) => any_public = true,
            }
        }
        any_public
    }

    /// Returns `true` if every word of `range` is still private to `tid`.
    ///
    /// This is the discard condition for a persisted store window: the
    /// store was persisted while its memory was exclusively owned by the
    /// storing thread, so it is initialization and cannot race.
    pub fn all_private_to(&self, tid: ThreadId, range: &AddrRange) -> bool {
        range
            .words()
            .all(|w| matches!(self.words.get(&w), Some(WordState::Sole(t)) if *t == tid))
    }

    /// Returns `true` if any word of `range` has been published.
    pub fn is_published(&self, range: &AddrRange) -> bool {
        range
            .words()
            .any(|w| matches!(self.words.get(&w), Some(WordState::Published)))
    }

    /// Number of tracked words (cost accounting).
    pub fn tracked_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    #[test]
    fn first_access_claims_words() {
        let mut p = PublicationTracker::new();
        let r = AddrRange::new(0, 16);
        assert!(!p.record_access(T0, &r));
        assert!(p.all_private_to(T0, &r));
        assert!(!p.all_private_to(T1, &r));
        assert!(!p.is_published(&r));
    }

    #[test]
    fn second_thread_publishes() {
        let mut p = PublicationTracker::new();
        let r = AddrRange::new(0, 8);
        p.record_access(T0, &r);
        // The publishing access itself reports "not yet public"...
        assert!(!p.record_access(T1, &r));
        // ...but from then on the word is published.
        assert!(p.is_published(&r));
        assert!(!p.all_private_to(T0, &r));
        assert!(p.record_access(T0, &r));
    }

    #[test]
    fn publication_is_sticky_across_reuse() {
        // Free + reallocate does not reset the tracker: exactly the
        // memcached limitation of §7.
        let mut p = PublicationTracker::new();
        let r = AddrRange::new(64, 8);
        p.record_access(T0, &r);
        p.record_access(T1, &r);
        assert!(p.is_published(&r));
        // "Reallocation" by T0: still published.
        assert!(p.record_access(T0, &r));
        assert!(!p.all_private_to(T0, &r));
    }

    #[test]
    fn partial_publication_is_detected() {
        let mut p = PublicationTracker::new();
        let whole = AddrRange::new(0, 16); // words 0 and 1
        let first_word = AddrRange::new(0, 8);
        p.record_access(T0, &whole);
        p.record_access(T1, &first_word);
        assert!(p.is_published(&whole));
        assert!(!p.all_private_to(T0, &whole));
        assert!(p.all_private_to(T0, &AddrRange::new(8, 8)));
    }

    #[test]
    fn untouched_words_are_not_private() {
        let p = PublicationTracker::new();
        assert!(!p.all_private_to(T0, &AddrRange::new(0, 8)));
        assert!(!p.is_published(&AddrRange::new(0, 8)));
    }
}
