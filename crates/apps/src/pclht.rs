//! P-CLHT: a persistent cache-line hash table (RECIPE, SOSP'19).
//!
//! P-CLHT restricts each bucket to one cache line, synchronizes insertions
//! and updates with per-bucket locks, takes a global lock for rehashing,
//! and serves gets lock-free (Table 1). Its concurrency control is built on
//! CAS instructions, so — like the original evaluation (§5.5) — analysing
//! it requires wrapper functions plus a small sync configuration file; see
//! [`pclht_sync_config`].
//!
//! Reproduced bug (Table 2 **#4**, known): rehashing allocates a new table
//! and swaps the root pointer; the swap is persisted only after the resize
//! lock is released. A concurrent writer can read the unpersisted root
//! pointer (lock-free, `clht_lb_res.c:431`) and insert into the new table;
//! if the crash hits before the pointer is persisted, the insert lands in a
//! table the recovery will never find. Store site `pclht::rehash_swap_root`
//! (`clht_lb_res.c:785`), load site `pclht::table_lookup`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hawkset_core::addr::PmAddr;
use hawkset_core::sync_config::SyncConfig;
use pm_runtime::{run_workers, CustomSpinLock, PmAllocator, PmEnv, PmPool, PmThread};
use pm_workloads::{Op, Workload, WorkloadSpec};

use crate::app::{
    env_for, AppWorkload, Application, ExecOptions, ExecResult, InvariantViolation, RecoveryError,
};
use crate::registry::KnownRace;

/// Entries per cache-line bucket: 3 key/value pairs + overflow pointer.
const ENTRIES: u64 = 3;
const OFF_KEYS: u64 = 0; // 3 × u64
const OFF_VALS: u64 = 24; // 3 × u64
const OFF_NEXT: u64 = 48; // overflow chain
const BUCKET_SIZE: u64 = 64;

/// Table header: number of buckets, then the bucket array.
const TBL_OFF_NBUCKETS: u64 = 0;
const TBL_HEADER: u64 = 64;

/// Pool-header offset of the root table pointer.
const ROOT_PTR_OFF: u64 = 0;

/// Keys are stored +1 so 0 means "empty slot".
fn enc(key: u64) -> u64 {
    key + 1
}

/// The sync configuration a user must provide to analyse P-CLHT — the
/// analogue of the §5.5 config file covering its CAS-wrapper functions.
pub fn pclht_sync_config() -> SyncConfig {
    SyncConfig::from_json(
        r#"{
            "primitives": [
                {"function": "clht_bucket_lock", "kind": "acquire", "mode": "Exclusive"},
                {"function": "clht_bucket_unlock", "kind": "release"},
                {"function": "clht_resize_lock", "kind": "acquire", "mode": "Exclusive"},
                {"function": "clht_resize_unlock", "kind": "release"}
            ]
        }"#,
    )
    .expect("static config parses")
}

/// Behaviour switches; bug #4 present by default.
#[derive(Clone, Copy, Debug)]
pub struct PclhtBugs {
    /// Persist the root-pointer swap only after the resize lock is
    /// released.
    pub late_root_persist: bool,
}

impl Default for PclhtBugs {
    fn default() -> Self {
        Self {
            late_root_persist: true,
        }
    }
}

/// A P-CLHT table in a PM pool.
pub struct Pclht {
    env: PmEnv,
    pool: PmPool,
    alloc: Arc<PmAllocator>,
    bucket_locks: parking_lot::Mutex<HashMap<PmAddr, Arc<CustomSpinLock>>>,
    resize_lock: CustomSpinLock,
    resizing: AtomicBool,
    items: AtomicU64,
    bugs: PclhtBugs,
}

impl Pclht {
    /// Creates a table with `nbuckets` buckets and persists it.
    pub fn create(
        env: &PmEnv,
        pool: &PmPool,
        t: &PmThread,
        nbuckets: u64,
        bugs: PclhtBugs,
    ) -> Self {
        let alloc = Arc::new(PmAllocator::new(pool, 64));
        let ht = Self {
            env: env.clone(),
            pool: pool.clone(),
            alloc,
            bucket_locks: parking_lot::Mutex::new(HashMap::new()),
            resize_lock: CustomSpinLock::new(env, "clht_resize_lock", "clht_resize_unlock"),
            resizing: AtomicBool::new(false),
            items: AtomicU64::new(0),
            bugs,
        };
        let _f = t.frame("pclht::create");
        let table = ht.new_table(t, nbuckets);
        ht.pool.store_u64(t, ht.pool.base() + ROOT_PTR_OFF, table);
        ht.pool.persist(t, ht.pool.base() + ROOT_PTR_OFF, 8);
        ht
    }

    /// Reopens a table persisted in `pool` (recovery path): state is read
    /// back through the root pointer; volatile lock tables start empty.
    pub fn open(env: &PmEnv, pool: &PmPool, bugs: PclhtBugs) -> Self {
        let alloc = Arc::new(PmAllocator::new(pool, 64));
        Self {
            env: env.clone(),
            pool: pool.clone(),
            alloc,
            bucket_locks: parking_lot::Mutex::new(HashMap::new()),
            resize_lock: CustomSpinLock::new(env, "clht_resize_lock", "clht_resize_unlock"),
            resizing: AtomicBool::new(false),
            items: AtomicU64::new(0),
            bugs,
        }
    }

    /// Minimal post-crash reopen check: the root table pointer must name a
    /// table whose header and bucket array lie inside the pool.
    pub fn recovery_probe(&self, t: &PmThread) -> Result<(), RecoveryError> {
        let _f = t.frame("pclht::recover");
        let base = self.pool.base();
        let table = self.pool.load_u64(t, base + ROOT_PTR_OFF);
        if table == 0 {
            // Crash before the table pointer was first persisted: an
            // uninitialized pool, which recovery re-initializes.
            return Ok(());
        }
        if table < base || table + TBL_HEADER > base + self.pool.len() {
            return Err(RecoveryError(format!(
                "root table pointer {table:#x} outside the pool"
            )));
        }
        let nbuckets = self.pool.load_u64(t, table + TBL_OFF_NBUCKETS);
        if nbuckets == 0 {
            return Err(RecoveryError("table header says 0 buckets".into()));
        }
        let Some(arr) = nbuckets.checked_mul(BUCKET_SIZE) else {
            return Err(RecoveryError(format!("bucket count {nbuckets} overflows")));
        };
        if table + TBL_HEADER + arr > base + self.pool.len() {
            return Err(RecoveryError(format!(
                "bucket array of {nbuckets} buckets does not fit the pool"
            )));
        }
        Ok(())
    }

    /// Structural audit of the table as persisted: every bucket chain must
    /// stay inside the pool and terminate, and no key may be durable in
    /// two slots (a torn rehash that persisted a copy *and* kept the
    /// original reachable would double-insert on recovery).
    pub fn check_invariants(&self, t: &PmThread) -> Vec<InvariantViolation> {
        let _f = t.frame("pclht::check_invariants");
        let mut out = Vec::new();
        if let Err(e) = self.recovery_probe(t) {
            out.push(InvariantViolation {
                invariant: "root".into(),
                detail: e.0,
            });
            return out;
        }
        let base = self.pool.base();
        let table = self.pool.load_u64(t, base + ROOT_PTR_OFF);
        if table == 0 {
            return out; // uninitialized pool: nothing to audit
        }
        let nbuckets = self.pool.load_u64(t, table + TBL_OFF_NBUCKETS);
        let in_pool = |b: PmAddr| {
            b >= base
                && b.checked_add(BUCKET_SIZE)
                    .is_some_and(|e| e <= base + self.pool.len())
        };
        let mut seen: HashMap<u64, PmAddr> = HashMap::new();
        for b in 0..nbuckets {
            let head = table + TBL_HEADER + b * BUCKET_SIZE;
            let mut bucket = head;
            let mut hops = 0;
            while bucket != 0 {
                hops += 1;
                if hops > 64 {
                    out.push(InvariantViolation {
                        invariant: "chain-length".into(),
                        detail: format!("bucket {b} chain exceeds 64 hops (cycle or corruption)"),
                    });
                    break;
                }
                if !in_pool(bucket) {
                    out.push(InvariantViolation {
                        invariant: "dangling-bucket".into(),
                        detail: format!("bucket {b} chain points outside the pool ({bucket:#x})"),
                    });
                    break;
                }
                for i in 0..ENTRIES {
                    let k = self.pool.load_u64(t, bucket + OFF_KEYS + i * 8);
                    if k == 0 {
                        continue;
                    }
                    if let Some(other) = seen.insert(k, bucket) {
                        if other != bucket {
                            out.push(InvariantViolation {
                                invariant: "duplicate-key".into(),
                                detail: format!(
                                    "key {} durable in buckets {other:#x} and {bucket:#x}",
                                    k - 1
                                ),
                            });
                        }
                    }
                }
                bucket = self.pool.load_u64(t, bucket + OFF_NEXT);
            }
        }
        out
    }

    fn new_table(&self, t: &PmThread, nbuckets: u64) -> PmAddr {
        let size = TBL_HEADER + nbuckets * BUCKET_SIZE;
        let addr = self.alloc.alloc(size).expect("pclht pool exhausted");
        self.pool.store_u64(t, addr + TBL_OFF_NBUCKETS, nbuckets);
        // Zero every bucket (fresh allocations may reuse freed space).
        for b in 0..nbuckets {
            let bucket = addr + TBL_HEADER + b * BUCKET_SIZE;
            for w in 0..8 {
                self.pool.store_u64(t, bucket + w * 8, 0);
            }
        }
        self.pool.persist(t, addr, size as usize);
        addr
    }

    fn lock_of(&self, bucket: PmAddr) -> Arc<CustomSpinLock> {
        let mut map = self.bucket_locks.lock();
        Arc::clone(map.entry(bucket).or_insert_with(|| {
            Arc::new(CustomSpinLock::new(
                &self.env,
                "clht_bucket_lock",
                "clht_bucket_unlock",
            ))
        }))
    }

    /// Lock-free root + bucket resolution — the load site of bug #4
    /// (`clht_lb_res.c:431`).
    fn table_lookup(&self, t: &PmThread, key: u64) -> (PmAddr, PmAddr) {
        let _f = t.frame("pclht::table_lookup");
        let table = self.pool.load_u64(t, self.pool.base() + ROOT_PTR_OFF);
        let nbuckets = self.pool.load_u64(t, table + TBL_OFF_NBUCKETS).max(1);
        let idx = pm_workloads::zipfian::fnv1a(key) % nbuckets;
        (table, table + TBL_HEADER + idx * BUCKET_SIZE)
    }

    /// Lock-free get (Table 1).
    pub fn get(&self, t: &PmThread, key: u64) -> Option<u64> {
        let _f = t.frame("pclht::get");
        let (_, mut bucket) = self.table_lookup(t, key);
        let mut hops = 0;
        while bucket != 0 && hops < 64 {
            hops += 1;
            for i in 0..ENTRIES {
                let k = self.pool.load_u64(t, bucket + OFF_KEYS + i * 8);
                if k == enc(key) {
                    return Some(self.pool.load_u64(t, bucket + OFF_VALS + i * 8));
                }
            }
            bucket = self.pool.load_u64(t, bucket + OFF_NEXT);
        }
        None
    }

    /// Inserts or updates `key` under the bucket lock.
    pub fn put(&self, t: &PmThread, key: u64, value: u64) {
        let _f = t.frame("pclht::put");
        loop {
            while self.resizing.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            let (table, head) = self.table_lookup(t, key);
            let lock = self.lock_of(head);
            lock.lock(t);
            // A rehash may have started while we acquired the lock; if so,
            // retry on the new table (the real P-CLHT spins on a flag too).
            if self.resizing.load(Ordering::Acquire)
                || self.pool.load_u64(t, self.pool.base() + ROOT_PTR_OFF) != table
            {
                lock.unlock(t);
                continue;
            }
            self.bucket_insert(t, head, key, value);
            lock.unlock(t);
            return;
        }
    }

    /// In-bucket insert/update, persisted inside the critical section.
    fn bucket_insert(&self, t: &PmThread, head: PmAddr, key: u64, value: u64) {
        let mut bucket = head;
        let mut free_slot: Option<PmAddr> = None;
        let mut tail = head;
        let mut hops = 0;
        while bucket != 0 && hops < 64 {
            hops += 1;
            for i in 0..ENTRIES {
                let slot = bucket + OFF_KEYS + i * 8;
                let k = self.pool.load_u64(t, slot);
                if k == enc(key) {
                    // Update in place.
                    self.pool.store_u64(t, bucket + OFF_VALS + i * 8, value);
                    self.pool.persist(t, bucket + OFF_VALS + i * 8, 8);
                    return;
                }
                if k == 0 && free_slot.is_none() {
                    free_slot = Some(slot);
                }
            }
            tail = bucket;
            bucket = self.pool.load_u64(t, bucket + OFF_NEXT);
        }
        let slot = match free_slot {
            Some(s) => s,
            None => {
                // Chain a fresh overflow bucket (cache-line sized).
                let fresh = self.alloc.alloc(BUCKET_SIZE).expect("pclht pool exhausted");
                for w in 0..8 {
                    self.pool.store_u64(t, fresh + w * 8, 0);
                }
                self.pool.persist(t, fresh, BUCKET_SIZE as usize);
                self.pool.store_u64(t, tail + OFF_NEXT, fresh);
                self.pool.persist(t, tail + OFF_NEXT, 8);
                fresh + OFF_KEYS
            }
        };
        // Value first, then key — the key store is the linearization point
        // for lock-free readers.
        let bucket_base = slot - (slot - OFF_KEYS) % BUCKET_SIZE;
        let i = (slot - bucket_base - OFF_KEYS) / 8;
        self.pool
            .store_u64(t, bucket_base + OFF_VALS + i * 8, value);
        self.pool.store_u64(t, slot, enc(key));
        self.pool.persist(t, bucket_base, BUCKET_SIZE as usize);
        self.items.fetch_add(1, Ordering::Relaxed);
    }

    /// Deletes `key` under the bucket lock.
    pub fn delete(&self, t: &PmThread, key: u64) -> bool {
        let _f = t.frame("pclht::delete");
        loop {
            while self.resizing.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            let (table, head) = self.table_lookup(t, key);
            let lock = self.lock_of(head);
            lock.lock(t);
            if self.resizing.load(Ordering::Acquire)
                || self.pool.load_u64(t, self.pool.base() + ROOT_PTR_OFF) != table
            {
                lock.unlock(t);
                continue;
            }
            let mut bucket = head;
            let mut hops = 0;
            while bucket != 0 && hops < 64 {
                hops += 1;
                for i in 0..ENTRIES {
                    let slot = bucket + OFF_KEYS + i * 8;
                    if self.pool.load_u64(t, slot) == enc(key) {
                        self.pool.store_u64(t, slot, 0);
                        self.pool.persist(t, slot, 8);
                        self.items.fetch_sub(1, Ordering::Relaxed);
                        lock.unlock(t);
                        return true;
                    }
                }
                bucket = self.pool.load_u64(t, bucket + OFF_NEXT);
            }
            lock.unlock(t);
            return false;
        }
    }

    /// Returns `true` if the table wants to grow.
    pub fn needs_resize(&self, t: &PmThread) -> bool {
        let _f = t.frame("pclht::needs_resize");
        let table = self.pool.load_u64(t, self.pool.base() + ROOT_PTR_OFF);
        let nbuckets = self.pool.load_u64(t, table + TBL_OFF_NBUCKETS).max(1);
        self.items.load(Ordering::Relaxed) > nbuckets * 2
    }

    /// Rehashes into a table twice the size — **bug #4 lives here**.
    pub fn maybe_resize(&self, t: &PmThread) {
        if !self.needs_resize(t) {
            return;
        }
        let _f = t.frame("pclht::rehash");
        self.resize_lock.lock(t);
        if !self.needs_resize(t) {
            self.resize_lock.unlock(t);
            return;
        }
        self.resizing.store(true, Ordering::Release);
        let old = self.pool.load_u64(t, self.pool.base() + ROOT_PTR_OFF);
        let old_n = self.pool.load_u64(t, old + TBL_OFF_NBUCKETS).max(1);
        let new = self.new_table(t, old_n * 2);
        // Copy every entry, bucket by bucket, under the bucket lock so
        // in-flight writers drain first.
        {
            let _c = t.frame("pclht::rehash_copy");
            for b in 0..old_n {
                let head = old + TBL_HEADER + b * BUCKET_SIZE;
                let lock = self.lock_of(head);
                lock.lock(t);
                let mut bucket = head;
                let mut hops = 0;
                while bucket != 0 && hops < 64 {
                    hops += 1;
                    for i in 0..ENTRIES {
                        let k = self.pool.load_u64(t, bucket + OFF_KEYS + i * 8);
                        if k != 0 {
                            let v = self.pool.load_u64(t, bucket + OFF_VALS + i * 8);
                            let n = self.pool.load_u64(t, new + TBL_OFF_NBUCKETS).max(1);
                            let idx = pm_workloads::zipfian::fnv1a(k - 1) % n;
                            let nh = new + TBL_HEADER + idx * BUCKET_SIZE;
                            self.bucket_insert(t, nh, k - 1, v);
                            self.items.fetch_sub(1, Ordering::Relaxed); // bucket_insert re-counts
                        }
                    }
                    bucket = self.pool.load_u64(t, bucket + OFF_NEXT);
                }
                lock.unlock(t);
            }
        }
        // Swap the root pointer. With the bug enabled the persist happens
        // only after the resize lock is gone (`clht_lb_res.c:785`).
        {
            let _s = t.frame("pclht::rehash_swap_root");
            self.pool.store_u64(t, self.pool.base() + ROOT_PTR_OFF, new);
            if !self.bugs.late_root_persist {
                self.pool.persist(t, self.pool.base() + ROOT_PTR_OFF, 8);
            }
        }
        self.resizing.store(false, Ordering::Release);
        self.resize_lock.unlock(t);
        if self.bugs.late_root_persist {
            self.pool.persist(t, self.pool.base() + ROOT_PTR_OFF, 8);
        }
    }

    /// Executes one workload operation.
    pub fn run_op(&self, t: &PmThread, op: &Op) {
        match op {
            Op::Insert { key, value } | Op::Update { key, value } => {
                self.put(t, *key, *value);
                self.maybe_resize(t);
            }
            Op::Get { key } => {
                self.get(t, *key);
            }
            Op::Delete { key } => {
                self.delete(t, *key);
            }
        }
    }
}

/// The Table 1 driver for P-CLHT.
pub struct PclhtApp;

impl Application for PclhtApp {
    fn name(&self) -> &'static str {
        "P-CLHT"
    }

    fn sync_method(&self) -> &'static str {
        "Lock"
    }

    fn known_races(&self) -> Vec<KnownRace> {
        vec![
            KnownRace::malign(
                4,
                false,
                "pclht::rehash_swap_root",
                "pclht::table_lookup",
                "load unpersisted pointer",
            ),
            KnownRace::benign(
                "pclht::put",
                "pclht::get",
                "lock-free get of persisted insert",
            ),
            KnownRace::benign(
                "pclht::put",
                "pclht::table_lookup",
                "bucket scan during put",
            ),
            KnownRace::benign("pclht::delete", "pclht::get", "lock-free get during delete"),
            KnownRace::benign(
                "pclht::rehash_copy",
                "pclht::get",
                "copied entries are persisted before the table swap",
            ),
            KnownRace::benign(
                "pclht::rehash_copy",
                "pclht::table_lookup",
                "bucket resolution during copy",
            ),
            KnownRace::benign(
                "pclht::rehash_swap_root",
                "pclht::get",
                "get resolves the root during the swap",
            ),
            KnownRace::benign(
                "pclht::create",
                "pclht::get",
                "initial table visible to readers",
            ),
            KnownRace::benign(
                "pclht::rehash_swap_root",
                "pclht::put",
                "put re-reads the root during the (unpersisted) swap",
            ),
            KnownRace::benign(
                "pclht::rehash_swap_root",
                "pclht::delete",
                "delete re-reads the root during the swap",
            ),
            KnownRace::benign(
                "pclht::rehash_swap_root",
                "pclht::needs_resize",
                "resize probe reads the root during the swap",
            ),
            KnownRace::benign(
                "pclht::put",
                "pclht::put",
                "bucket scan of a different bucket's lock holder",
            ),
            KnownRace::benign("pclht::put", "pclht::delete", "bucket scan during delete"),
            KnownRace::benign(
                "pclht::rehash_copy",
                "pclht::put",
                "copied entries read by a writer",
            ),
            KnownRace::benign(
                "pclht::rehash_copy",
                "pclht::delete",
                "copied entries read during delete",
            ),
        ]
    }

    fn default_workload(&self, main_ops: u64, seed: u64) -> AppWorkload {
        AppWorkload::Ycsb(WorkloadSpec::paper(main_ops, seed).generate())
    }

    fn execute_with(&self, workload: &AppWorkload, opts: &ExecOptions) -> ExecResult {
        let AppWorkload::Ycsb(w) = workload else {
            panic!("P-CLHT consumes YCSB workloads")
        };
        run_pclht(w, opts, PclhtBugs::default())
    }

    fn supports_recovery(&self) -> bool {
        true
    }

    fn recover(&self, pool: &PmPool, t: &PmThread) -> Result<(), RecoveryError> {
        Pclht::open(pool.env(), pool, PclhtBugs::default()).recovery_probe(t)
    }

    fn check_invariants(&self, pool: &PmPool, t: &PmThread) -> Vec<InvariantViolation> {
        Pclht::open(pool.env(), pool, PclhtBugs::default()).check_invariants(t)
    }
}

/// Runs a YCSB workload against a fresh table.
pub fn run_pclht(w: &Workload, opts: &ExecOptions, bugs: PclhtBugs) -> ExecResult {
    let env = env_for(opts);
    env.add_sync_config(pclht_sync_config());
    let pool_size = (1 << 20) + (w.main_ops() as u64 + w.load.len() as u64) * 192;
    let pool = env.map_pool("/mnt/pmem/pclht", pool_size);
    let main = env.main_thread();
    let ht = Arc::new(Pclht::create(&env, &pool, &main, 64, bugs));
    for op in &w.load {
        ht.run_op(&main, op);
    }
    let schedules = Arc::new(w.per_thread.clone());
    let ht2 = Arc::clone(&ht);
    run_workers(&env, &main, w.per_thread.len(), move |i, t| {
        for op in &schedules[i] {
            ht2.run_op(t, op);
        }
    });
    let observations = env.take_observations();
    ExecResult {
        trace: env.finish(),
        observations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::score;
    use hawkset_core::analysis::Analyzer;

    fn fresh() -> (PmEnv, Arc<Pclht>, PmThread) {
        let env = PmEnv::new();
        env.add_sync_config(pclht_sync_config());
        let pool = env.map_pool("/mnt/pmem/pclht-test", 1 << 22);
        let main = env.main_thread();
        let ht = Arc::new(Pclht::create(&env, &pool, &main, 16, PclhtBugs::default()));
        (env, ht, main)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (_env, ht, t) = fresh();
        for k in 0..50u64 {
            ht.put(&t, k, k + 100);
        }
        for k in 0..50u64 {
            assert_eq!(ht.get(&t, k), Some(k + 100));
        }
        assert!(ht.delete(&t, 7));
        assert_eq!(ht.get(&t, 7), None);
        assert!(!ht.delete(&t, 7));
        ht.put(&t, 3, 999);
        assert_eq!(ht.get(&t, 3), Some(999));
    }

    #[test]
    fn rehash_preserves_contents() {
        let (_env, ht, t) = fresh();
        // 16 buckets × 2 = 32 items trigger a resize.
        for k in 0..200u64 {
            ht.put(&t, k, k * 2 + 1);
            ht.maybe_resize(&t);
        }
        for k in 0..200u64 {
            assert_eq!(ht.get(&t, k), Some(k * 2 + 1), "key {k} lost in rehash");
        }
    }

    #[test]
    fn overflow_chains_work() {
        let (_env, ht, t) = fresh();
        // All keys into one bucket is hard to force via hashing; instead
        // rely on volume: 16 buckets × 3 slots = 48 direct slots, so 100
        // inserts must chain (resize disabled by not calling maybe_resize).
        for k in 0..100u64 {
            ht.put(&t, k, k);
        }
        for k in 0..100u64 {
            assert_eq!(ht.get(&t, k), Some(k));
        }
    }

    #[test]
    fn concurrent_puts_preserve_disjoint_keys() {
        let (env, ht, main) = fresh();
        let ht2 = Arc::clone(&ht);
        run_workers(&env, &main, 4, move |i, t| {
            for k in 0..100u64 {
                ht2.put(t, i as u64 * 1000 + k, k + 1);
                ht2.maybe_resize(t);
            }
        });
        for i in 0..4u64 {
            for k in 0..100u64 {
                assert_eq!(
                    ht.get(&main, i * 1000 + k),
                    Some(k + 1),
                    "thread {i} key {k}"
                );
            }
        }
    }

    #[test]
    fn detects_bug4_under_growth() {
        let w = WorkloadSpec::paper(2000, 11).generate();
        let res = run_pclht(&w, &ExecOptions::default(), PclhtBugs::default());
        let report = Analyzer::default().run(&res.trace);
        let b = score(&report.races, &PclhtApp.known_races());
        assert!(
            b.detected_ids.contains(&4),
            "bug #4 must be detected: {:?}",
            b.detected_ids
        );
    }

    /// Without the sync configuration, HawkSet cannot see P-CLHT's custom
    /// locks: every locked store degrades to lockset-∅ and the report count
    /// explodes — the §5.5 motivation for the config file.
    #[test]
    fn missing_sync_config_inflates_reports() {
        let w = WorkloadSpec::paper(500, 3).generate();
        let with_cfg = {
            let res = run_pclht(&w, &ExecOptions::default(), PclhtBugs::default());
            Analyzer::default().run(&res.trace).races.len()
        };
        let without_cfg = {
            let env = PmEnv::new(); // built-in pthread config only
            let pool = env.map_pool("/mnt/pmem/pclht-nocfg", 1 << 22);
            let main = env.main_thread();
            let ht = Arc::new(Pclht::create(&env, &pool, &main, 64, PclhtBugs::default()));
            for op in &w.load {
                ht.run_op(&main, op);
            }
            let schedules = Arc::new(w.per_thread.clone());
            let ht2 = Arc::clone(&ht);
            run_workers(&env, &main, w.per_thread.len(), move |i, t| {
                for op in &schedules[i] {
                    ht2.run_op(t, op);
                }
            });
            Analyzer::default().run(&env.finish()).races.len()
        };
        assert!(
            without_cfg >= with_cfg,
            "dropping the sync config must not reduce reports ({without_cfg} vs {with_cfg})"
        );
    }
}
