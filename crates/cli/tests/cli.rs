//! Integration tests driving the `hawkset` binary end to end.

use std::path::PathBuf;
use std::process::Command;

fn hawkset() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hawkset"))
}

fn demo_trace(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("hawkset-cli-test-{name}.hwkt"));
    let out = hawkset().args(["demo", path.to_str().unwrap()]).output().expect("spawn");
    assert!(out.status.success(), "demo failed: {}", String::from_utf8_lossy(&out.stderr));
    path
}

#[test]
fn help_prints_usage() {
    let out = hawkset().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("analyze"));
}

#[test]
fn unknown_command_exits_2() {
    let out = hawkset().arg("frobnicate").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn demo_info_analyze_pipeline() {
    let path = demo_trace("pipeline");

    let out = hawkset().args(["info", path.to_str().unwrap()]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("events:       10"), "info output:\n{text}");
    assert!(text.contains("validation:   ok"));

    // The demo trace contains the Figure-1c race: exit code 1.
    let out = hawkset().args(["analyze", path.to_str().unwrap()]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 persistency-induced race(s) detected"), "analyze output:\n{text}");
    assert!(text.contains("fig1c.c:12"), "store site resolved:\n{text}");
    assert!(text.contains("fig1c.c:25"), "load site resolved:\n{text}");
}

#[test]
fn analyze_json_is_machine_readable() {
    let path = demo_trace("json");
    let out = hawkset()
        .args(["analyze", "--json", path.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let parsed: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON on stdout");
    assert_eq!(parsed.as_array().map(Vec::len), Some(1));
    assert_eq!(parsed[0]["store_site"]["line"], 12);
}

#[test]
fn eadr_flag_silences_the_demo_race() {
    let path = demo_trace("eadr");
    let out = hawkset()
        .args(["analyze", "--eadr", path.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0), "no race can exist under eADR");
}

#[test]
fn analyze_rejects_garbage_input() {
    let path = std::env::temp_dir().join("hawkset-cli-test-garbage.hwkt");
    std::fs::write(&path, b"not a trace at all").unwrap();
    let out = hawkset().args(["analyze", path.to_str().unwrap()]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad magic"));
}

#[test]
fn analyze_rejects_unknown_flags() {
    let out = hawkset().args(["analyze", "--frobnicate", "x.hwkt"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}
