//! # HawkSet (Rust reproduction)
//!
//! Automatic, application-agnostic, and efficient concurrent PM bug
//! detection — a from-scratch Rust reproduction of the EuroSys 2025 paper
//! *HawkSet* by Oliveira, Gonçalves and Matos.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] ([`hawkset_core`]) — the paper's contribution: trace model,
//!   worst-case persistence simulation, Initialization Removal Heuristic,
//!   and the PM-aware lockset analysis with effective locksets and
//!   inter-thread happens-before pruning;
//! * [`runtime`] ([`pm_runtime`]) — the instrumentation substrate standing
//!   in for Intel PIN: simulated PM pools, `clwb`/`sfence` primitives,
//!   instrumented locks/threads, crash images;
//! * [`apps`] ([`pm_apps`]) — the nine evaluated PM applications with
//!   their historical bugs (Table 1 / Table 2);
//! * [`baseline`] ([`pmrace`]) — the observation-based fuzzing baseline;
//! * [`workloads`] ([`pm_workloads`]) — YCSB-style workload generation.
//!
//! # Examples
//!
//! Detect the paper's Figure-1c race in five lines of setup:
//!
//! ```
//! use hawkset::core::analysis::Analyzer;
//! use hawkset::runtime::{PmEnv, PmMutex};
//! use std::sync::Arc;
//!
//! let env = PmEnv::new();
//! let pool = env.map_pool("/mnt/pmem/demo", 4096);
//! let main = env.main_thread();
//! let (x, lock) = (pool.base(), Arc::new(PmMutex::new(&env, ())));
//! pool.store_u64(&main, x, 0);
//! pool.persist(&main, x, 8);
//!
//! let (p, l) = (pool.clone(), Arc::clone(&lock));
//! let t1 = env.spawn(&main, move |t| {
//!     let g = l.lock(t);
//!     p.store_u64(t, x, 42);
//!     drop(g);
//!     p.persist(t, x, 8); // persisted outside the critical section
//! });
//! let (p, l) = (pool.clone(), Arc::clone(&lock));
//! let t2 = env.spawn(&main, move |t| {
//!     let _g = l.lock(t);
//!     p.load_u64(t, x)
//! });
//! t1.join(&main);
//! t2.join(&main);
//!
//! let report = Analyzer::default().run(&env.finish());
//! assert_eq!(report.races.len(), 1);
//! ```

pub use hawkset_core as core;
pub use pm_apps as apps;
pub use pm_runtime as runtime;
pub use pm_workloads as workloads;
pub use pmrace as baseline;
