//! Memcached-pmem: Lenovo's PM-enabled fork of memcached.
//!
//! Items live in PM, carved from a slab allocator that aggressively reuses
//! freed slots; a hash table with segment locks indexes them, an LRU list
//! orders them, and the hot read path is lock-free. Six of its
//! persistency-induced races were reported by PMRace and are reproduced
//! here (Table 2 #10–#15):
//!
//! * **#10/#11** — `append`/`prepend` build a *new* item from a possibly
//!   unpersisted old one; the new item's size field (`memcached.c:4292`)
//!   and data (`:4293`) are published without being persisted and a get
//!   loads them (`memcached.c:2805`).
//! * **#12** — `do_item_link` leaves the item's LRU linkage unpersisted
//!   (`items.c:423`); the LRU crawler walks it (`items.c:464`).
//! * **#13** — the slab free-list head is stored without persistence
//!   (`slabs.c:549`); allocation reads it (`slabs.c:412`).
//! * **#14** — the LRU bump rewrites linkage unpersisted (`items.c:1096`);
//!   the get path reads item metadata (`memcached.c:2824`).
//! * **#15** — `do_item_update` stores the access time unpersisted
//!   (`items.c:627`) racing the lock-free staleness check (`items.c:623`).
//!
//! Memcached is also the Table 4 outlier: slab **reuse** keeps item memory
//! published forever, so re-initialization stores are never pruned by the
//! Initialization Removal Heuristic and surface as false positives (§7) —
//! that population comes from `memcached::item_init` on recycled slots.

use std::sync::Arc;

use hawkset_core::addr::PmAddr;
use pm_runtime::{run_workers, PmAllocator, PmEnv, PmMutex, PmPool, PmThread};
use pm_workloads::{memcached_workload, CacheOp};

use crate::app::{env_for, AppWorkload, Application, ExecOptions, ExecResult};
use crate::registry::KnownRace;

const NBUCKETS: u64 = 4096;
const NSEGMENTS: usize = 16;

/// Pool header: LRU head, LRU tail, slab free-list head, then the bucket
/// array.
const OFF_LRU_HEAD: u64 = 0;
const OFF_LRU_TAIL: u64 = 8;
const OFF_SLAB_HEAD: u64 = 16;
const OFF_BUCKETS: u64 = 64;

/// Item layout (slab slot, 192 bytes).
const IT_H_NEXT: u64 = 0;
const IT_LRU_NEXT: u64 = 8;
const IT_LRU_PREV: u64 = 16;
const IT_TIME: u64 = 24;
const IT_CAS: u64 = 32;
const IT_KEY: u64 = 40;
const IT_NBYTES: u64 = 48;
const IT_DATA: u64 = 56; // two u64 words: base value + appended/prepended
const ITEM_SIZE: u64 = 192;

/// Behaviour switches; bugs #10–#15 present by default.
#[derive(Clone, Copy, Debug)]
pub struct MemcachedBugs {
    /// Leave append/prepend item fields unpersisted (#10/#11).
    pub unpersisted_append: bool,
    /// Leave LRU linkage unpersisted (#12/#14).
    pub unpersisted_lru: bool,
    /// Leave the slab free-list head unpersisted (#13).
    pub unpersisted_slab_head: bool,
    /// Leave access-time stores unpersisted (#15).
    pub unpersisted_time: bool,
}

impl Default for MemcachedBugs {
    fn default() -> Self {
        Self {
            unpersisted_append: true,
            unpersisted_lru: true,
            unpersisted_slab_head: true,
            unpersisted_time: true,
        }
    }
}

/// A memcached-pmem cache in a PM pool.
pub struct Memcached {
    pool: PmPool,
    alloc: Arc<PmAllocator>,
    segments: Vec<PmMutex<()>>,
    lru_lock: PmMutex<()>,
    slab_lock: PmMutex<()>,
    clock: std::sync::atomic::AtomicU64,
    bugs: MemcachedBugs,
}

impl Memcached {
    /// Creates an empty cache.
    pub fn create(env: &PmEnv, pool: &PmPool, t: &PmThread, bugs: MemcachedBugs) -> Self {
        let alloc = Arc::new(PmAllocator::new(pool, OFF_BUCKETS + NBUCKETS * 8));
        let mc = Self {
            pool: pool.clone(),
            alloc,
            segments: (0..NSEGMENTS).map(|_| PmMutex::new(env, ())).collect(),
            lru_lock: PmMutex::new(env, ()),
            slab_lock: PmMutex::new(env, ()),
            clock: std::sync::atomic::AtomicU64::new(1),
            bugs,
        };
        let _f = t.frame("memcached::create");
        mc.pool.store_u64(t, mc.pool.base() + OFF_LRU_HEAD, 0);
        mc.pool.store_u64(t, mc.pool.base() + OFF_LRU_TAIL, 0);
        mc.pool.store_u64(t, mc.pool.base() + OFF_SLAB_HEAD, 0);
        for b in 0..NBUCKETS {
            mc.pool
                .store_u64(t, mc.pool.base() + OFF_BUCKETS + b * 8, 0);
        }
        mc.pool
            .persist(t, mc.pool.base(), (OFF_BUCKETS + NBUCKETS * 8) as usize);
        mc
    }

    fn bucket_addr(&self, key: u64) -> PmAddr {
        let b = pm_workloads::zipfian::fnv1a(key) % NBUCKETS;
        self.pool.base() + OFF_BUCKETS + b * 8
    }

    fn segment(&self, key: u64) -> &PmMutex<()> {
        let b = pm_workloads::zipfian::fnv1a(key) % NBUCKETS;
        &self.segments[(b as usize) % NSEGMENTS]
    }

    fn now(&self) -> u64 {
        self.clock
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    // ---- slab allocator (#13) ----

    /// Pops from the PM free list, or carves a fresh slot. The free-list
    /// head load is the `slabs.c:412` site.
    fn slabs_alloc(&self, t: &PmThread) -> PmAddr {
        let _g = self.slab_lock.lock(t);
        let _f = t.frame("memcached::slabs_alloc");
        let head = self.pool.load_u64(t, self.pool.base() + OFF_SLAB_HEAD);
        if head != 0 {
            let next = self.pool.load_u64(t, head + IT_H_NEXT);
            self.pool
                .store_u64(t, self.pool.base() + OFF_SLAB_HEAD, next);
            // The head update is persisted (the *free* side is the buggy
            // one, mirroring slabs.c:549 on the push path).
            self.pool.persist(t, self.pool.base() + OFF_SLAB_HEAD, 8);
            return head;
        }
        drop(_f);
        self.alloc
            .alloc(ITEM_SIZE)
            .expect("memcached pool exhausted")
    }

    /// Pushes a slot onto the PM free list. **Bug #13**: the head store is
    /// never persisted (`slabs.c:549`).
    fn slabs_free(&self, t: &PmThread, item: PmAddr) {
        let _g = self.slab_lock.lock(t);
        let _f = t.frame("memcached::slabs_free");
        let head = self.pool.load_u64(t, self.pool.base() + OFF_SLAB_HEAD);
        self.pool.store_u64(t, item + IT_H_NEXT, head);
        self.pool.persist(t, item + IT_H_NEXT, 8);
        self.pool
            .store_u64(t, self.pool.base() + OFF_SLAB_HEAD, item);
        if !self.bugs.unpersisted_slab_head {
            self.pool.persist(t, self.pool.base() + OFF_SLAB_HEAD, 8);
        }
        // The slot stays owned by the PM free list (not returned to the
        // arena allocator): the next `slabs_alloc` recycles the address.
    }

    /// Initializes a (possibly recycled) slot — the §7 false-positive
    /// population: on reuse these persisted stores can no longer be pruned
    /// by the Initialization Removal Heuristic.
    fn item_init(&self, t: &PmThread, item: PmAddr, key: u64, value: u64) {
        let _f = t.frame("memcached::item_init");
        self.pool.store_u64(t, item + IT_H_NEXT, 0);
        self.pool.store_u64(t, item + IT_LRU_NEXT, 0);
        self.pool.store_u64(t, item + IT_LRU_PREV, 0);
        self.pool.store_u64(t, item + IT_TIME, self.now());
        self.pool.store_u64(t, item + IT_CAS, 1);
        self.pool.store_u64(t, item + IT_KEY, key + 1);
        self.pool.store_u64(t, item + IT_NBYTES, 8);
        self.pool.store_u64(t, item + IT_DATA, value);
        self.pool.store_u64(t, item + IT_DATA + 8, 0);
        self.pool.persist(t, item, ITEM_SIZE as usize);
    }

    /// Links an item into its hash bucket and the LRU. **Bug #12**: the
    /// LRU linkage stores are left unpersisted (`items.c:423`).
    fn item_link(&self, t: &PmThread, item: PmAddr, key: u64) {
        {
            let _f = t.frame("memcached::item_link");
            let bucket = self.bucket_addr(key);
            let head = self.pool.load_u64(t, bucket);
            self.pool.store_u64(t, item + IT_H_NEXT, head);
            self.pool.persist(t, item + IT_H_NEXT, 8);
            self.pool.store_u64(t, bucket, item);
            self.pool.persist(t, bucket, 8);
        }
        let _g = self.lru_lock.lock(t);
        let _f = t.frame("memcached::item_link_lru");
        let head = self.pool.load_u64(t, self.pool.base() + OFF_LRU_HEAD);
        self.pool.store_u64(t, item + IT_LRU_NEXT, head);
        self.pool.store_u64(t, item + IT_LRU_PREV, 0);
        if head != 0 {
            self.pool.store_u64(t, head + IT_LRU_PREV, item);
        } else {
            self.pool
                .store_u64(t, self.pool.base() + OFF_LRU_TAIL, item);
        }
        self.pool
            .store_u64(t, self.pool.base() + OFF_LRU_HEAD, item);
        if !self.bugs.unpersisted_lru {
            self.pool.persist(t, item + IT_LRU_NEXT, 16);
            self.pool.persist(t, self.pool.base() + OFF_LRU_HEAD, 16);
        }
    }

    /// Unlinks an item from bucket and LRU (bucket side persisted; LRU
    /// side shares the #12 pattern).
    fn item_unlink(&self, t: &PmThread, item: PmAddr, key: u64) {
        {
            let _f = t.frame("memcached::item_unlink");
            let bucket = self.bucket_addr(key);
            let mut prev = 0;
            let mut cur = self.pool.load_u64(t, bucket);
            let mut hops = 0;
            while cur != 0 && hops < 128 {
                hops += 1;
                if cur == item {
                    let next = self.pool.load_u64(t, cur + IT_H_NEXT);
                    if prev == 0 {
                        self.pool.store_u64(t, bucket, next);
                        self.pool.persist(t, bucket, 8);
                    } else {
                        self.pool.store_u64(t, prev + IT_H_NEXT, next);
                        self.pool.persist(t, prev + IT_H_NEXT, 8);
                    }
                    break;
                }
                prev = cur;
                cur = self.pool.load_u64(t, cur + IT_H_NEXT);
            }
        }
        let _g = self.lru_lock.lock(t);
        let _f = t.frame("memcached::item_unlink_lru");
        let next = self.pool.load_u64(t, item + IT_LRU_NEXT);
        let prev = self.pool.load_u64(t, item + IT_LRU_PREV);
        if prev != 0 {
            self.pool.store_u64(t, prev + IT_LRU_NEXT, next);
        } else {
            self.pool
                .store_u64(t, self.pool.base() + OFF_LRU_HEAD, next);
        }
        if next != 0 {
            self.pool.store_u64(t, next + IT_LRU_PREV, prev);
        } else {
            self.pool
                .store_u64(t, self.pool.base() + OFF_LRU_TAIL, prev);
        }
        if !self.bugs.unpersisted_lru {
            self.pool.persist(t, self.pool.base() + OFF_LRU_HEAD, 16);
        }
    }

    /// Lock-free bucket walk; returns the item for `key` if linked. The
    /// value/metadata loads are the `memcached.c:2805`/`2824` sites.
    fn find(&self, t: &PmThread, key: u64) -> Option<PmAddr> {
        let _f = t.frame("memcached::process_get");
        let bucket = self.bucket_addr(key);
        let mut cur = self.pool.load_u64(t, bucket);
        let mut hops = 0;
        while cur != 0 && hops < 128 {
            hops += 1;
            if self.pool.load_u64(t, cur + IT_KEY) == key + 1 {
                return Some(cur);
            }
            cur = self.pool.load_u64(t, cur + IT_H_NEXT);
        }
        None
    }

    /// Lock-free get: value + response metadata, then the LRU bump.
    pub fn get(&self, t: &PmThread, key: u64) -> Option<u64> {
        let item = self.find(t, key)?;
        let value = {
            let _f = t.frame("memcached::process_get");
            self.pool.load_u64(t, item + IT_DATA)
        };
        {
            // Response metadata (`memcached.c:2824`): size, cas, linkage.
            let _f = t.frame("memcached::process_get_meta");
            self.pool.load_bytes(t, item + IT_LRU_PREV, 40);
        }
        // Staleness check (`items.c:623`) then bump (#14/#15).
        let stale = {
            let _f = t.frame("memcached::item_time_check");
            self.pool.load_u64(t, item + IT_TIME) + 4 < self.now()
        };
        if stale {
            let _g = self.lru_lock.lock(t);
            {
                let _f = t.frame("memcached::item_update_time");
                self.pool.store_u64(t, item + IT_TIME, self.now());
                if !self.bugs.unpersisted_time {
                    self.pool.persist(t, item + IT_TIME, 8);
                }
            }
            let _f = t.frame("memcached::item_bump");
            // Move to LRU head; linkage stores unpersisted (#14,
            // `items.c:1096`).
            let next = self.pool.load_u64(t, item + IT_LRU_NEXT);
            let prev = self.pool.load_u64(t, item + IT_LRU_PREV);
            if prev != 0 {
                self.pool.store_u64(t, prev + IT_LRU_NEXT, next);
                if next != 0 {
                    self.pool.store_u64(t, next + IT_LRU_PREV, prev);
                } else {
                    self.pool
                        .store_u64(t, self.pool.base() + OFF_LRU_TAIL, prev);
                }
                let head = self.pool.load_u64(t, self.pool.base() + OFF_LRU_HEAD);
                self.pool.store_u64(t, item + IT_LRU_NEXT, head);
                self.pool.store_u64(t, item + IT_LRU_PREV, 0);
                if head != 0 {
                    self.pool.store_u64(t, head + IT_LRU_PREV, item);
                }
                self.pool
                    .store_u64(t, self.pool.base() + OFF_LRU_HEAD, item);
                if !self.bugs.unpersisted_lru {
                    self.pool.persist(t, item + IT_LRU_NEXT, 16);
                }
            }
        }
        Some(value)
    }

    /// Unconditional store.
    pub fn set(&self, t: &PmThread, key: u64, value: u64) {
        let _op = t.frame("memcached::set");
        let _g = self.segment(key).lock(t);
        if let Some(item) = self.find(t, key) {
            self.pool.store_u64(t, item + IT_DATA, value);
            let cas = self.pool.load_u64(t, item + IT_CAS);
            self.pool.store_u64(t, item + IT_CAS, cas + 1);
            self.pool.persist(t, item + IT_DATA, 8);
            self.pool.persist(t, item + IT_CAS, 8);
            return;
        }
        let item = self.slabs_alloc(t);
        self.item_init(t, item, key, value);
        self.item_link(t, item, key);
    }

    /// Store-if-absent. Returns `false` if the key exists.
    pub fn add(&self, t: &PmThread, key: u64, value: u64) -> bool {
        let _op = t.frame("memcached::add");
        let _g = self.segment(key).lock(t);
        if self.find(t, key).is_some() {
            return false;
        }
        let item = self.slabs_alloc(t);
        self.item_init(t, item, key, value);
        self.item_link(t, item, key);
        true
    }

    /// Store-if-present. Returns `false` if the key is missing.
    pub fn replace(&self, t: &PmThread, key: u64, value: u64) -> bool {
        let _op = t.frame("memcached::replace");
        let _g = self.segment(key).lock(t);
        match self.find(t, key) {
            Some(item) => {
                self.pool.store_u64(t, item + IT_DATA, value);
                self.pool.persist(t, item + IT_DATA, 8);
                true
            }
            None => false,
        }
    }

    /// Append/prepend: build a **new** item from the old one — bugs
    /// #10/#11: the new item's size and data are published unpersisted.
    pub fn concat(&self, t: &PmThread, key: u64, value: u64, append: bool) -> bool {
        let _op = t.frame(if append {
            "memcached::append"
        } else {
            "memcached::prepend"
        });
        let _g = self.segment(key).lock(t);
        let Some(old) = self.find(t, key) else {
            return false;
        };
        let old_val = self.pool.load_u64(t, old + IT_DATA);
        let old_nbytes = self.pool.load_u64(t, old + IT_NBYTES);
        let item = self.slabs_alloc(t);
        self.item_init(t, item, key, old_val);
        {
            // `memcached.c:4292`: the combined size…
            let _f = t.frame("memcached::store_append_meta");
            self.pool.store_u64(t, item + IT_NBYTES, old_nbytes + 8);
            if !self.bugs.unpersisted_append {
                self.pool.persist(t, item + IT_NBYTES, 8);
            }
        }
        {
            // `memcached.c:4293`: …and the combined payload.
            let _f = t.frame("memcached::store_append_data");
            let (base, ext) = if append {
                (old_val, value)
            } else {
                (value, old_val)
            };
            self.pool.store_u64(t, item + IT_DATA, base);
            self.pool.store_u64(t, item + IT_DATA + 8, ext);
            if !self.bugs.unpersisted_append {
                self.pool.persist(t, item + IT_DATA, 16);
            }
        }
        self.item_unlink(t, old, key);
        self.item_link(t, item, key);
        self.slabs_free(t, old);
        true
    }

    /// Compare-and-store against the item's cas token.
    pub fn cas(&self, t: &PmThread, key: u64, value: u64) -> bool {
        let _op = t.frame("memcached::cas");
        let token = match self.find(t, key) {
            Some(item) => self.pool.load_u64(t, item + IT_CAS),
            None => return false,
        };
        let _g = self.segment(key).lock(t);
        match self.find(t, key) {
            Some(item) if self.pool.load_u64(t, item + IT_CAS) == token => {
                self.pool.store_u64(t, item + IT_DATA, value);
                self.pool.store_u64(t, item + IT_CAS, token + 1);
                self.pool.persist(t, item + IT_DATA, 8);
                self.pool.persist(t, item + IT_CAS, 8);
                true
            }
            _ => false,
        }
    }

    /// Numeric increment/decrement.
    pub fn delta(&self, t: &PmThread, key: u64, delta: i64) -> bool {
        let _op = t.frame("memcached::incr_decr");
        let _g = self.segment(key).lock(t);
        match self.find(t, key) {
            Some(item) => {
                let v = self.pool.load_u64(t, item + IT_DATA);
                self.pool
                    .store_u64(t, item + IT_DATA, v.wrapping_add_signed(delta));
                self.pool.persist(t, item + IT_DATA, 8);
                true
            }
            None => false,
        }
    }

    /// Removes the item and recycles its slot.
    pub fn delete(&self, t: &PmThread, key: u64) -> bool {
        let _op = t.frame("memcached::delete");
        let _g = self.segment(key).lock(t);
        match self.find(t, key) {
            Some(item) => {
                self.item_unlink(t, item, key);
                self.slabs_free(t, item);
                true
            }
            None => false,
        }
    }

    /// The LRU crawler: walks a few items from the head — the
    /// `items.c:464` load site of bug #12.
    pub fn lru_crawl(&self, t: &PmThread) {
        let _f = t.frame("memcached::lru_walk");
        let mut cur = self.pool.load_u64(t, self.pool.base() + OFF_LRU_HEAD);
        let mut hops = 0;
        while cur != 0 && hops < 8 {
            hops += 1;
            self.pool.load_u64(t, cur + IT_TIME);
            cur = self.pool.load_u64(t, cur + IT_LRU_NEXT);
        }
    }

    /// Executes one protocol operation.
    pub fn run_op(&self, t: &PmThread, op: &CacheOp) {
        match op {
            CacheOp::Set { key, value } => self.set(t, *key, *value),
            CacheOp::Get { key } => {
                self.get(t, *key);
            }
            CacheOp::Add { key, value } => {
                self.add(t, *key, *value);
            }
            CacheOp::Replace { key, value } => {
                self.replace(t, *key, *value);
            }
            CacheOp::Append { key, value } => {
                self.concat(t, *key, *value, true);
            }
            CacheOp::Prepend { key, value } => {
                self.concat(t, *key, *value, false);
            }
            CacheOp::Cas { key, value } => {
                self.cas(t, *key, *value);
            }
            CacheOp::Delete { key } => {
                self.delete(t, *key);
            }
            CacheOp::Incr { key } => {
                self.delta(t, *key, 1);
            }
            CacheOp::Decr { key } => {
                self.delta(t, *key, -1);
            }
        }
    }
}

/// The Table 1 driver for Memcached-pmem.
pub struct MemcachedApp;

impl Application for MemcachedApp {
    fn name(&self) -> &'static str {
        "Memcached-pmem"
    }

    fn sync_method(&self) -> &'static str {
        "Lock-Free"
    }

    fn known_races(&self) -> Vec<KnownRace> {
        vec![
            KnownRace::malign(
                10,
                false,
                "memcached::store_append_meta",
                "memcached::process_get_meta",
                "load unpersisted value",
            ),
            KnownRace::malign(
                11,
                false,
                "memcached::store_append_data",
                "memcached::process_get",
                "load unpersisted value",
            ),
            KnownRace::malign(
                12,
                false,
                "memcached::item_link_lru",
                "memcached::lru_walk",
                "load unpersisted value",
            ),
            KnownRace::malign(
                13,
                false,
                "memcached::slabs_free",
                "memcached::slabs_alloc",
                "load unpersisted pointer",
            ),
            KnownRace::malign(
                14,
                false,
                "memcached::item_bump",
                "memcached::process_get_meta",
                "load unpersisted metadata",
            ),
            KnownRace::malign(
                15,
                false,
                "memcached::item_update_time",
                "memcached::item_time_check",
                "load unpersisted metadata",
            ),
            KnownRace::benign(
                "memcached::set",
                "memcached::process_get",
                "locked store vs lock-free get",
            ),
            KnownRace::benign(
                "memcached::set",
                "memcached::process_get_meta",
                "cas bump vs metadata read",
            ),
            KnownRace::benign(
                "memcached::replace",
                "memcached::process_get",
                "locked replace vs get",
            ),
            KnownRace::benign(
                "memcached::incr_decr",
                "memcached::process_get",
                "locked delta vs get",
            ),
            KnownRace::benign(
                "memcached::cas",
                "memcached::process_get",
                "locked cas vs get",
            ),
            KnownRace::benign(
                "memcached::cas",
                "memcached::process_get_meta",
                "cas token bump vs metadata read",
            ),
            KnownRace::benign(
                "memcached::item_link",
                "memcached::process_get",
                "bucket relink vs walk",
            ),
            KnownRace::benign(
                "memcached::item_unlink",
                "memcached::process_get",
                "bucket unlink vs walk",
            ),
            KnownRace::benign(
                "memcached::item_link_lru",
                "memcached::process_get_meta",
                "LRU linkage vs metadata read",
            ),
            KnownRace::benign(
                "memcached::item_unlink_lru",
                "memcached::process_get_meta",
                "LRU unlink vs metadata read",
            ),
            KnownRace::benign(
                "memcached::item_unlink_lru",
                "memcached::lru_walk",
                "LRU unlink vs crawler",
            ),
            KnownRace::benign(
                "memcached::item_bump",
                "memcached::lru_walk",
                "bump vs crawler",
            ),
            KnownRace::benign(
                "memcached::item_bump",
                "memcached::process_get",
                "bump vs value read",
            ),
            KnownRace::benign(
                "memcached::item_update_time",
                "memcached::process_get_meta",
                "time store vs metadata read",
            ),
            KnownRace::benign(
                "memcached::item_update_time",
                "memcached::lru_walk",
                "time store vs crawler",
            ),
            KnownRace::benign(
                "memcached::store_append_meta",
                "memcached::lru_walk",
                "new item metadata vs crawler",
            ),
            KnownRace::benign(
                "memcached::store_append_data",
                "memcached::process_get_meta",
                "payload vs metadata read",
            ),
            KnownRace::benign(
                "memcached::item_bump",
                "memcached::item_bump",
                "unpersisted LRU window read by a later bump",
            ),
            KnownRace::benign(
                "memcached::item_bump",
                "memcached::item_link_lru",
                "unpersisted LRU window read while linking",
            ),
            KnownRace::benign(
                "memcached::item_bump",
                "memcached::item_unlink_lru",
                "unpersisted LRU window read while unlinking",
            ),
            KnownRace::benign(
                "memcached::item_link_lru",
                "memcached::item_bump",
                "unpersisted linkage read by a bump",
            ),
            KnownRace::benign(
                "memcached::item_link_lru",
                "memcached::item_link_lru",
                "unpersisted linkage read while linking",
            ),
            KnownRace::benign(
                "memcached::item_link_lru",
                "memcached::item_unlink_lru",
                "unpersisted linkage read while unlinking",
            ),
            KnownRace::benign(
                "memcached::item_unlink_lru",
                "memcached::item_bump",
                "unpersisted unlink read by a bump",
            ),
            KnownRace::benign(
                "memcached::item_unlink_lru",
                "memcached::item_link_lru",
                "unpersisted unlink read while linking",
            ),
            KnownRace::benign(
                "memcached::item_unlink_lru",
                "memcached::item_unlink_lru",
                "unpersisted unlink read while unlinking",
            ),
            KnownRace::benign(
                "memcached::slabs_free",
                "memcached::slabs_free",
                "unpersisted free-list head read by a later free",
            ),
            KnownRace::benign(
                "memcached::store_append_meta",
                "memcached::append",
                "unpersisted size read by a later concat",
            ),
            KnownRace::benign(
                "memcached::store_append_meta",
                "memcached::prepend",
                "unpersisted size read by a later concat",
            ),
            KnownRace::benign(
                "memcached::store_append_data",
                "memcached::append",
                "unpersisted payload read by a later concat",
            ),
            KnownRace::benign(
                "memcached::store_append_data",
                "memcached::prepend",
                "unpersisted payload read by a later concat",
            ),
            KnownRace::benign(
                "memcached::store_append_data",
                "memcached::incr_decr",
                "unpersisted payload read by a delta",
            ),
            KnownRace::benign(
                "memcached::item_link",
                "memcached::item_unlink",
                "bucket relink vs unlink walk",
            ),
            KnownRace::benign(
                "memcached::item_unlink",
                "memcached::item_unlink",
                "bucket unlink vs unlink walk",
            ),
        ]
    }

    fn default_workload(&self, main_ops: u64, seed: u64) -> AppWorkload {
        let (load, per_thread) = memcached_workload(1000, main_ops, 8, seed);
        AppWorkload::Cache { load, per_thread }
    }

    fn execute_with(&self, workload: &AppWorkload, opts: &ExecOptions) -> ExecResult {
        let AppWorkload::Cache { load, per_thread } = workload else {
            panic!("Memcached consumes cache workloads")
        };
        run_memcached(load, per_thread, opts, MemcachedBugs::default())
    }
}

/// Runs a memcached workload against a fresh cache.
pub fn run_memcached(
    load: &[CacheOp],
    per_thread: &[Vec<CacheOp>],
    opts: &ExecOptions,
    bugs: MemcachedBugs,
) -> ExecResult {
    let env = env_for(opts);
    let ops = load.len() + per_thread.iter().map(Vec::len).sum::<usize>();
    let pool = env.map_pool("/mnt/pmem/memcached", (1 << 20) + ops as u64 * ITEM_SIZE);
    let main = env.main_thread();
    let mc = Arc::new(Memcached::create(&env, &pool, &main, bugs));
    for op in load {
        mc.run_op(&main, op);
    }
    let schedules = Arc::new(per_thread.to_vec());
    let mc2 = Arc::clone(&mc);
    run_workers(&env, &main, per_thread.len(), move |i, t| {
        for (n, op) in schedules[i].iter().enumerate() {
            mc2.run_op(t, op);
            if n % 32 == 31 {
                mc2.lru_crawl(t);
            }
        }
    });
    let observations = env.take_observations();
    ExecResult {
        trace: env.finish(),
        observations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::score;
    use hawkset_core::analysis::Analyzer;

    fn fresh() -> (PmEnv, Arc<Memcached>, PmThread) {
        let env = PmEnv::new();
        let pool = env.map_pool("/mnt/pmem/mc-test", 1 << 22);
        let main = env.main_thread();
        let mc = Arc::new(Memcached::create(
            &env,
            &pool,
            &main,
            MemcachedBugs::default(),
        ));
        (env, mc, main)
    }

    #[test]
    fn set_get_roundtrip() {
        let (_env, mc, t) = fresh();
        mc.set(&t, 1, 100);
        mc.set(&t, 2, 200);
        assert_eq!(mc.get(&t, 1), Some(100));
        assert_eq!(mc.get(&t, 2), Some(200));
        assert_eq!(mc.get(&t, 3), None);
        mc.set(&t, 1, 111);
        assert_eq!(mc.get(&t, 1), Some(111));
    }

    #[test]
    fn add_replace_semantics() {
        let (_env, mc, t) = fresh();
        assert!(mc.add(&t, 1, 10));
        assert!(!mc.add(&t, 1, 20), "add on existing key fails");
        assert_eq!(mc.get(&t, 1), Some(10));
        assert!(mc.replace(&t, 1, 30));
        assert_eq!(mc.get(&t, 1), Some(30));
        assert!(!mc.replace(&t, 2, 1), "replace on missing key fails");
    }

    #[test]
    fn append_builds_new_item() {
        let (_env, mc, t) = fresh();
        mc.set(&t, 5, 7);
        assert!(mc.concat(&t, 5, 9, true));
        assert_eq!(mc.get(&t, 5), Some(7), "base value survives append");
        assert!(!mc.concat(&t, 99, 1, false), "concat on missing key fails");
    }

    #[test]
    fn incr_decr_delete() {
        let (_env, mc, t) = fresh();
        mc.set(&t, 1, 10);
        assert!(mc.delta(&t, 1, 1));
        assert!(mc.delta(&t, 1, -2));
        assert_eq!(mc.get(&t, 1), Some(9));
        assert!(mc.delete(&t, 1));
        assert_eq!(mc.get(&t, 1), None);
        assert!(!mc.delete(&t, 1));
    }

    #[test]
    fn cas_respects_token() {
        let (_env, mc, t) = fresh();
        mc.set(&t, 1, 10);
        assert!(mc.cas(&t, 1, 20));
        assert_eq!(mc.get(&t, 1), Some(20));
    }

    #[test]
    fn slab_reuse_recycles_addresses() {
        let (_env, mc, t) = fresh();
        mc.set(&t, 1, 10);
        let item = mc.find(&t, 1).unwrap();
        mc.delete(&t, 1);
        mc.set(&t, 2, 20);
        let item2 = mc.find(&t, 2).unwrap();
        assert_eq!(item, item2, "freed slot must be reused (the §7 FP driver)");
    }

    #[test]
    fn detects_bugs_10_to_15() {
        let (load, per_thread) = memcached_workload(200, 3000, 8, 21);
        let res = run_memcached(
            &load,
            &per_thread,
            &ExecOptions::default(),
            MemcachedBugs::default(),
        );
        let report = Analyzer::default().run(&res.trace);
        let b = score(&report.races, &MemcachedApp.known_races());
        for id in [10, 11, 12, 13, 14, 15] {
            assert!(
                b.detected_ids.contains(&id),
                "bug #{id} missing: {:?}",
                b.detected_ids
            );
        }
    }

    /// §7: memory reuse defeats the IRH — the FP population must survive
    /// even with the heuristic on.
    #[test]
    fn irh_cannot_prune_reuse_fps() {
        let (load, per_thread) = memcached_workload(200, 2000, 8, 22);
        let res = run_memcached(
            &load,
            &per_thread,
            &ExecOptions::default(),
            MemcachedBugs::default(),
        );
        let with_irh = Analyzer::default().run(&res.trace);
        let b = score(&with_irh.races, &MemcachedApp.known_races());
        assert!(
            !b.false_positives.is_empty(),
            "slab reuse must leave false positives the IRH cannot prune"
        );
    }
}
