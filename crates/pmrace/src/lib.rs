//! # pmrace
//!
//! An observation-based concurrent PM bug detection baseline, modelled on
//! PMRace (ASPLOS'22) as described in §5.2 and §6.3 of the HawkSet paper.
//!
//! PMRace's first stage — the one HawkSet is compared against — detects a
//! *PM inter-thread inconsistency* only when a concrete execution actually
//! performs a load of data that another thread wrote and has not yet
//! persisted. To make such interleavings more likely it runs fuzzing
//! campaigns: each seed workload is executed repeatedly, mutated between
//! rounds, with random delays injected at PM operations.
//!
//! This crate reproduces exactly that shape on top of the same
//! instrumented runtime the HawkSet pipeline uses:
//!
//! * the runtime's shadow persistence state flags every *observed* read of
//!   unpersisted foreign data ([`pm_runtime::Observation`]);
//! * [`DelayInjector`] perturbs schedules at PM-operation granularity;
//! * [`fuzz_app`] drives mutation rounds and aggregates observations;
//! * [`expected_time_to_race`] implements the paper's Table 3 metric;
//! * [`run_crash_campaign`] goes one step past observation: it crashes the
//!   application at injected points, restarts it from the persisted-only
//!   image, and audits recovery — the PMRace post-failure stage, supervised
//!   (panic isolation, watchdog, retries, checkpoint/resume);
//! * [`Steer`] makes crash campaigns coverage-guided: rounds become points
//!   in a multi-axis configuration space, rounds that add new
//!   [`CoveragePoint`]s enter an AFL-style corpus, and later rounds are
//!   derived by weighted mutation of corpus entries — deterministically in
//!   the campaign seed, resumable from the checkpoint alone.

pub mod campaign;
pub mod coverage;
pub mod crashtest;
pub mod delay;
pub mod metric;
pub mod steer;

pub use campaign::{fuzz_app, CampaignConfig, CampaignResult, ObservedRace};
pub use coverage::{extract_coverage, CoveragePoint};
pub use crashtest::{
    attribute_races, load_checkpoint, run_crash_campaign, AttributedRace, CampaignCheckpoint,
    CampaignMetrics, CampaignTiming, CoverageReport, CoverageTick, CrashCampaignConfig,
    CrashCampaignResult, FaultKind, InjectedFault, RoundOutcome, RoundRecord,
};
pub use delay::{DelayInjector, DelayRule, DelaySpec, PointClass};
pub use metric::expected_time_to_race;
pub use steer::{materialize_workload, round_seed, Axis, AxisSet, CorpusEntry, RoundPlan, Steer};
