//! Race reports.
//!
//! A report entry corresponds to one distinct (store backtrace, load
//! backtrace) pair — the same identity the paper uses in Table 2, where a
//! race is named by its store and load source locations. All concrete
//! (window, load) pairs with the same backtraces are collapsed into one
//! entry with a pair count.

use serde::{Deserialize, Serialize};

use super::repair::FixReport;
use super::{Coverage, PipelineStats};
use crate::addr::AddrRange;
use crate::obs::MetricsSnapshot;
use crate::trace::{Frame, StackId, ThreadId, Trace};

/// Deduplication key of a race: the two backtraces.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct RaceKey {
    /// Backtrace of the store.
    pub store_stack: StackId,
    /// Backtrace of the load.
    pub load_stack: StackId,
}

/// One reported persistency-induced race.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Race {
    /// Deduplication key (stack ids, resolvable via the trace).
    pub key: RaceKey,
    /// Innermost frame of the store backtrace (the store site).
    pub store_site: Option<Frame>,
    /// Innermost frame of the load backtrace (the load site).
    pub load_site: Option<Frame>,
    /// Thread of the first observed racy store.
    pub store_tid: ThreadId,
    /// Thread of the first observed racy load.
    pub load_tid: ThreadId,
    /// Example overlapping byte range.
    pub example_range: AddrRange,
    /// Number of concrete racy (window, load) pairs collapsed here.
    pub pair_count: u64,
    /// The store was part of an atomic instruction.
    pub store_atomic: bool,
    /// The load was part of an atomic instruction.
    pub load_atomic: bool,
    /// The store was non-temporal.
    pub store_non_temporal: bool,
    /// At least one racy window was never explicitly persisted — a missing
    /// flush/fence rather than a mis-ordered one.
    pub store_never_persisted: bool,
    /// At least one racy window had an **empty effective lockset**: no lock
    /// spanned the store→persist window at all. This is the signature of a
    /// store that can be lost while its critical section has already ended
    /// (Figure 2) — as opposed to races that exist only because the reader
    /// is lock-free.
    pub effective_lockset_empty: bool,
    /// `true` for store/store pairs, only produced when
    /// [`AnalysisConfig::check_store_store`] is enabled (HawkSet's default
    /// deliberately skips them, §3.1.1). The "load" fields then describe
    /// the second store.
    ///
    /// [`AnalysisConfig::check_store_store`]: super::AnalysisConfig::check_store_store
    #[serde(default)]
    pub store_store: bool,
}

impl Race {
    /// `file:line (function)` of the store site, or a placeholder.
    pub fn store_site_str(&self) -> String {
        self.store_site
            .as_ref()
            .map(|f| f.render())
            .unwrap_or_else(|| "<unknown>".into())
    }

    /// `file:line (function)` of the load site, or a placeholder.
    pub fn load_site_str(&self) -> String {
        self.load_site
            .as_ref()
            .map(|f| f.render())
            .unwrap_or_else(|| "<unknown>".into())
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        if self.store_store {
            return format!(
                "store-store pair: {} vs {} ({} pairs, {})",
                self.store_site_str(),
                self.load_site_str(),
                self.pair_count,
                self.example_range,
            );
        }
        let kind = if self.store_never_persisted {
            "unpersisted store"
        } else {
            "late persist"
        };
        format!(
            "{} by {} at {} raced with load by {} at {} ({} pairs, {})",
            kind,
            self.store_tid,
            self.store_site_str(),
            self.load_tid,
            self.load_site_str(),
            self.pair_count,
            self.example_range,
        )
    }
}

/// One race site with its lockset state, rendered to strings so that
/// signatures from *different traces* compare: [`RaceKey`] stack ids are
/// only meaningful within one trace, but `file:line (function)` renders
/// are stable across runs of the same program. This is the
/// coverage-extraction primitive steered campaigns build on.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteSignature {
    /// Rendered store site (`Race::store_site_str`).
    pub store_site: String,
    /// Rendered load site (`Race::load_site_str`).
    pub load_site: String,
    /// [`Race::store_never_persisted`] at this site.
    pub store_never_persisted: bool,
    /// [`Race::effective_lockset_empty`] at this site.
    pub effective_lockset_empty: bool,
}

/// Version of the JSON shape [`AnalysisReport::to_json`] emits. Bump on
/// any rename, removal, or retyping of a serialized field; additions are
/// backward-compatible and do not bump it.
pub const SCHEMA_VERSION: u64 = 1;

/// The result of analyzing one trace.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    /// Distinct races, most frequent first.
    pub races: Vec<Race>,
    /// Pipeline statistics.
    pub stats: PipelineStats,
    /// How much of the trace the run covered; `coverage.truncated` means a
    /// resource budget stopped the run early, so absence of a race from
    /// [`races`](Self::races) is not evidence of absence.
    pub coverage: Coverage,
    /// The full observability snapshot of the run ([`Analyzer::run`] fills
    /// it; hand-assembled reports leave it `None`). Serialized as an
    /// optional, self-versioned `metrics` key — an *addition* to schema
    /// v1, so v1 consumers that ignore unknown keys are unbroken and
    /// [`SCHEMA_VERSION`] does not bump.
    ///
    /// [`Analyzer::run`]: super::Analyzer::run
    pub metrics: Option<MetricsSnapshot>,
    /// Replay-validated repair suggestions, one per non-store-store race
    /// ([`AnalysisConfig::suggest_fixes`]). Serialized as an optional,
    /// self-versioned `fixes` key — the same no-bump addition pattern as
    /// `metrics`: absent unless the flag produced at least one suggestion.
    ///
    /// [`AnalysisConfig::suggest_fixes`]: super::AnalysisConfig::suggest_fixes
    pub fixes: Option<FixReport>,
}

impl AnalysisReport {
    /// Extracts the sorted, deduplicated [`SiteSignature`] set of this
    /// report. Deterministic for a deterministic report: the analysis
    /// pipeline is bit-identical at every thread count, so signatures are
    /// too — a property steered campaigns rely on when they compare
    /// coverage across rounds.
    pub fn site_signatures(&self) -> Vec<SiteSignature> {
        let mut sigs: Vec<SiteSignature> = self
            .races
            .iter()
            .filter(|r| !r.store_store)
            .map(|r| SiteSignature {
                store_site: r.store_site_str(),
                load_site: r.load_site_str(),
                store_never_persisted: r.store_never_persisted,
                effective_lockset_empty: r.effective_lockset_empty,
            })
            .collect();
        sigs.sort();
        sigs.dedup();
        sigs
    }

    /// Renders a human-readable report with full backtraces.
    pub fn render(&self, trace: &Trace) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "HawkSet: {} persistency-induced race(s) detected\n",
            self.races.len()
        ));
        for (i, race) in self.races.iter().enumerate() {
            out.push_str(&format!(
                "\n== race #{} ({} racy pairs) ==\n",
                i + 1,
                race.pair_count
            ));
            out.push_str(&format!(
                "store  [{}{}{}] by {} touching {}\n",
                if race.store_never_persisted {
                    "never-persisted"
                } else {
                    "persisted-late"
                },
                if race.store_atomic { ", atomic" } else { "" },
                if race.store_non_temporal {
                    ", non-temporal"
                } else {
                    ""
                },
                race.store_tid,
                race.example_range,
            ));
            out.push_str(&trace.stacks.render(race.key.store_stack));
            out.push_str(&format!(
                "load   [{}] by {}\n",
                if race.load_atomic { "atomic" } else { "plain" },
                race.load_tid,
            ));
            out.push_str(&trace.stacks.render(race.key.load_stack));
            if let Some(fixes) = &self.fixes {
                if let Some(f) = fixes.suggestions.iter().find(|f| f.race == race.key) {
                    out.push_str(&format!("repair {}\n", f.summary()));
                }
            }
        }
        if self.coverage.truncated {
            let reason = self
                .coverage
                .reason
                .map(|r| r.to_string())
                .unwrap_or_else(|| "budget".into());
            out.push_str(&format!(
                "\nWARNING: analysis truncated by {} — covered {}/{} events, \
                 {}/{} store-window groups; absent races are not ruled out\n",
                reason,
                self.coverage.events_analyzed,
                self.coverage.events_total,
                self.coverage.window_groups_examined,
                self.coverage.window_groups_total,
            ));
        }
        let q = &self.stats.quarantine;
        if q.total() > 0 {
            out.push_str(&format!(
                "\nquarantined {} ill-formed event(s): {} dangling release, \
                 {} orphan thread, {} join-before-create, {} double create, \
                 {} bad stack, {} wild range\n",
                q.total(),
                q.dangling_release,
                q.orphan_thread,
                q.join_before_create,
                q.double_create,
                q.bad_stack,
                q.wild_range,
            ));
        }
        out
    }

    /// Serializes the full report to the versioned JSON schema (the CLI's
    /// machine-readable output).
    ///
    /// Shape (schema version [`SCHEMA_VERSION`], field names stable, see
    /// DESIGN.md §"Report schema"):
    ///
    /// ```json
    /// {
    ///   "schema_version": 1,
    ///   "races": [ { "key": ..., "store_site": ..., ... } ],
    ///   "coverage": { "truncated": ..., "reason": ..., ... },
    ///   "stats": { "sim": {...}, "pairing": {...},
    ///              "quarantine": {...}, "duration_ms": ... },
    ///   "metrics": { "version": 1, "ingest": {...}, "memsim": {...},
    ///                "irh": {...}, "pairing": {...}, "timing": {...} },
    ///   "fixes": { "version": 1, "suggestions": [ { "race": ..., "kind": ...,
    ///              "validated": ..., "status": ... } ] }
    /// }
    /// ```
    ///
    /// The `metrics` and `fixes` keys are optional (absent when
    /// [`Self::metrics`] / [`Self::fixes`] is `None`) and carry their own
    /// `version`; adding them did not bump [`SCHEMA_VERSION`] because
    /// additions are backward-compatible by the documented policy above.
    pub fn to_json(&self) -> String {
        use serde::{Map, Number, Value};
        let to_value =
            |v: &dyn serde::Serialize| serde_json::to_value(v).expect("serialization cannot fail");
        let mut stats = Map::new();
        stats.insert("sim", to_value(&self.stats.sim));
        stats.insert("pairing", to_value(&self.stats.pairing));
        stats.insert("quarantine", to_value(&self.stats.quarantine));
        // Duration carried as a float of milliseconds: `std::time::Duration`
        // has no stable serialized form.
        stats.insert(
            "duration_ms",
            Value::Number(Number::Float(self.stats.duration.as_secs_f64() * 1e3)),
        );
        let mut root = Map::new();
        root.insert(
            "schema_version",
            Value::Number(Number::PosInt(SCHEMA_VERSION)),
        );
        root.insert("races", to_value(&self.races));
        root.insert("coverage", to_value(&self.coverage));
        root.insert("stats", Value::Object(stats));
        // Optional and self-versioned (`metrics.version`): a
        // backward-compatible addition, not a schema bump.
        if let Some(metrics) = &self.metrics {
            root.insert("metrics", to_value(metrics));
        }
        // Same pattern for the repair suggestions: optional, self-versioned
        // (`fixes.version`), never present without at least one suggestion.
        if let Some(fixes) = &self.fixes {
            if !fixes.suggestions.is_empty() {
                root.insert("fixes", to_value(fixes));
            }
        }
        serde_json::to_string_pretty(&Value::Object(root))
            .expect("report serialization cannot fail")
    }

    /// True when no race was found.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_race() -> Race {
        Race {
            key: RaceKey {
                store_stack: 1,
                load_stack: 2,
            },
            store_site: Some(Frame::new("insert", "btree.h", 560)),
            load_site: Some(Frame::new("search", "btree.h", 878)),
            store_tid: ThreadId(0),
            load_tid: ThreadId(1),
            example_range: AddrRange::new(0x1000, 8),
            pair_count: 3,
            store_atomic: false,
            load_atomic: true,
            store_non_temporal: false,
            store_never_persisted: true,
            effective_lockset_empty: true,
            store_store: false,
        }
    }

    #[test]
    fn summary_mentions_sites_and_kind() {
        let s = sample_race().summary();
        assert!(s.contains("btree.h:560"));
        assert!(s.contains("btree.h:878"));
        assert!(s.contains("unpersisted store"));
    }

    /// Signatures deduplicate by rendered site + lockset state, sort
    /// deterministically, and skip store-store pairs (whose "load" fields
    /// describe a second store, not a load site).
    #[test]
    fn site_signatures_dedupe_sort_and_skip_store_store() {
        let mut a = sample_race();
        let mut b = sample_race();
        // Same sites but a different stack pair: still one signature.
        b.key.store_stack = 9;
        let mut c = sample_race();
        c.store_site = Some(Frame::new("delete", "btree.h", 120));
        let mut ss = sample_race();
        ss.store_store = true;
        a.pair_count = 1;
        let report = AnalysisReport {
            races: vec![a, b, c, ss],
            ..Default::default()
        };
        let sigs = report.site_signatures();
        assert_eq!(sigs.len(), 2, "two distinct sites expected: {sigs:?}");
        assert!(sigs.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");
        assert!(sigs.iter().all(|s| !s.store_site.is_empty()));
        let json = serde_json::to_string(&sigs).unwrap();
        let back: Vec<SiteSignature> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sigs);
    }

    #[test]
    fn json_roundtrip() {
        let race = sample_race();
        let report = AnalysisReport {
            races: vec![race.clone()],
            ..Default::default()
        };
        let json = report.to_json();
        let value: serde::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["schema_version"], SCHEMA_VERSION);
        let back: Vec<Race> = serde_json::from_value(value["races"].clone()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], race);
        assert_eq!(back[0].store_site.as_ref().unwrap().line, 560);
    }

    #[test]
    fn clean_report() {
        let report = AnalysisReport::default();
        assert!(report.is_clean());
        let value: serde::Value = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(value["races"], serde::Value::Array(vec![]));
    }

    /// Pins the serialized shape of schema version 1. A failure here means
    /// a breaking schema change: bump [`SCHEMA_VERSION`] and document the
    /// migration in DESIGN.md instead of editing the expectations.
    #[test]
    fn schema_v1_shape_is_pinned() {
        let report = AnalysisReport {
            races: vec![sample_race()],
            coverage: Coverage {
                truncated: true,
                reason: Some(super::super::BudgetExceeded::CandidatePairs),
                ..Default::default()
            },
            ..Default::default()
        };
        let value: serde::Value = serde_json::from_str(&report.to_json()).unwrap();

        let keys = |v: &serde::Value| -> Vec<String> {
            match v {
                serde::Value::Object(m) => m.iter().map(|(k, _)| k.clone()).collect(),
                other => panic!("expected object, got {other:?}"),
            }
        };
        assert_eq!(
            keys(&value),
            ["schema_version", "races", "coverage", "stats"]
        );
        assert_eq!(value["schema_version"], 1u64);
        assert_eq!(
            keys(&value["coverage"]),
            [
                "truncated",
                "reason",
                "events_analyzed",
                "events_total",
                "window_groups_examined",
                "window_groups_total"
            ]
        );
        assert_eq!(value["coverage"]["reason"], "candidate_pairs");
        assert_eq!(
            keys(&value["stats"]),
            ["sim", "pairing", "quarantine", "duration_ms"]
        );
        assert_eq!(
            keys(&value["stats"]["pairing"]),
            [
                "live_windows",
                "live_loads",
                "candidate_pairs",
                "hb_pruned",
                "lockset_protected",
                "racy_pairs",
                "distinct_races",
                "hb_memo_hits",
                "lockset_memo_hits"
            ]
        );
        assert_eq!(
            keys(&value["races"][0]),
            [
                "key",
                "store_site",
                "load_site",
                "store_tid",
                "load_tid",
                "example_range",
                "pair_count",
                "store_atomic",
                "load_atomic",
                "store_non_temporal",
                "store_never_persisted",
                "effective_lockset_empty",
                "store_store"
            ]
        );
        assert!(keys(&value["stats"]["sim"]).contains(&"events".to_string()));
        assert!(keys(&value["stats"]["quarantine"]).contains(&"dangling_release".to_string()));
    }

    /// The `metrics` key is a versioned, optional addition to schema v1:
    /// absent on hand-built reports, present (after the pinned v1 keys)
    /// with its own `version` when the pipeline fills it.
    #[test]
    fn metrics_key_is_optional_and_self_versioned() {
        let keys = |v: &serde::Value| -> Vec<String> {
            match v {
                serde::Value::Object(m) => m.iter().map(|(k, _)| k.clone()).collect(),
                other => panic!("expected object, got {other:?}"),
            }
        };
        let bare = AnalysisReport::default();
        let value: serde::Value = serde_json::from_str(&bare.to_json()).unwrap();
        assert_eq!(
            keys(&value),
            ["schema_version", "races", "coverage", "stats"],
            "absent metrics must leave the v1 shape untouched"
        );

        let with_metrics = AnalysisReport {
            metrics: Some(MetricsSnapshot::default()),
            ..Default::default()
        };
        let value: serde::Value = serde_json::from_str(&with_metrics.to_json()).unwrap();
        assert_eq!(
            keys(&value),
            ["schema_version", "races", "coverage", "stats", "metrics"]
        );
        assert_eq!(value["schema_version"], 1u64, "additions do not bump v1");
        assert_eq!(value["metrics"]["version"], 1u64);
        assert_eq!(
            keys(&value["metrics"]),
            ["version", "ingest", "memsim", "irh", "pairing", "timing"]
        );
        let back: MetricsSnapshot = serde_json::from_value(value["metrics"].clone()).unwrap();
        assert_eq!(back, MetricsSnapshot::default());
    }

    /// The `fixes` key follows the same optional, self-versioned addition
    /// pattern as `metrics`: absent by default, absent even when `Some`
    /// but empty, present (after `metrics`) with its own `version` and a
    /// pinned suggestion shape otherwise.
    #[test]
    fn fixes_key_is_optional_and_self_versioned() {
        use crate::analysis::repair::{FixKind, FixReport, FixStatus, FixSuggestion};
        let keys = |v: &serde::Value| -> Vec<String> {
            match v {
                serde::Value::Object(m) => m.iter().map(|(k, _)| k.clone()).collect(),
                other => panic!("expected object, got {other:?}"),
            }
        };
        let bare = AnalysisReport::default();
        let value: serde::Value = serde_json::from_str(&bare.to_json()).unwrap();
        assert_eq!(
            keys(&value),
            ["schema_version", "races", "coverage", "stats"],
            "absent fixes must leave the v1 shape untouched"
        );

        let empty = AnalysisReport {
            fixes: Some(FixReport::new(Vec::new())),
            ..Default::default()
        };
        let value: serde::Value = serde_json::from_str(&empty.to_json()).unwrap();
        assert_eq!(
            keys(&value),
            ["schema_version", "races", "coverage", "stats"],
            "an empty suggestion list must not emit the key"
        );

        let with_fixes = AnalysisReport {
            races: vec![sample_race()],
            metrics: Some(MetricsSnapshot::default()),
            fixes: Some(FixReport::new(vec![FixSuggestion {
                race: RaceKey {
                    store_stack: 1,
                    load_stack: 2,
                },
                kind: FixKind::FlushFence {
                    after_seq: 7,
                    line: 0x1000,
                },
                validated: true,
                status: FixStatus::Fix,
            }])),
            ..Default::default()
        };
        let value: serde::Value = serde_json::from_str(&with_fixes.to_json()).unwrap();
        assert_eq!(
            keys(&value),
            [
                "schema_version",
                "races",
                "coverage",
                "stats",
                "metrics",
                "fixes"
            ]
        );
        assert_eq!(value["schema_version"], 1u64, "additions do not bump v1");
        assert_eq!(value["fixes"]["version"], 1u64);
        assert_eq!(keys(&value["fixes"]), ["version", "suggestions"]);
        let s = &value["fixes"]["suggestions"][0];
        assert_eq!(keys(s), ["race", "kind", "validated", "status"]);
        assert_eq!(s["race"]["store_stack"], 1u64);
        assert_eq!(s["kind"]["flush_fence"]["after_seq"], 7u64);
        assert_eq!(s["kind"]["flush_fence"]["line"], 0x1000u64);
        assert_eq!(s["validated"], true);
        assert_eq!(s["status"], "fix");
        let back: FixReport = serde_json::from_value(value["fixes"].clone()).unwrap();
        assert_eq!(Some(back), with_fixes.fixes);
    }
}
