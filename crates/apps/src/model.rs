//! Linear models for the learned indexes (WIPE, APEX).
//!
//! Both learned indexes position keys with a linear regression over the
//! key distribution (ALEX lineage). The model is trained once on the load
//! phase and then used as a *deterministic* key → partition function by
//! writers and readers alike.

/// A linear model `pos = slope * key + intercept`, clamped to a partition
/// range.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearModel {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
}

impl LinearModel {
    /// Fits ordinary least squares over `(key, rank)` for the sorted keys,
    /// mapping the key space onto `[0, partitions)`.
    ///
    /// Falls back to a uniform model when fewer than two distinct keys are
    /// given.
    pub fn train(keys: &[u64], partitions: u64) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let mut sorted: Vec<u64> = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let n = sorted.len();
        if n < 2 {
            let span = sorted.first().copied().unwrap_or(1).max(1) as f64 * 2.0;
            return Self {
                slope: partitions as f64 / span,
                intercept: 0.0,
            };
        }
        // Least squares of rank (scaled to partitions) on key.
        let scale = partitions as f64 / n as f64;
        let mean_x = sorted.iter().map(|&k| k as f64).sum::<f64>() / n as f64;
        let mean_y = (n as f64 - 1.0) / 2.0 * scale;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (i, &k) in sorted.iter().enumerate() {
            let dx = k as f64 - mean_x;
            let dy = i as f64 * scale - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
        }
        if sxx == 0.0 {
            return Self {
                slope: 0.0,
                intercept: mean_y,
            };
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        Self { slope, intercept }
    }

    /// Predicts the partition for `key`, clamped to `[0, partitions)`.
    pub fn predict(&self, key: u64, partitions: u64) -> u64 {
        let raw = self.slope * key as f64 + self.intercept;
        if raw.is_nan() || raw < 0.0 {
            return 0;
        }
        (raw as u64).min(partitions - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_keys_map_evenly() {
        let keys: Vec<u64> = (0..1000).collect();
        let m = LinearModel::train(&keys, 10);
        // Key 0 lands in the first partition, key 999 in the last, and the
        // mapping is monotone.
        assert_eq!(m.predict(0, 10), 0);
        assert_eq!(m.predict(999, 10), 9);
        let mut last = 0;
        for k in (0..1000).step_by(50) {
            let p = m.predict(k, 10);
            assert!(p >= last, "model must be monotone");
            last = p;
        }
    }

    #[test]
    fn predictions_are_clamped() {
        let keys: Vec<u64> = (100..200).collect();
        let m = LinearModel::train(&keys, 8);
        assert!(m.predict(0, 8) < 8);
        assert!(m.predict(u64::MAX / 2, 8) < 8);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let m = LinearModel::train(&[], 4);
        assert!(m.predict(42, 4) < 4);
        let m = LinearModel::train(&[7], 4);
        assert!(m.predict(7, 4) < 4);
        let m = LinearModel::train(&[5, 5, 5], 4);
        assert!(m.predict(5, 4) < 4);
    }

    #[test]
    fn skewed_keys_still_cover_partitions() {
        let keys: Vec<u64> = (0..500).map(|i| i * i).collect();
        let m = LinearModel::train(&keys, 16);
        let preds: Vec<u64> = (0..500).map(|i| m.predict(i * i, 16)).collect();
        let lo = *preds.iter().min().unwrap();
        let hi = *preds.iter().max().unwrap();
        assert!(hi > lo, "regression must discriminate keys");
        assert!(
            hi - lo >= 8,
            "regression should cover at least half the range, got [{lo}, {hi}]"
        );
    }
}
