//! Minimal submission client: one blocking round trip over any stream.
//!
//! Used by `hawkset submit`, the CI smoke step, and the e2e tests. The
//! protocol is strictly sequential per connection, so the client is a
//! straight-line function — no state machine.

use std::io::{self, Read, Write};
use std::time::Duration;

use crate::frame::{read_frame, write_frame, Frame, FrameKind};

/// Size of one DATA frame's payload when streaming a trace.
pub const DATA_CHUNK: usize = 256 * 1024;

/// Bound on server reply payloads (reports can be large; traces are not
/// echoed back).
const MAX_REPLY: usize = 64 << 20;

/// Outcome of one submission round trip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job ran to completion; findings are durable server-side.
    Done {
        /// Job id assigned at admission.
        job_id: String,
        /// No races reported.
        clean: bool,
        /// Schema-v1 report JSON.
        report_json: String,
    },
    /// The daemon refused the submission (backpressure) — retry later.
    Shed {
        /// The daemon's reason line (leading token is machine-stable).
        reason: String,
    },
    /// The daemon accepted but the job failed (or the protocol did).
    Error {
        /// Job id when the failure happened after admission.
        job_id: Option<String>,
        /// The daemon's message.
        message: String,
    },
}

/// Submits one trace as `tenant` over an established stream and blocks for
/// the verdict. The caller owns connection setup (unix vs TCP) and
/// timeouts (socket read timeouts surface as `Err`).
pub fn submit<S: Read + Write>(
    stream: &mut S,
    tenant: &str,
    trace: &[u8],
) -> io::Result<SubmitOutcome> {
    write_frame(
        stream,
        &Frame::new(FrameKind::Submit, tenant.as_bytes().to_vec()),
    )?;
    stream.flush()?;
    let verdict = expect_frame(stream)?;
    let job_id = match verdict.kind {
        FrameKind::Accepted => verdict.text(),
        FrameKind::Shed => {
            return Ok(SubmitOutcome::Shed {
                reason: verdict.text(),
            })
        }
        FrameKind::Error => {
            return Ok(SubmitOutcome::Error {
                job_id: None,
                message: verdict.text(),
            })
        }
        other => {
            return Err(protocol_err(format!(
                "expected ACCEPTED/SHED, got {other:?}"
            )))
        }
    };
    for chunk in trace.chunks(DATA_CHUNK.max(1)) {
        write_frame(stream, &Frame::new(FrameKind::Data, chunk.to_vec()))?;
    }
    write_frame(stream, &Frame::empty(FrameKind::End))?;
    stream.flush()?;
    let result = expect_frame(stream)?;
    match result.kind {
        FrameKind::Result => {
            let (status, json) = result
                .payload
                .split_first()
                .ok_or_else(|| protocol_err("empty RESULT payload".into()))?;
            Ok(SubmitOutcome::Done {
                job_id,
                clean: *status == 0,
                report_json: String::from_utf8_lossy(json).into_owned(),
            })
        }
        FrameKind::Error => Ok(SubmitOutcome::Error {
            job_id: Some(job_id),
            message: result.text(),
        }),
        other => Err(protocol_err(format!(
            "expected RESULT/ERROR, got {other:?}"
        ))),
    }
}

/// How [`submit_with_retry`] behaves between attempts.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = behave like [`submit`]).
    pub retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff_start: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            retries: 5,
            backoff_start: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
        }
    }
}

/// Shed-reason prefixes worth retrying. Backpressure (`queue-full:`,
/// `tenant-cap:`, `connections:`) and degraded storage (`storage:`) clear
/// on their own; `draining:` clears when a replacement daemon takes the
/// socket — and every attempt dials a fresh connection, so the retry lands
/// on whoever is listening then. Anything unrecognized is terminal: a
/// reason this client cannot reason about must surface, not spin.
fn shed_is_retryable(reason: &str) -> bool {
    [
        "queue-full:",
        "tenant-cap:",
        "storage:",
        "draining:",
        "connections:",
    ]
    .iter()
    .any(|p| reason.starts_with(p))
}

/// [`submit`] with capped-exponential retry on `SHED` and on failed
/// dials. `connect` is called once per attempt — the caller owns the
/// transport, and reconnect-per-attempt is what makes retrying a
/// `draining:` shed meaningful. Returns the last outcome once the cap is
/// hit; non-shed outcomes (RESULT, ERROR) and protocol failures return
/// immediately.
pub fn submit_with_retry<S, C>(
    mut connect: C,
    tenant: &str,
    trace: &[u8],
    policy: &RetryPolicy,
) -> io::Result<SubmitOutcome>
where
    S: Read + Write,
    C: FnMut() -> io::Result<S>,
{
    let mut backoff = policy.backoff_start.max(Duration::from_millis(1));
    let mut attempt = 0u32;
    loop {
        let last_attempt = attempt >= policy.retries;
        let outcome = match connect() {
            Ok(mut stream) => submit(&mut stream, tenant, trace)?,
            // A refused dial rides the same backoff as a shed: the daemon
            // may be mid-restart after a drain.
            Err(e) if !last_attempt => {
                let _ = e;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(policy.backoff_cap);
                attempt += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        match outcome {
            SubmitOutcome::Shed { reason } if shed_is_retryable(&reason) && !last_attempt => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(policy.backoff_cap);
                attempt += 1;
            }
            other => return Ok(other),
        }
    }
}

/// One PING/PONG liveness round trip.
pub fn ping<S: Read + Write>(stream: &mut S) -> io::Result<()> {
    write_frame(stream, &Frame::empty(FrameKind::Ping))?;
    stream.flush()?;
    let f = expect_frame(stream)?;
    if f.kind == FrameKind::Pong {
        Ok(())
    } else {
        Err(protocol_err(format!("expected PONG, got {:?}", f.kind)))
    }
}

fn expect_frame<S: Read>(stream: &mut S) -> io::Result<Frame> {
    read_frame(stream, MAX_REPLY)?
        .ok_or_else(|| protocol_err("daemon closed the connection mid-exchange".into()))
}

fn protocol_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// One scripted connection: the client's writes go to the bit bucket,
    /// its reads come from a pre-rendered server byte stream.
    struct MockConn {
        input: io::Cursor<Vec<u8>>,
    }

    impl Read for MockConn {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for MockConn {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn server_bytes(frames: &[Frame]) -> MockConn {
        let mut bytes = Vec::new();
        for f in frames {
            write_frame(&mut bytes, f).unwrap();
        }
        MockConn {
            input: io::Cursor::new(bytes),
        }
    }

    fn shed_conn(reason: &str) -> MockConn {
        server_bytes(&[Frame::new(FrameKind::Shed, reason)])
    }

    fn result_conn() -> MockConn {
        let mut payload = vec![0u8];
        payload.extend_from_slice(b"{\"races\": []}");
        server_bytes(&[
            Frame::new(FrameKind::Accepted, "7"),
            Frame::new(FrameKind::Result, payload),
        ])
    }

    fn fast_policy(retries: u32) -> RetryPolicy {
        RetryPolicy {
            retries,
            backoff_start: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
        }
    }

    fn run_script(
        mut conns: VecDeque<io::Result<MockConn>>,
        policy: &RetryPolicy,
    ) -> (io::Result<SubmitOutcome>, usize) {
        let mut dials = 0;
        let out = submit_with_retry(
            || {
                dials += 1;
                conns.pop_front().expect("script ran out of connections")
            },
            "t",
            b"trace",
            policy,
        );
        (out, dials)
    }

    #[test]
    fn retryable_sheds_back_off_until_a_result() {
        let conns = VecDeque::from([
            Ok(shed_conn(
                "queue-full: admission queue at capacity, retry later",
            )),
            Ok(shed_conn(
                "storage: database degraded to read-only, retry later",
            )),
            Ok(result_conn()),
        ]);
        let (out, dials) = run_script(conns, &fast_policy(5));
        let SubmitOutcome::Done { job_id, clean, .. } = out.unwrap() else {
            panic!("expected Done after retries");
        };
        assert_eq!(job_id, "7");
        assert!(clean);
        assert_eq!(dials, 3, "two sheds then success");
    }

    #[test]
    fn cap_returns_the_final_shed() {
        let conns = VecDeque::from([
            Ok(shed_conn(
                "tenant-cap: too many pending submissions for this tenant",
            )),
            Ok(shed_conn(
                "tenant-cap: too many pending submissions for this tenant",
            )),
            Ok(shed_conn(
                "tenant-cap: too many pending submissions for this tenant",
            )),
        ]);
        let (out, dials) = run_script(conns, &fast_policy(2));
        let SubmitOutcome::Shed { reason } = out.unwrap() else {
            panic!("expected the terminal shed");
        };
        assert!(reason.starts_with("tenant-cap:"));
        assert_eq!(dials, 3, "first attempt + 2 retries");
    }

    #[test]
    fn draining_shed_retries_on_a_fresh_connection() {
        // Drain, then the replacement daemon refuses the dial once, then
        // serves. Three distinct connections — never a reuse.
        let conns = VecDeque::from([
            Ok(shed_conn(
                "draining: daemon is shutting down, not admitting work",
            )),
            Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "restarting",
            )),
            Ok(result_conn()),
        ]);
        let (out, dials) = run_script(conns, &fast_policy(5));
        assert!(matches!(out.unwrap(), SubmitOutcome::Done { .. }));
        assert_eq!(dials, 3);
    }

    #[test]
    fn unknown_shed_reasons_are_terminal() {
        let conns = VecDeque::from([Ok(shed_conn("maintenance-window: go away"))]);
        let (out, dials) = run_script(conns, &fast_policy(5));
        assert!(matches!(out.unwrap(), SubmitOutcome::Shed { .. }));
        assert_eq!(dials, 1, "no retry on a reason this client can't parse");
    }

    #[test]
    fn zero_retries_behaves_like_plain_submit() {
        let conns = VecDeque::from([Ok(shed_conn("queue-full: retry later"))]);
        let (out, dials) = run_script(conns, &fast_policy(0));
        assert!(matches!(out.unwrap(), SubmitOutcome::Shed { .. }));
        assert_eq!(dials, 1);
    }
}
