//! The common application driver interface.
//!
//! Every evaluated application (Table 1) implements [`Application`]:
//! it can describe itself, produce its §5 default workload for a given
//! size, and execute a workload under instrumentation, yielding the trace
//! HawkSet analyses. The observation-based baseline uses the same entry
//! point with [`ExecOptions::observe`] and a perturbation hook.

use hawkset_core::trace::Trace;
use pm_runtime::{Hook, Observation, PmEnv};
use pm_workloads::{CacheOp, FsOp, Workload};

use crate::registry::KnownRace;

/// A workload in whichever shape the application consumes.
#[derive(Clone, Debug)]
pub enum AppWorkload {
    /// YCSB-style key-value schedule (most applications).
    Ycsb(Workload),
    /// MadFS file operations, one schedule per thread.
    Fs(Vec<Vec<FsOp>>),
    /// Memcached protocol operations: load phase + per-thread schedules.
    Cache {
        /// Single-threaded load phase.
        load: Vec<CacheOp>,
        /// Per-thread main phase.
        per_thread: Vec<Vec<CacheOp>>,
    },
}

impl AppWorkload {
    /// Total main-phase operation count.
    pub fn main_ops(&self) -> usize {
        match self {
            AppWorkload::Ycsb(w) => w.main_ops(),
            AppWorkload::Fs(per_thread) => per_thread.iter().map(Vec::len).sum(),
            AppWorkload::Cache { per_thread, .. } => per_thread.iter().map(Vec::len).sum(),
        }
    }
}

/// Execution options.
#[derive(Clone, Default)]
pub struct ExecOptions {
    /// Record reads of unpersisted foreign data (baseline detector).
    pub observe: bool,
    /// Perturbation hook (delay injection).
    pub hook: Option<Hook>,
}

/// The outcome of one instrumented run.
pub struct ExecResult {
    /// The recorded trace.
    pub trace: Trace,
    /// Observations (empty unless [`ExecOptions::observe`]).
    pub observations: Vec<Observation>,
}

/// One of the nine evaluated PM applications.
pub trait Application: Send + Sync {
    /// Display name matching Table 1.
    fn name(&self) -> &'static str;

    /// Synchronization style, as in Table 1 ("Lock", "Lock-Free",
    /// "Lock/Lock-Free").
    fn sync_method(&self) -> &'static str;

    /// The application's known persistency-induced races (Table 2 + the
    /// benign populations behind Table 4).
    fn known_races(&self) -> Vec<KnownRace>;

    /// The §5 workload for this application at the given size and seed.
    fn default_workload(&self, main_ops: u64, seed: u64) -> AppWorkload;

    /// Runs `workload` under instrumentation.
    fn execute_with(&self, workload: &AppWorkload, opts: &ExecOptions) -> ExecResult;

    /// Runs `workload` with default options.
    fn execute(&self, workload: &AppWorkload) -> Trace {
        self.execute_with(workload, &ExecOptions::default()).trace
    }
}

/// Sets up an environment according to `opts` (shared by all apps).
pub(crate) fn env_for(opts: &ExecOptions) -> PmEnv {
    let env = PmEnv::new();
    env.set_observe(opts.observe);
    env.set_hook(opts.hook.clone());
    env
}
