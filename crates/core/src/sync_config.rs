//! Synchronization-primitive configuration (§4, §5.5).
//!
//! HawkSet ships built-in support for pthread-style primitives; anything
//! else — TurboHash's and P-ART's custom spinlocks, P-CLHT's and APEX's
//! CAS-based control — is described in a small configuration file that
//! names the functions with acquire/release semantics and, for tentative
//! acquires (`pthread_mutex_trylock`-style), the return value that signals
//! success. The paper argues this keeps the tool automatic: the file takes
//! minutes to write and is reusable across applications sharing a library.
//!
//! The runtime substrate consults a [`SyncConfig`] when an application
//! routes a custom primitive through it, turning calls into `Acquire` /
//! `Release` trace events.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::trace::LockMode;

/// Semantics of one configured function.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PrimitiveSemantics {
    /// The function acquires its first argument as a lock.
    Acquire {
        /// Exclusive or shared acquisition.
        mode: LockMode,
        /// For tentative acquires: the return value meaning "acquired".
        /// `None` for unconditional acquires.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        success_return: Option<u64>,
    },
    /// The function releases its first argument.
    Release,
}

/// A named custom primitive.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrimitiveSpec {
    /// Function name as it appears in the target application.
    pub function: String,
    /// What the function does.
    #[serde(flatten)]
    pub semantics: PrimitiveSemantics,
}

/// A full synchronization configuration.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncConfig {
    /// The configured primitives.
    pub primitives: Vec<PrimitiveSpec>,
}

impl SyncConfig {
    /// The built-in pthread-equivalent configuration: plain mutexes and
    /// reader–writer locks need no user-provided file.
    pub fn builtin_pthread() -> Self {
        let ex = |f: &str| PrimitiveSpec {
            function: f.into(),
            semantics: PrimitiveSemantics::Acquire {
                mode: LockMode::Exclusive,
                success_return: None,
            },
        };
        let sh = |f: &str| PrimitiveSpec {
            function: f.into(),
            semantics: PrimitiveSemantics::Acquire {
                mode: LockMode::Shared,
                success_return: None,
            },
        };
        let rel = |f: &str| PrimitiveSpec {
            function: f.into(),
            semantics: PrimitiveSemantics::Release,
        };
        Self {
            primitives: vec![
                ex("pthread_mutex_lock"),
                PrimitiveSpec {
                    function: "pthread_mutex_trylock".into(),
                    semantics: PrimitiveSemantics::Acquire {
                        mode: LockMode::Exclusive,
                        success_return: Some(0),
                    },
                },
                rel("pthread_mutex_unlock"),
                sh("pthread_rwlock_rdlock"),
                ex("pthread_rwlock_wrlock"),
                rel("pthread_rwlock_unlock"),
            ],
        }
    }

    /// Looks up a function by name.
    pub fn lookup(&self, function: &str) -> Option<&PrimitiveSemantics> {
        self.primitives
            .iter()
            .find(|p| p.function == function)
            .map(|p| &p.semantics)
    }

    /// Merges `other` into `self` (later entries win on name clashes).
    pub fn merge(&mut self, other: SyncConfig) {
        let mut by_name: HashMap<String, PrimitiveSpec> = self
            .primitives
            .drain(..)
            .map(|p| (p.function.clone(), p))
            .collect();
        for p in other.primitives {
            by_name.insert(p.function.clone(), p);
        }
        let mut merged: Vec<_> = by_name.into_values().collect();
        merged.sort_by(|a, b| a.function.cmp(&b.function));
        self.primitives = merged;
    }

    /// Parses a configuration from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serializes the configuration to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sync config serialization cannot fail")
    }

    /// Decides whether a call to `function` returning `ret` acquires,
    /// releases, or does nothing.
    pub fn classify_call(&self, function: &str, ret: Option<u64>) -> CallEffect {
        match self.lookup(function) {
            Some(PrimitiveSemantics::Acquire {
                mode,
                success_return,
            }) => match success_return {
                None => CallEffect::Acquire(*mode),
                Some(ok) if ret == Some(*ok) => CallEffect::Acquire(*mode),
                Some(_) => CallEffect::FailedAcquire,
            },
            Some(PrimitiveSemantics::Release) => CallEffect::Release,
            None => CallEffect::NotSync,
        }
    }
}

/// The effect of one observed call, per [`SyncConfig::classify_call`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallEffect {
    /// Successful acquisition in the given mode.
    Acquire(LockMode),
    /// A tentative acquire that failed; no lockset change.
    FailedAcquire,
    /// A release.
    Release,
    /// Not a configured primitive.
    NotSync,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_pthread() {
        let c = SyncConfig::builtin_pthread();
        assert_eq!(
            c.classify_call("pthread_mutex_lock", None),
            CallEffect::Acquire(LockMode::Exclusive)
        );
        assert_eq!(
            c.classify_call("pthread_rwlock_rdlock", None),
            CallEffect::Acquire(LockMode::Shared)
        );
        assert_eq!(
            c.classify_call("pthread_mutex_unlock", None),
            CallEffect::Release
        );
        assert_eq!(c.classify_call("memcpy", None), CallEffect::NotSync);
    }

    #[test]
    fn trylock_needs_matching_return() {
        let c = SyncConfig::builtin_pthread();
        assert_eq!(
            c.classify_call("pthread_mutex_trylock", Some(0)),
            CallEffect::Acquire(LockMode::Exclusive)
        );
        assert_eq!(
            c.classify_call("pthread_mutex_trylock", Some(16)),
            CallEffect::FailedAcquire
        );
    }

    #[test]
    fn json_roundtrip() {
        let c = SyncConfig::builtin_pthread();
        let json = c.to_json();
        let back = SyncConfig::from_json(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn custom_config_like_turbohash() {
        // The kind of file §5.5 describes: a handful of lines naming the
        // application's custom primitives.
        let json = r#"{
            "primitives": [
                {"function": "bucket_spin_lock", "kind": "acquire", "mode": "Exclusive"},
                {"function": "bucket_spin_unlock", "kind": "release"},
                {"function": "try_lock_cell", "kind": "acquire", "mode": "Exclusive", "success_return": 1}
            ]
        }"#;
        let c = SyncConfig::from_json(json).unwrap();
        assert_eq!(
            c.classify_call("bucket_spin_lock", None),
            CallEffect::Acquire(LockMode::Exclusive)
        );
        assert_eq!(
            c.classify_call("try_lock_cell", Some(1)),
            CallEffect::Acquire(LockMode::Exclusive)
        );
        assert_eq!(
            c.classify_call("try_lock_cell", Some(0)),
            CallEffect::FailedAcquire
        );
    }

    #[test]
    fn merge_prefers_later_entries() {
        let mut base = SyncConfig::builtin_pthread();
        let override_cfg = SyncConfig {
            primitives: vec![PrimitiveSpec {
                function: "pthread_mutex_lock".into(),
                semantics: PrimitiveSemantics::Release,
            }],
        };
        base.merge(override_cfg);
        assert_eq!(
            base.classify_call("pthread_mutex_lock", None),
            CallEffect::Release
        );
    }
}
