//! MadFS: a userspace per-file PM filesystem (FAST'23).
//!
//! MadFS virtualizes each file's blocks through a compact, crash-consistent
//! log whose entries are 8 bytes and therefore updated atomically; all
//! metadata lives in userspace and every operation is lock-free (Table 1).
//! Durability is *explicit*: like POSIX, nothing is guaranteed durable
//! until `fsync`.
//!
//! HawkSet reports several persistency-induced races in MadFS — writers
//! publish log entries that readers consume before they are persisted —
//! but §5.1 concludes they are **all benign**: the relaxed `fsync`
//! contract tolerates them by design (0 malign / 5 benign / 0 FP in
//! Table 4). The reports remain valuable because they show what would
//! break if MadFS were used as a crash-consistent store without fsync.

use std::sync::Arc;

use hawkset_core::addr::PmAddr;
use pm_runtime::{run_workers, PmPool, PmThread};
use pm_workloads::{madfs_workload, FsOp};

use crate::app::{env_for, AppWorkload, Application, ExecOptions, ExecResult};
use crate::registry::KnownRace;

const BLOCK: u64 = 4096;
/// Superblock: log count at +0; log entries from +64; data area after the
/// log.
const OFF_LOG_COUNT: u64 = 0;
const OFF_LOG: u64 = 64;

/// A MadFS-managed file inside a PM pool.
pub struct MadFs {
    pool: PmPool,
    /// Capacity of the log in entries.
    log_cap: u64,
    /// First data block address.
    data_base: PmAddr,
    /// Number of physical data blocks.
    data_blocks: u64,
    /// Volatile physical-block allocator (next-free counter).
    next_block: std::sync::atomic::AtomicU64,
    /// The in-DRAM block table MadFS rebuilds from the log: applied log
    /// prefix length + vblock → pblock. Log entries are read (instrumented)
    /// exactly once, on first need — the real design's incremental apply.
    block_table: parking_lot::Mutex<(u64, std::collections::HashMap<u32, u32>)>,
}

impl MadFs {
    /// Formats a file with room for `data_blocks` 4-KiB blocks and
    /// `log_cap` log entries.
    pub fn format(pool: &PmPool, t: &PmThread, data_blocks: u64, log_cap: u64) -> Self {
        let _f = t.frame("madfs::format");
        let data_base = (pool.base() + OFF_LOG + log_cap * 8).div_ceil(BLOCK) * BLOCK;
        assert!(
            data_base + data_blocks * BLOCK <= pool.base() + pool.len(),
            "pool too small: need {} bytes",
            data_base + data_blocks * BLOCK - pool.base()
        );
        pool.store_u64(t, pool.base() + OFF_LOG_COUNT, 0);
        pool.persist(t, pool.base() + OFF_LOG_COUNT, 8);
        Self {
            pool: pool.clone(),
            log_cap,
            data_base,
            data_blocks,
            next_block: std::sync::atomic::AtomicU64::new(0),
            block_table: parking_lot::Mutex::new((0, std::collections::HashMap::new())),
        }
    }

    /// Encodes a (virtual block, physical block) mapping in 8 bytes — the
    /// MadFS trick that makes log appends atomic.
    fn encode(vblock: u32, pblock: u32) -> u64 {
        (u64::from(vblock) << 32) | u64::from(pblock) | (1 << 31)
    }

    fn decode(entry: u64) -> Option<(u32, u32)> {
        (entry != 0).then_some(((entry >> 32) as u32, (entry & 0x7fff_ffff) as u32))
    }

    /// Writes `data` (one block) at `offset`, copy-on-write: fresh physical
    /// block, then an atomic log append. The data itself is persisted with
    /// non-temporal stores; the log entry's durability waits for
    /// [`MadFs::fsync`] — the *benign* race population.
    pub fn write(&self, t: &PmThread, offset: u64, data: &[u8]) {
        let _f = t.frame("madfs::write");
        assert_eq!(offset % BLOCK, 0, "block-aligned writes only");
        assert!(data.len() as u64 <= BLOCK);
        let vblock = (offset / BLOCK) as u32;
        let pblock = self
            .next_block
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            % self.data_blocks;
        // Copy-on-write data path: non-temporal bulk store + fence.
        {
            let _d = t.frame("madfs::write_data");
            let dst = self.data_base + pblock * BLOCK;
            self.pool.store_bytes_nt(t, dst, data);
            t.fence();
        }
        // Atomic 8-byte log append; visible immediately, durable at fsync.
        {
            let _l = t.frame("madfs::log_append");
            let idx = self
                .pool
                .fetch_add_u64(t, self.pool.base() + OFF_LOG_COUNT, 1);
            assert!(
                idx < self.log_cap,
                "log full: raise log_cap or fsync+truncate"
            );
            self.pool.atomic_store_u64(
                t,
                self.pool.base() + OFF_LOG + idx * 8,
                Self::encode(vblock, pblock as u32),
            );
        }
    }

    /// Resolves the newest mapping for `vblock` by applying any new log
    /// entries into the in-DRAM block table, then looking it up
    /// (`madfs::read_log` is the benign load site of the entry reads).
    fn resolve(&self, t: &PmThread, vblock: u32) -> Option<u32> {
        let _f = t.frame("madfs::read_log");
        let count = self
            .pool
            .atomic_load_u64(t, self.pool.base() + OFF_LOG_COUNT)
            .min(self.log_cap);
        let mut table = self.block_table.lock();
        while table.0 < count {
            let i = table.0;
            let entry = self.pool.load_u64(t, self.pool.base() + OFF_LOG + i * 8);
            if let Some((v, p)) = Self::decode(entry) {
                table.1.insert(v, p);
            }
            table.0 += 1;
        }
        table.1.get(&vblock).copied()
    }

    /// Reads one block at `offset`; returns zeros for never-written blocks.
    pub fn read(&self, t: &PmThread, offset: u64, len: usize) -> Vec<u8> {
        let _f = t.frame("madfs::read");
        assert_eq!(offset % BLOCK, 0, "block-aligned reads only");
        match self.resolve(t, (offset / BLOCK) as u32) {
            Some(pblock) => {
                let _d = t.frame("madfs::read_data");
                self.pool.load_bytes(
                    t,
                    self.data_base + u64::from(pblock) * BLOCK,
                    len.min(BLOCK as usize),
                )
            }
            None => vec![0; len.min(BLOCK as usize)],
        }
    }

    /// Makes all appended log entries durable — the explicit durability
    /// point of the MadFS contract.
    pub fn fsync(&self, t: &PmThread) {
        let _f = t.frame("madfs::fsync");
        let count = self
            .pool
            .atomic_load_u64(t, self.pool.base() + OFF_LOG_COUNT)
            .min(self.log_cap);
        self.pool.flush_range(
            t,
            self.pool.base() + OFF_LOG_COUNT,
            (OFF_LOG + count * 8) as usize,
        );
        t.fence();
    }

    /// Executes one workload operation.
    pub fn run_op(&self, t: &PmThread, op: &FsOp, scratch: &[u8]) {
        match op {
            FsOp::Write { offset, len } => {
                self.write(t, *offset, &scratch[..(*len as usize).min(scratch.len())])
            }
            FsOp::Read { offset, len } => {
                self.read(t, *offset, *len as usize);
            }
            FsOp::Fsync => self.fsync(t),
        }
    }
}

/// The Table 1 driver for MadFS.
pub struct MadFsApp;

impl Application for MadFsApp {
    fn name(&self) -> &'static str {
        "MadFS"
    }

    fn sync_method(&self) -> &'static str {
        "Lock-Free"
    }

    fn known_races(&self) -> Vec<KnownRace> {
        vec![
            KnownRace::benign(
                "madfs::log_append",
                "madfs::read_log",
                "reader consumes a log entry whose durability waits for fsync",
            ),
            KnownRace::benign(
                "madfs::log_append",
                "madfs::log_append",
                "concurrent appends to the shared tail counter",
            ),
            KnownRace::benign(
                "madfs::write_data",
                "madfs::read_data",
                "copy-on-write block read before its mapping is durable",
            ),
            KnownRace::benign(
                "madfs::format",
                "madfs::read_log",
                "formatted superblock visible to readers",
            ),
            KnownRace::benign(
                "madfs::write",
                "madfs::read_log",
                "tail bump visible before fsync",
            ),
            KnownRace::benign(
                "madfs::log_append",
                "madfs::fsync",
                "fsync reads the tail counter another thread is bumping",
            ),
            KnownRace::benign(
                "madfs::format",
                "madfs::fsync",
                "fsync reads the formatted tail counter",
            ),
        ]
    }

    fn default_workload(&self, main_ops: u64, seed: u64) -> AppWorkload {
        AppWorkload::Fs(madfs_workload(main_ops, 8, 64, seed))
    }

    fn execute_with(&self, workload: &AppWorkload, opts: &ExecOptions) -> ExecResult {
        let AppWorkload::Fs(schedules) = workload else {
            panic!("MadFS consumes filesystem workloads")
        };
        run_madfs(schedules, opts)
    }
}

/// Runs a filesystem workload against a freshly formatted file.
pub fn run_madfs(schedules: &[Vec<FsOp>], opts: &ExecOptions) -> ExecResult {
    let env = env_for(opts);
    let writes: u64 = schedules
        .iter()
        .flatten()
        .filter(|op| matches!(op, FsOp::Write { .. }))
        .count() as u64;
    // Physical blocks are recycled modulo the arena; size it generously.
    let data_blocks = (writes + 64).min(4096);
    let log_cap = writes + schedules.len() as u64 + 64;
    let pool_size = BLOCK + log_cap * 8 + (data_blocks + 2) * BLOCK;
    let pool = env.map_pool("/mnt/pmem/madfs", pool_size);
    let main = env.main_thread();
    let fs = Arc::new(MadFs::format(&pool, &main, data_blocks, log_cap));
    let schedules = Arc::new(schedules.to_vec());
    let fs2 = Arc::clone(&fs);
    let scratch: Arc<Vec<u8>> = Arc::new((0..BLOCK).map(|i| (i % 251) as u8).collect());
    run_workers(&env, &main, schedules.len(), move |i, t| {
        for op in &schedules[i] {
            fs2.run_op(t, op, &scratch);
        }
    });
    let observations = env.take_observations();
    ExecResult {
        trace: env.finish(),
        observations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{score, RaceClass};
    use hawkset_core::analysis::Analyzer;
    use pm_runtime::PmEnv;

    fn fresh() -> (PmEnv, Arc<MadFs>, PmThread) {
        let env = PmEnv::new();
        let pool = env.map_pool("/mnt/pmem/madfs-test", 1 << 22);
        let main = env.main_thread();
        let fs = Arc::new(MadFs::format(&pool, &main, 256, 1024));
        (env, fs, main)
    }

    #[test]
    fn write_read_roundtrip() {
        let (_env, fs, t) = fresh();
        let data = vec![0xabu8; 4096];
        fs.write(&t, 0, &data);
        fs.write(&t, 8192, &[1u8; 4096]);
        assert_eq!(fs.read(&t, 0, 4096), data);
        assert_eq!(fs.read(&t, 8192, 16), vec![1u8; 16]);
        assert_eq!(
            fs.read(&t, 4096, 8),
            vec![0u8; 8],
            "unwritten block reads zeros"
        );
    }

    #[test]
    fn overwrite_resolves_to_newest_mapping() {
        let (_env, fs, t) = fresh();
        fs.write(&t, 0, &[1u8; 4096]);
        fs.write(&t, 0, &[2u8; 4096]);
        assert_eq!(
            fs.read(&t, 0, 4)[0],
            2,
            "copy-on-write must resolve newest entry"
        );
    }

    #[test]
    fn unsynced_log_entries_are_not_durable() {
        let (_env, fs, t) = fresh();
        fs.write(&t, 0, &[7u8; 4096]);
        // Without fsync: the log count in the crash image is still 0.
        let img = fs.pool.crash_image();
        let count = u64::from_le_bytes(img[0..8].try_into().unwrap());
        assert_eq!(count, 0, "log append must not be durable before fsync");
        fs.fsync(&t);
        let img = fs.pool.crash_image();
        let count = u64::from_le_bytes(img[0..8].try_into().unwrap());
        assert_eq!(count, 1, "fsync must persist the log");
    }

    #[test]
    fn entry_encoding_roundtrip() {
        let e = MadFs::encode(7, 42);
        assert_eq!(MadFs::decode(e), Some((7, 42)));
        assert_eq!(MadFs::decode(0), None);
        // pblock 0 still decodes (the presence bit keeps the entry
        // non-zero).
        assert_eq!(MadFs::decode(MadFs::encode(0, 0)), Some((0, 0)));
    }

    #[test]
    fn all_reports_are_benign() {
        let schedules = madfs_workload(600, 4, 32, 3);
        let res = run_madfs(&schedules, &ExecOptions::default());
        let report = Analyzer::default().run(&res.trace);
        let b = score(&report.races, &MadFsApp.known_races());
        assert!(
            !report.races.is_empty(),
            "the benign population must be reported"
        );
        assert!(b.malign.is_empty(), "MadFS has no malign race (Table 4)");
        assert!(
            b.false_positives.is_empty(),
            "unexpected FPs: {:?}",
            b.false_positives
                .iter()
                .map(|r| r.summary())
                .collect::<Vec<_>>()
        );
        assert!(MadFsApp
            .known_races()
            .iter()
            .all(|k| k.class == RaceClass::Benign));
    }

    #[test]
    fn concurrent_writers_never_corrupt_disjoint_blocks() {
        let (env, fs, main) = fresh();
        let fs2 = Arc::clone(&fs);
        run_workers(&env, &main, 4, move |i, t| {
            let fill = vec![i as u8 + 1; 4096];
            for round in 0..10u64 {
                fs2.write(t, (i as u64) * 4096, &fill);
                let _ = round;
            }
        });
        for i in 0..4u64 {
            assert_eq!(
                fs.read(&main, i * 4096, 8),
                vec![i as u8 + 1; 8],
                "writer {i}"
            );
        }
    }
}
