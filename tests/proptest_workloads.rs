//! Property-based tests over workload generation and the runtime
//! allocator.

use hawkset::runtime::{PmAllocator, PmEnv};
use hawkset::workloads::zipfian::{KeyDistribution, ScrambledZipfian, Uniform, Zipfian};
use hawkset::workloads::{mutate, OpMix, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// All distributions stay in range for arbitrary sizes and seeds.
    #[test]
    fn distributions_stay_in_range(n in 1u64..5_000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut u = Uniform::new(n);
        let mut z = Zipfian::new(n);
        let mut s = ScrambledZipfian::new(n);
        for _ in 0..64 {
            prop_assert!(u.next(&mut rng) < n);
            prop_assert!(z.next(&mut rng) < n);
            prop_assert!(s.next(&mut rng) < n);
        }
    }

    /// Workload generation is a pure function of the spec.
    #[test]
    fn workloads_are_deterministic(ops in 1u64..2_000, seed in any::<u64>(), threads in 1u32..12) {
        let spec = WorkloadSpec {
            load_ops: 50,
            main_ops: ops,
            threads,
            mix: OpMix::PAPER,
            distribution: hawkset::workloads::Distribution::Zipfian,
            key_space: 100 + ops,
            seed,
            fresh_ratio: 33,
        };
        let a = spec.generate();
        let b = spec.generate();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.main_ops() as u64, ops);
        prop_assert_eq!(a.per_thread.len(), threads as usize);
        prop_assert_eq!(a.load.len(), 50);
    }

    /// Mutation keeps workloads near the seed: same thread count, size
    /// within a small delta, and determinism per round.
    #[test]
    fn mutation_stays_near_the_seed(seed in any::<u64>(), round in 1u64..50) {
        let base = WorkloadSpec::pmrace_seed(seed % 1000).generate();
        let m1 = mutate(&base, seed, round);
        let m2 = mutate(&base, seed, round);
        prop_assert_eq!(&m1, &m2);
        prop_assert_eq!(m1.per_thread.len(), base.per_thread.len());
        let delta = (m1.main_ops() as i64 - base.main_ops() as i64).abs();
        prop_assert!(delta <= 8, "mutation moved too far: {delta}");
    }

    /// The PM allocator hands out disjoint, in-bounds, aligned blocks.
    #[test]
    fn allocator_blocks_are_disjoint(sizes in proptest::collection::vec(1u64..512, 1..40)) {
        let env = PmEnv::new();
        let pool = env.map_pool("/mnt/pmem/prop-alloc", 1 << 18);
        let alloc = PmAllocator::new(&pool, 64);
        let mut blocks: Vec<(u64, u64)> = Vec::new();
        for size in sizes {
            let Ok(addr) = alloc.alloc(size) else { break };
            prop_assert_eq!(addr % 64, 0);
            prop_assert!(addr >= pool.base() + 64);
            prop_assert!(addr + size <= pool.base() + pool.len());
            for &(a, s) in &blocks {
                prop_assert!(addr + size <= a || a + s <= addr, "blocks overlap");
            }
            blocks.push((addr, size));
        }
    }

    /// Free + alloc of the same class reuses addresses (the IRH-defeating
    /// behaviour) and never double-hands a live block.
    #[test]
    fn allocator_reuse_is_sound(n in 1usize..20) {
        let env = PmEnv::new();
        let pool = env.map_pool("/mnt/pmem/prop-reuse", 1 << 18);
        let alloc = PmAllocator::new(&pool, 0);
        let blocks: Vec<u64> = (0..n).map(|_| alloc.alloc(64).unwrap()).collect();
        for &b in &blocks {
            alloc.free(b);
        }
        let again: Vec<u64> = (0..n).map(|_| alloc.alloc(64).unwrap()).collect();
        // Every reallocation reuses one of the freed addresses...
        for &b in &again {
            prop_assert!(blocks.contains(&b));
        }
        // ...and no address is handed out twice.
        let mut sorted = again.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), again.len());
    }
}
