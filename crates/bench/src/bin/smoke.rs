//! Bench smoke: pairing throughput at 1 vs N worker threads on a fixed
//! synthetic trace, for CI logs.
//!
//! Stage timings come from the pipeline's own observability snapshot
//! (`report.metrics.timing.pairing_ms`) rather than re-timing around the
//! call, so CI measures exactly what `--metrics` reports to users. The
//! run fails (exit 1) if the sequential and parallel reports diverge, if
//! any metrics snapshot violates a conservation law, or if `--min-speedup
//! X` is given and the measured speedup falls short.
//!
//! ```text
//! smoke [--threads N] [--ops N] [--min-speedup X] [--emit PATH]
//!       [--bench-json DIR] [--ratchet DIR]
//! ```
//!
//! `--emit PATH` writes the synthetic trace to `PATH` as `.hwkt` and exits
//! without benchmarking — CI uses it to manufacture a large input for the
//! memory-budget and kill/resume checks without shipping fixture files.
//!
//! `--bench-json DIR` measures the per-stage throughput trajectory
//! (decode / memsim / irh / pairing / repair / campaign, see
//! [`hawkset_bench::trajectory`]) and writes `BENCH_<stage>.json` files
//! into `DIR`, then exits. The campaign stage's unit is rounds/sec on a
//! fixed-seed steered PCLHT crash campaign.
//!
//! `--ratchet DIR` measures the same trajectory and fails (exit 1) if any
//! stage regressed >20% against the committed `BENCH_<stage>.json`
//! baseline in `DIR`. Enforcement is skipped on single-core hosts, where
//! wall-clock measures scheduler contention rather than the code. With
//! the `UPDATE_BASELINE` environment variable set the baseline files are
//! regenerated instead of checked (`scripts/ci.sh` refuses to run in that
//! state, so CI can never silently re-pin itself).

use std::process::ExitCode;

use hawkset_bench::synthetic::{synthetic_trace, SyntheticSpec};
use hawkset_bench::trajectory;
use hawkset_core::analysis::{AnalysisReport, Analyzer};
use hawkset_core::memsim::{simulate, SimConfig};

/// Pulls the snapshot out of a report, failing loudly if the pipeline
/// stopped attaching one.
fn metrics_of(report: &AnalysisReport) -> &hawkset_core::MetricsSnapshot {
    report
        .metrics
        .as_ref()
        .expect("every Analyzer run attaches a metrics snapshot")
}

/// Exit-worthy conservation audit of one snapshot.
fn check_conservation(label: &str, report: &AnalysisReport) -> bool {
    let violations = metrics_of(report).conservation_violations();
    for v in &violations {
        eprintln!("smoke: FAIL — conservation violation in {label} run: {v}");
    }
    violations.is_empty()
}

fn main() -> ExitCode {
    let mut threads = 4usize;
    let mut ops = 30_000u64;
    let mut min_speedup: Option<f64> = None;
    let mut emit: Option<String> = None;
    let mut bench_json: Option<String> = None;
    let mut ratchet_dir: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads N");
            }
            "--ops" => {
                i += 1;
                ops = args[i].parse().expect("--ops N");
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = Some(args[i].parse().expect("--min-speedup X"));
            }
            "--emit" => {
                i += 1;
                emit = Some(args[i].clone());
            }
            "--bench-json" => {
                i += 1;
                bench_json = Some(args[i].clone());
            }
            "--ratchet" => {
                i += 1;
                ratchet_dir = Some(args[i].clone());
            }
            other => {
                eprintln!("smoke: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    // Pairing-heavy shape: many threads racing on many cache lines with
    // little locking, so stage 3 dominates and has shards to spread.
    let spec = SyntheticSpec {
        threads: 8,
        ops_per_thread: ops,
        locations: 4096,
        store_pct: 50,
        persist_pct: 50,
        locked_pct: 10,
        seed: 42,
    };
    let trace = synthetic_trace(&spec);

    if let Some(path) = emit {
        let bytes = hawkset_core::trace::io::encode(&trace);
        if let Err(e) = std::fs::write(&path, &bytes) {
            eprintln!("smoke: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "smoke: wrote {} events ({} bytes) to {path}",
            trace.events.len(),
            bytes.len()
        );
        return ExitCode::SUCCESS;
    }

    let events = trace.events.len() as f64;
    let access = simulate(&trace, &SimConfig::default());

    if bench_json.is_some() || ratchet_dir.is_some() {
        let mut measurements = trajectory::measure(&trace, &access);
        measurements.push(trajectory::measure_campaign(trajectory::CAMPAIGN_ROUNDS));
        for m in &measurements {
            println!(
                "smoke: {:<8} {:>12.0} events/sec ({:.1} ms, {} events)",
                m.stage, m.events_per_sec, m.elapsed_ms, m.events
            );
        }
        let commit = trajectory::current_commit();
        if let Some(dir) = bench_json {
            let dir = std::path::Path::new(&dir);
            if let Err(e) = trajectory::write_baseline(dir, &measurements, &commit, spec.seed) {
                eprintln!(
                    "smoke: cannot write BENCH_*.json under {}: {e}",
                    dir.display()
                );
                return ExitCode::from(2);
            }
            println!("smoke: wrote BENCH_*.json to {} at {commit}", dir.display());
            return ExitCode::SUCCESS;
        }
        let dir = ratchet_dir.expect("one of the two modes is set");
        let dir = std::path::Path::new(&dir);
        if std::env::var_os("UPDATE_BASELINE").is_some() {
            if let Err(e) = trajectory::write_baseline(dir, &measurements, &commit, spec.seed) {
                eprintln!(
                    "smoke: cannot write BENCH_*.json under {}: {e}",
                    dir.display()
                );
                return ExitCode::from(2);
            }
            println!(
                "smoke: UPDATE_BASELINE set — re-pinned BENCH_*.json in {} at {commit}",
                dir.display()
            );
            return ExitCode::SUCCESS;
        }
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let outcome = trajectory::ratchet(dir, &measurements);
        // A vanished pin fails on any host; timing regressions are only
        // enforceable where wall-clock measures the code.
        if !outcome.missing.is_empty() {
            for v in &outcome.missing {
                eprintln!("smoke: FAIL — bench ratchet: {v}");
            }
            return ExitCode::from(1);
        }
        if cores < 2 {
            println!(
                "smoke: ratchet timing enforcement skipped — single-core host \
                 measures contention, not code ({} regression(s) unenforced)",
                outcome.regressions.len()
            );
            return ExitCode::SUCCESS;
        }
        if !outcome.regressions.is_empty() {
            for v in &outcome.regressions {
                eprintln!("smoke: FAIL — bench ratchet: {v}");
            }
            return ExitCode::from(1);
        }
        println!(
            "smoke: bench ratchet holds (>{:.0}% regression fails)",
            trajectory::RATCHET_TOLERANCE * 100.0
        );
        return ExitCode::SUCCESS;
    }

    // Pairing stage wall-clock as the pipeline itself measured it.
    let time_pairing = |n: usize| {
        let report = Analyzer::default().threads(n).run_pairing(&trace, &access);
        let secs = (metrics_of(&report).timing.pairing_ms / 1e3).max(1e-9);
        (secs, report)
    };
    // Warm-up run so first-touch page faults don't bias the 1-thread leg.
    let _ = time_pairing(1);
    let (seq_secs, seq_report) = time_pairing(1);
    let (par_secs, par_report) = time_pairing(threads);

    let speedup = seq_secs / par_secs;
    println!(
        "smoke: {} events, {} windows, {} candidate pairs",
        trace.events.len(),
        access.windows.len(),
        seq_report.stats.pairing.candidate_pairs,
    );
    println!(
        "smoke: pairing 1 thread : {:>10.0} events/sec ({:.1} ms)",
        events / seq_secs,
        seq_secs * 1e3
    );
    let par_busy: f64 = metrics_of(&par_report).timing.worker_busy_ms.iter().sum();
    println!(
        "smoke: pairing {} threads: {:>10.0} events/sec ({:.1} ms wall, {:.1} ms worker-busy)",
        threads,
        events / par_secs,
        par_secs * 1e3,
        par_busy
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("smoke: speedup {speedup:.2}x at {threads} threads ({cores} core(s) available)");

    if par_report.races != seq_report.races
        || par_report.stats.pairing != seq_report.stats.pairing
        || par_report.coverage != seq_report.coverage
    {
        eprintln!("smoke: FAIL — parallel report diverges from sequential");
        return ExitCode::from(1);
    }
    if metrics_of(&par_report).masked() != metrics_of(&seq_report).masked() {
        eprintln!("smoke: FAIL — parallel metrics (timing masked) diverge from sequential");
        return ExitCode::from(1);
    }

    // One full pipeline run (decode-less: the trace is in memory) to audit
    // the conservation laws end-to-end, stage timers included.
    let full = Analyzer::default().threads(threads).run(&trace);
    let fm = metrics_of(&full);
    println!(
        "smoke: full pipeline {:.1} ms (simulate {:.1} ms, pairing {:.1} ms)",
        fm.timing.total_ms, fm.timing.simulate_ms, fm.timing.pairing_ms
    );
    if !check_conservation("sequential pairing", &seq_report)
        || !check_conservation("parallel pairing", &par_report)
        || !check_conservation("full pipeline", &full)
    {
        return ExitCode::from(1);
    }

    if let Some(min) = min_speedup {
        // A speedup floor is only meaningful when the host can actually
        // run the workers concurrently.
        if cores < threads {
            println!(
                "smoke: skipping the {min:.2}x speedup floor — host has {cores} core(s), \
                 {threads} requested"
            );
        } else if speedup < min {
            eprintln!("smoke: FAIL — speedup {speedup:.2}x below required {min:.2}x");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
