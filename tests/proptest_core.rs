//! Property-based tests over the core analysis data structures.

use hawkset::core::addr::{AddrRange, CACHE_LINE};
use hawkset::core::analysis::{AnalysisConfig, Analyzer};
use hawkset::core::lockset::{LockEntry, Lockset};
use hawkset::core::memsim::{simulate, CloseReason, SimConfig};
use hawkset::core::trace::io;
use hawkset::core::trace::{EventKind, Frame, LockId, LockMode, ThreadId, Trace, TraceBuilder};
use hawkset::core::vclock::{ClockOrder, Epoch, VectorClock};
use proptest::prelude::*;

fn arb_range() -> impl Strategy<Value = AddrRange> {
    (0u64..4096, 1u32..96).prop_map(|(start, len)| AddrRange::new(start, len))
}

proptest! {
    /// Overlap is symmetric, and overlapping ranges share a non-empty
    /// intersection contained in both.
    #[test]
    fn addr_overlap_symmetry(a in arb_range(), b in arb_range()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        match a.intersection(&b) {
            Some(i) => {
                prop_assert!(a.overlaps(&b));
                prop_assert!(a.contains(&i) && b.contains(&i));
                prop_assert!(i.len > 0);
            }
            None => prop_assert!(!a.overlaps(&b)),
        }
    }

    /// Subtracting a range never leaves bytes that overlap the subtrahend,
    /// and preserves exactly the bytes outside it.
    #[test]
    fn addr_subtract_partition(a in arb_range(), b in arb_range()) {
        let (head, tail) = a.subtract(&b);
        let mut kept = 0u64;
        for piece in [head, tail].into_iter().flatten() {
            prop_assert!(!piece.overlaps(&b));
            prop_assert!(a.contains(&piece));
            kept += piece.len as u64;
        }
        let cut = a.intersection(&b).map_or(0, |i| i.len as u64);
        prop_assert_eq!(kept + cut, a.len as u64);
    }

    /// Every byte of a range lies in exactly one of its line pieces.
    #[test]
    fn addr_lines_cover(a in arb_range()) {
        let lines: Vec<u64> = a.lines().collect();
        prop_assert!(!lines.is_empty());
        for w in lines.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
        let covered: u64 = lines
            .iter()
            .map(|&l| {
                let start = (l * CACHE_LINE).max(a.start);
                let end = ((l + 1) * CACHE_LINE).min(a.end());
                end - start
            })
            .sum();
        prop_assert_eq!(covered, a.len as u64);
    }
}

fn arb_clock() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u32..8, 0..6).prop_map(VectorClock::from_counters)
}

proptest! {
    /// Happens-before comparison is antisymmetric and merge is an upper
    /// bound.
    #[test]
    fn vclock_order_properties(a in arb_clock(), b in arb_clock()) {
        let ab = a.compare(&b);
        let ba = b.compare(&a);
        let flipped = match ab {
            ClockOrder::Equal => ClockOrder::Equal,
            ClockOrder::Before => ClockOrder::After,
            ClockOrder::After => ClockOrder::Before,
            ClockOrder::Concurrent => ClockOrder::Concurrent,
        };
        prop_assert_eq!(ba, flipped);

        let mut m = a.clone();
        m.merge(&b);
        prop_assert!(!m.happens_before(&a) || a == m);
        prop_assert!(matches!(a.compare(&m), ClockOrder::Before | ClockOrder::Equal));
        prop_assert!(matches!(b.compare(&m), ClockOrder::Before | ClockOrder::Equal));
    }

    /// Ticking makes strictly-later clocks.
    #[test]
    fn vclock_tick_advances(a in arb_clock(), tid in 0u32..6) {
        let mut t = a.clone();
        t.tick(ThreadId(tid));
        prop_assert!(a.happens_before(&t));
    }

    /// The epoch fast path agrees with the full `VectorClock::compare` on
    /// arbitrary protocol-respecting interleavings.
    ///
    /// This replays the simulator's clock discipline in miniature: four
    /// threads tick, exchange clocks by merge-then-tick (the vector-clock
    /// message receive), and take a **post-tick snapshot** after every
    /// step — exactly the snapshots for which the analysis records
    /// [`Epoch`]s. For every recorded snapshot `V_t` and every clock `W`
    /// the run ever produced, the O(1) verdict `Epoch::le_clock` must
    /// equal the O(threads) verdict `V_t ⊑ W` from `compare` — both
    /// directions, so the fast path neither invents nor misses ordering.
    #[test]
    fn epoch_fast_path_matches_full_clock_compare(
        ops in proptest::collection::vec((0usize..4, 0usize..4, any::<bool>()), 1..96)
    ) {
        let mut clocks: Vec<VectorClock> = (0..4u32)
            .map(|t| {
                let mut c = VectorClock::new();
                c.tick(ThreadId(t));
                c
            })
            .collect();
        let mut snapshots: Vec<(Epoch, VectorClock)> = Vec::new();
        let mut observed: Vec<VectorClock> = clocks.clone();
        for &(dst, src, exchange) in &ops {
            if exchange && dst != src {
                let from = clocks[src].clone();
                clocks[dst].merge(&from);
            }
            let tid = ThreadId(dst as u32);
            clocks[dst].tick(tid);
            snapshots.push((Epoch::of(tid, &clocks[dst]), clocks[dst].clone()));
            observed.push(clocks[dst].clone());
        }
        for (ep, snap) in &snapshots {
            for w in &observed {
                let full = matches!(snap.compare(w), ClockOrder::Equal | ClockOrder::Before);
                prop_assert_eq!(
                    ep.le_clock(w),
                    full,
                    "epoch {:?} disagrees with compare: snapshot {:?} vs {:?}",
                    ep, snap, w
                );
            }
        }
    }
}

fn arb_lockset() -> impl Strategy<Value = Lockset> {
    proptest::collection::vec((0u64..6, any::<bool>(), 0u64..4), 0..5).prop_map(|entries| {
        Lockset::from_entries(
            entries
                .into_iter()
                .map(|(l, sh, ts)| LockEntry {
                    lock: LockId(l),
                    mode: if sh {
                        LockMode::Shared
                    } else {
                        LockMode::Exclusive
                    },
                    acq_ts: ts,
                })
                .collect(),
        )
    })
}

proptest! {
    /// Same-thread intersection only keeps locks present in both sets with
    /// equal timestamps; it is a subset of both.
    #[test]
    fn lockset_intersection_is_subset(a in arb_lockset(), b in arb_lockset()) {
        let i = a.intersect_same_thread(&b);
        for e in i.iter() {
            let ea = a.get(e.lock).expect("in a");
            let eb = b.get(e.lock).expect("in b");
            prop_assert_eq!(ea.acq_ts, eb.acq_ts);
            prop_assert_eq!(e.acq_ts, ea.acq_ts);
        }
        prop_assert!(i.len() <= a.len().min(b.len()));
    }

    /// `protects_against` is symmetric and implied by a common exclusive
    /// lock.
    #[test]
    fn lockset_protection_symmetry(a in arb_lockset(), b in arb_lockset()) {
        prop_assert_eq!(a.protects_against(&b), b.protects_against(&a));
        if a.protects_against(&b) {
            prop_assert!(a.iter().any(|e| b.get(e.lock).is_some()));
        }
        prop_assert!(!a.protects_against(&Lockset::empty()));
    }
}

/// Random but *valid* event streams for codec and pipeline properties.
fn arb_trace() -> impl Strategy<Value = Trace> {
    let ops = proptest::collection::vec(
        (0u8..6, 0u64..512u64, 1u32..17, 0u64..4, any::<bool>()),
        1..120,
    );
    (ops, 1u32..4).prop_map(|(ops, workers)| {
        let mut b = TraceBuilder::new();
        let s = b.intern_stack([Frame::new("prop", "prop.rs", 1)]);
        for w in 1..=workers {
            b.push(
                ThreadId(0),
                s,
                EventKind::ThreadCreate { child: ThreadId(w) },
            );
        }
        let mut held: Vec<Vec<u64>> = vec![Vec::new(); workers as usize + 1];
        for (i, (kind, addr, len, lock, flag)) in ops.into_iter().enumerate() {
            let tid = ThreadId(1 + (i as u32 % workers));
            let range = AddrRange::new(0x1000 + addr * 8, len);
            match kind {
                0 => b.push(
                    tid,
                    s,
                    EventKind::Store {
                        range,
                        non_temporal: flag,
                        atomic: false,
                    },
                ),
                1 => b.push(
                    tid,
                    s,
                    EventKind::Load {
                        range,
                        atomic: flag,
                    },
                ),
                2 => b.push(tid, s, EventKind::Flush { addr: range.start }),
                3 => b.push(tid, s, EventKind::Fence),
                4 => {
                    if !held[tid.index()].contains(&lock) {
                        held[tid.index()].push(lock);
                        b.push(
                            tid,
                            s,
                            EventKind::Acquire {
                                lock: LockId(lock),
                                mode: if flag {
                                    LockMode::Shared
                                } else {
                                    LockMode::Exclusive
                                },
                            },
                        );
                    }
                }
                _ => {
                    if let Some(pos) = held[tid.index()].iter().position(|&l| l == lock) {
                        held[tid.index()].remove(pos);
                        b.push(tid, s, EventKind::Release { lock: LockId(lock) });
                    }
                }
            }
        }
        for w in 1..=workers {
            b.push(ThreadId(0), s, EventKind::ThreadJoin { child: ThreadId(w) });
        }
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity on traces.
    #[test]
    fn trace_codec_roundtrip(trace in arb_trace()) {
        let decoded = io::decode(io::encode(&trace).as_ref()).expect("decode");
        prop_assert_eq!(&decoded.events, &trace.events);
        prop_assert_eq!(decoded.thread_count, trace.thread_count);
        prop_assert_eq!(&decoded.regions, &trace.regions);
    }

    /// Decoding never panics on corrupted input.
    #[test]
    fn trace_decode_handles_corruption(trace in arb_trace(), cut in 0usize..64, flip in 0usize..64) {
        let mut raw = io::encode(&trace).to_vec();
        if !raw.is_empty() {
            let cut = cut % raw.len();
            raw.truncate(raw.len() - cut);
        }
        if !raw.is_empty() {
            let i = flip % raw.len();
            raw[i] ^= 0x55;
        }
        let _ = io::decode(&raw); // must not panic
    }

    /// Memory-simulation invariants hold on arbitrary traces: every window
    /// has a consistent close reason, windows partition by counters, and
    /// line confinement holds.
    #[test]
    fn memsim_invariants(trace in arb_trace()) {
        let out = simulate(&trace, &SimConfig::default());
        let mut persisted = 0u64;
        let mut overwritten = 0u64;
        let mut unpersisted = 0u64;
        for w in &out.windows {
            // Each window piece stays within one cache line.
            prop_assert_eq!(w.range.lines().count(), 1);
            match w.close {
                CloseReason::Persisted => {
                    persisted += 1;
                    prop_assert!(w.close_vc.is_some());
                }
                CloseReason::Overwritten => {
                    overwritten += 1;
                    prop_assert!(w.close_vc.is_some());
                }
                CloseReason::NeverPersisted => {
                    unpersisted += 1;
                    prop_assert!(w.close_vc.is_none());
                    prop_assert!(out.locksets.get(w.effective_ls).is_empty());
                }
            }
        }
        prop_assert_eq!(out.stats.windows_persisted, persisted);
        prop_assert_eq!(out.stats.windows_overwritten, overwritten);
        prop_assert_eq!(out.stats.windows_unpersisted, unpersisted);
        prop_assert_eq!(out.stats.loads, out.loads.len() as u64);
    }

    /// The IRH only ever removes reports, and never with more distinct
    /// race sites than the raw analysis.
    #[test]
    fn irh_is_a_pure_filter(trace in arb_trace()) {
        let with_irh = Analyzer::new(AnalysisConfig { irh: true, ..Default::default() }).run(&trace);
        let without = Analyzer::new(AnalysisConfig { irh: false, ..Default::default() }).run(&trace);
        prop_assert!(with_irh.races.len() <= without.races.len());
        // Every race reported with IRH also exists without it.
        for r in &with_irh.races {
            prop_assert!(
                without.races.iter().any(|q| q.store_site_str() == r.store_site_str()
                    && q.load_site_str() == r.load_site_str()),
                "IRH invented a report: {}", r.summary()
            );
        }
    }

    /// Excluding atomics never increases the report count.
    #[test]
    fn atomics_filter_is_monotone(trace in arb_trace()) {
        let all = Analyzer::default().run(&trace);
        let no_atomics =
            Analyzer::new(AnalysisConfig { include_atomics: false, ..Default::default() }).run(&trace);
        prop_assert!(no_atomics.races.len() <= all.races.len());
    }
}
