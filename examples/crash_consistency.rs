//! Why persistency-induced races matter: simulate the crash.
//!
//! The runtime maintains a worst-case *persistent image* next to the
//! volatile (cache-visible) contents: a store only reaches the image after
//! an explicit flush + fence. This example performs the Figure-1c sequence
//! and then "crashes" at the worst moment, showing that:
//!
//! * the reader thread **saw** the new value (it was in the cache), but
//! * the crash image still holds the old value — any side effect the
//!   reader produced is now inconsistent with post-crash state.
//!
//! Run with: `cargo run --example crash_consistency`

use std::sync::mpsc;
use std::sync::Arc;

use hawkset::runtime::{PmEnv, PmMutex};

fn main() {
    let env = PmEnv::new();
    let pool = env.map_pool("/mnt/pmem/crash-demo", 4096);
    let main = env.main_thread();
    let x = pool.base();
    let lock = Arc::new(PmMutex::new(&env, ()));

    pool.store_u64(&main, x, 1);
    pool.persist(&main, x, 8);
    println!("initial state: X = 1 (persisted)");

    // Writer: store X = 2 under the lock, but DO NOT persist yet. Hand an
    // explicit baton to the reader so the racy interleaving is guaranteed.
    let (baton_tx, baton_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let (p, l) = (pool.clone(), Arc::clone(&lock));
    let writer = env.spawn(&main, move |t| {
        {
            let _g = l.lock(t);
            p.store_u64(t, x, 2);
        }
        baton_tx.send(()).expect("reader alive"); // X visible, not durable
        done_rx.recv().expect("reader finished"); // crash happens before this persist
        p.persist(t, x, 8);
    });

    let (p, l) = (pool.clone(), Arc::clone(&lock));
    let reader = env.spawn(&main, move |t| {
        baton_rx.recv().expect("writer alive");
        let v = {
            let _g = l.lock(t);
            p.load_u64(t, x)
        };
        // Side effect based on the read: in a real system, a client reply.
        println!("reader: observed X = {v} and replied to the client");
        v
    });

    let observed = reader.join(&main);
    // --- CRASH ---: take the worst-case persistent image *before* the
    // writer gets to persist.
    let image = pool.crash_image();
    let durable = u64::from_le_bytes(image[0..8].try_into().unwrap());
    println!("\n*** simulated crash ***");
    println!("reader had observed:     X = {observed}");
    println!("durable state after crash: X = {durable}");
    assert_eq!(
        observed, 2,
        "the baton guarantees the reader saw the new value"
    );
    assert_eq!(
        durable, 1,
        "the store was never flushed+fenced, so the crash loses it"
    );
    println!(
        "\nthe client was told X = 2, but recovery will see X = 1 — the inconsistency a \
         persistency-induced race produces (Definition 1)."
    );

    // Let the writer finish so the run shuts down cleanly; afterwards the
    // value IS durable.
    done_tx.send(()).expect("writer alive");
    writer.join(&main);
    let durable_after = pool.persistent_u64(x);
    println!("after the late persist completes: X = {durable_after} (now durable)");
    assert_eq!(durable_after, 2);

    // Recovery demo: reopen a pool from the crash image in a fresh
    // environment, exactly like a post-crash restart would.
    let recovery_env = PmEnv::new();
    let recovered = recovery_env.map_pool_from_image("/mnt/pmem/crash-demo", image);
    let rt = recovery_env.main_thread();
    let v = recovered.load_u64(&rt, recovered.base());
    println!("recovery run reads X = {v} from the reopened pool");
    assert_eq!(v, 1);
}
