//! The Table 3 metric: average time to race.
//!
//! §5.2: given `E` workloads where a tool cannot find the race, `S`
//! workloads where it can, and an average per-workload execution time `T`,
//! the expected time to find the race when workloads are drawn at random
//! without replacement is
//!
//! ```text
//!   Σ_{i=0..E} C(E,i) · S · T · (i+1)
//!   ─────────────────────────────────
//!        Σ_{i=0..E} C(E,i) · S
//! ```
//!
//! which simplifies to `T · (E/2 + 1)` (both sums share the factor `S·2^E`
//! and `Σ C(E,i)(i+1) = 2^E (E/2 + 1)`). Sanity check against the paper's
//! Table 3: PMRace on Fast-Fair bug #1 has `E = 231`, `S = 9`, `T = 600 s`
//! → `600 · 116.5 = 69 900 s`; HawkSet has `E ≈ 130`, `S ≈ 110`,
//! `T = 6.65 s` → `≈ 439 s`; the ratio is the reported ≈159×.

/// Expected time (same unit as `avg_time_per_execution`) for a tool to
/// find a specific race when workloads are picked at random without
/// replacement.
///
/// `racy_workloads` (= S) must be non-zero — a tool that never finds the
/// race has infinite expected time, represented as `f64::INFINITY`.
pub fn expected_time_to_race(
    non_racy_workloads: u64,
    racy_workloads: u64,
    avg_time_per_execution: f64,
) -> f64 {
    if racy_workloads == 0 {
        return f64::INFINITY;
    }
    avg_time_per_execution * (non_racy_workloads as f64 / 2.0 + 1.0)
}

/// The literal binomial-sum form of the paper's formula, kept for
/// cross-validation of the closed form (exact for small `E`).
pub fn expected_time_to_race_literal(
    non_racy_workloads: u64,
    racy_workloads: u64,
    avg_time_per_execution: f64,
) -> f64 {
    if racy_workloads == 0 {
        return f64::INFINITY;
    }
    let e = non_racy_workloads;
    let s = racy_workloads as f64;
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    let mut binom = 1.0f64; // C(E, 0)
    for i in 0..=e {
        num += binom * s * avg_time_per_execution * (i as f64 + 1.0);
        den += binom * s;
        if i < e {
            binom *= (e - i) as f64 / (i as f64 + 1.0);
        }
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table3_pmrace() {
        // 240 seeds, race found on 9: E = 231, T = 600 s.
        let t = expected_time_to_race(231, 9, 600.0);
        assert!((t - 69_900.0).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn matches_paper_table3_hawkset_scale() {
        // HawkSet: 110 racy workloads of 240, T = 6.65 s → ≈ 439 s.
        let t = expected_time_to_race(130, 110, 6.65);
        assert!((t - 438.9).abs() < 1.0, "got {t}");
        // Speedup ≈ 159×.
        let speedup = expected_time_to_race(231, 9, 600.0) / t;
        assert!((speedup - 159.0).abs() < 3.0, "speedup {speedup}");
    }

    #[test]
    fn closed_form_equals_literal_sum() {
        for e in [0u64, 1, 2, 5, 17, 40] {
            for s in [1u64, 3, 100] {
                let a = expected_time_to_race(e, s, 2.5);
                let b = expected_time_to_race_literal(e, s, 2.5);
                assert!((a - b).abs() < 1e-6 * a.max(1.0), "E={e} S={s}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn never_finding_is_infinite() {
        assert!(expected_time_to_race(240, 0, 600.0).is_infinite());
        assert!(expected_time_to_race_literal(240, 0, 600.0).is_infinite());
    }
}
