//! Streaming-analysis equivalence and fault-injection suite.
//!
//! The contract under test: `Analyzer::try_run_stream` over any `Read`
//! source is *bit-identical* to the in-memory batch pipeline on the same
//! bytes — for every chunk size, read granularity, and thread count — and
//! under injected I/O faults or byte corruption it either produces exactly
//! the report the batch pipeline produces for the salvageable prefix, or
//! fails with a typed error. It never panics and never hangs.

use std::io::Cursor;

use hawkset::core::addr::AddrRange;
use hawkset::core::analysis::{
    AnalysisBudget, AnalysisConfig, AnalysisReport, Analyzer, Strictness,
};
use hawkset::core::faults::{apply, FaultRng, IoFaultReader, TrickleReader};
use hawkset::core::trace::io;
use hawkset::core::trace::{
    Event, EventKind, Frame, LockId, LockMode, ThreadId, Trace, TraceBuilder,
};
use proptest::prelude::*;

/// A multi-thread racy trace: three workers storing/loading overlapping
/// ranges with a mix of locked and unlocked accesses, flushes, and fences —
/// enough structure that the pairing stage produces real races to compare.
fn racy_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let stacks: Vec<_> = (0..4u32)
        .map(|t| b.intern_stack([Frame::new(format!("worker{t}"), "app.c", 10 + t)]))
        .collect();
    for t in 1..4u32 {
        b.push(
            ThreadId(0),
            stacks[0],
            EventKind::ThreadCreate { child: ThreadId(t) },
        );
    }
    let lock = LockId(0xa0);
    for round in 0..12u64 {
        let range = AddrRange::new(0x1000 + (round % 4) * 64, 8);
        let writer = ThreadId((round % 3 + 1) as u32);
        let reader = ThreadId(((round + 1) % 3 + 1) as u32);
        let locked = round % 3 == 0;
        if locked {
            b.push(
                writer,
                stacks[writer.0 as usize],
                EventKind::Acquire {
                    lock,
                    mode: LockMode::Exclusive,
                },
            );
        }
        b.push(
            writer,
            stacks[writer.0 as usize],
            EventKind::Store {
                range,
                non_temporal: round % 5 == 0,
                atomic: false,
            },
        );
        if locked {
            b.push(
                writer,
                stacks[writer.0 as usize],
                EventKind::Release { lock },
            );
        }
        b.push(
            reader,
            stacks[reader.0 as usize],
            EventKind::Load {
                range,
                atomic: false,
            },
        );
        if round % 4 == 3 {
            b.push(
                writer,
                stacks[writer.0 as usize],
                EventKind::Flush { addr: range.start },
            );
            b.push(writer, stacks[writer.0 as usize], EventKind::Fence);
        }
    }
    for t in 1..4u32 {
        b.push(
            ThreadId(0),
            stacks[0],
            EventKind::ThreadJoin { child: ThreadId(t) },
        );
    }
    b.finish()
}

/// The racy trace with a semantically ill-formed event spliced in, so the
/// lenient quarantine path is live in every comparison.
fn racy_trace_ill_formed() -> Trace {
    let mut t = racy_trace();
    let bad = Event {
        seq: 0,
        tid: ThreadId(0),
        stack: t.events.get(0).stack,
        kind: EventKind::Release {
            lock: LockId(0xbad),
        },
    };
    t.events.insert(t.events.len() / 2, bad);
    t.events.reseq();
    t
}

fn config(strictness: Strictness, threads: usize) -> AnalysisConfig {
    AnalysisConfig {
        strictness,
        threads,
        budget: AnalysisBudget {
            max_candidate_pairs: Some(100_000),
            max_events: Some(100_000),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Bit-identity: everything schedule-independent must match, including the
/// masked metrics (timing zeroed).
fn assert_identical(batch: &AnalysisReport, stream: &AnalysisReport, what: &str) {
    assert_eq!(batch.races, stream.races, "{what}: races");
    assert_eq!(batch.coverage, stream.coverage, "{what}: coverage");
    assert_eq!(batch.stats.sim, stream.stats.sim, "{what}: sim stats");
    assert_eq!(
        batch.stats.pairing, stream.stats.pairing,
        "{what}: pairing stats"
    );
    assert_eq!(
        batch.stats.quarantine, stream.stats.quarantine,
        "{what}: quarantine"
    );
    assert_eq!(
        batch.metrics.as_ref().map(|m| m.masked()),
        stream.metrics.as_ref().map(|m| m.masked()),
        "{what}: masked metrics"
    );
}

/// Like [`assert_identical`] but without the metrics comparison — used when
/// the streaming side legitimately carries salvage-loss counters the batch
/// side (fed an already-salvaged trace) cannot know about.
fn assert_same_analysis(batch: &AnalysisReport, stream: &AnalysisReport, what: &str) {
    assert_eq!(batch.races, stream.races, "{what}: races");
    assert_eq!(batch.coverage, stream.coverage, "{what}: coverage");
    assert_eq!(batch.stats.sim, stream.stats.sim, "{what}: sim stats");
    assert_eq!(
        batch.stats.pairing, stream.stats.pairing,
        "{what}: pairing stats"
    );
    assert_eq!(
        batch.stats.quarantine, stream.stats.quarantine,
        "{what}: quarantine"
    );
    assert!(
        stream
            .metrics
            .as_ref()
            .expect("stream metrics")
            .conservation_violations()
            .is_empty(),
        "{what}: stream conservation laws"
    );
}

/// Reads served one to seven bytes at a time still produce a report
/// bit-identical to the batch pipeline, in both strictness modes.
#[test]
fn trickle_reads_are_bit_identical_to_batch() {
    for (strictness, trace) in [
        (Strictness::Strict, racy_trace()),
        (Strictness::Lenient, racy_trace_ill_formed()),
    ] {
        let raw = io::encode(&trace).to_vec();
        let analyzer = Analyzer::new(config(strictness, 2));
        let batch = analyzer.try_run(&trace).expect("batch run");
        for trickle in 1..8usize {
            let reader = TrickleReader::new(Cursor::new(raw.clone()), trickle);
            let stream = analyzer
                .try_run_stream(reader)
                .expect("trickled stream run");
            assert_identical(
                &batch,
                &stream,
                &format!("{strictness:?} trickle {trickle}"),
            );
        }
    }
}

/// A reader that dies mid-stream behaves exactly like a file truncated at
/// the failure point: in lenient mode the streamed report equals the batch
/// report over `decode_lossy` of the served prefix, byte for byte of the
/// analysis; in strict mode both reject. Exhaustive over every cut.
#[test]
fn io_fault_at_every_cut_matches_lossy_prefix() {
    let trace = racy_trace();
    let raw = io::encode(&trace).to_vec();
    let lenient = Analyzer::new(config(Strictness::Lenient, 2));
    let mut salvaged_ok = 0usize;
    for fail_at in 0..=raw.len() {
        let reader = IoFaultReader::new(Cursor::new(raw.clone()), fail_at as u64);
        let streamed = lenient.try_run_stream(reader);
        let batched = io::decode_lossy(&raw[..fail_at])
            .map(|salvage| lenient.try_run(&salvage.trace).expect("batch of salvage"));
        match (streamed, batched) {
            (Ok(s), Ok(b)) => {
                assert_same_analysis(&b, &s, &format!("cut at {fail_at}"));
                salvaged_ok += 1;
            }
            (Err(_), Err(_)) => {} // cut inside the header/tables: both reject
            (s, b) => panic!(
                "cut at {fail_at}: stream {:?} but batch {:?}",
                s.map(|r| r.races.len()),
                b.map(|r| r.races.len())
            ),
        }
    }
    assert!(
        salvaged_ok > 10,
        "mid-event-stream faults must salvage analyzable prefixes (got {salvaged_ok})"
    );
}

/// Strict mode refuses a dying reader with a typed error — never a panic,
/// never a partial report presented as complete.
#[test]
fn io_fault_in_strict_mode_is_a_clean_error() {
    let trace = racy_trace();
    let raw = io::encode(&trace).to_vec();
    let strict = Analyzer::new(config(Strictness::Strict, 1));
    // `fail_at == len` also rejects: the fault fires on the read that
    // would otherwise observe EOF.
    for fail_at in 0..=raw.len() {
        let reader = IoFaultReader::new(Cursor::new(raw.clone()), fail_at as u64);
        let got = strict.try_run_stream(reader);
        assert!(
            got.is_err(),
            "strict stream must reject a reader that died at byte {fail_at}/{}",
            raw.len()
        );
    }
    // A fault armed past the last byte never fires: the decoder's final
    // zero-read observes EOF first.
    let reader = IoFaultReader::new(Cursor::new(raw.clone()), raw.len() as u64 + 1);
    let full = strict
        .try_run_stream(reader)
        .expect("fault after the last byte is unreachable");
    assert_identical(
        &strict.try_run(&trace).expect("batch"),
        &full,
        "fault beyond EOF",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any chunk size and thread count: streaming is bit-identical to batch.
    #[test]
    fn random_chunking_is_bit_identical(
        chunk in 1usize..256,
        threads in 1usize..5,
        strict in any::<bool>(),
    ) {
        let trace = if strict { racy_trace() } else { racy_trace_ill_formed() };
        let strictness = if strict { Strictness::Strict } else { Strictness::Lenient };
        let raw = io::encode(&trace).to_vec();
        let mut cfg = config(strictness, threads);
        cfg.stream.chunk_bytes = chunk;
        let analyzer = Analyzer::new(cfg);
        let batch = analyzer.try_run(&trace).expect("batch run");
        let stream = analyzer
            .try_run_stream(Cursor::new(raw))
            .expect("streamed run");
        assert_identical(&batch, &stream, &format!("chunk {chunk} t{threads}"));
    }

    /// Seeded corruption (bit flips, overwrites, varint bombs, truncation)
    /// fed through the streaming path agrees with `decode_lossy` + batch:
    /// both salvage the same analysis or both reject. Never a panic.
    #[test]
    fn corrupted_streams_match_batch_salvage(seed in any::<u64>()) {
        let raw = io::encode(&racy_trace()).to_vec();
        let mut rng = FaultRng::new(seed);
        let mut bytes = raw;
        for _ in 0..(1 + seed % 2) {
            let fault = rng.fault(bytes.len());
            bytes = apply(&bytes, fault);
        }
        let mut cfg = config(Strictness::Lenient, 2);
        cfg.stream.chunk_bytes = 1 + (seed % 96) as usize;
        let lenient = Analyzer::new(cfg);
        let streamed = lenient.try_run_stream(Cursor::new(bytes.clone()));
        let batched = io::decode_lossy(&bytes)
            .map(|salvage| lenient.try_run(&salvage.trace).expect("batch of salvage"));
        match (streamed, batched) {
            (Ok(s), Ok(b)) => assert_same_analysis(&b, &s, &format!("seed {seed:#x}")),
            (Err(_), Err(_)) => {}
            (s, b) => panic!(
                "seed {seed:#x}: stream {:?} but batch {:?}",
                s.map(|r| r.races.len()),
                b.map(|r| r.races.len())
            ),
        }
    }

    /// Allocation pressure (trickled reads) combined with a mid-stream I/O
    /// fault: the lenient pipeline still terminates with either a salvaged
    /// report whose conservation laws hold, or a typed error.
    #[test]
    fn trickle_plus_io_fault_never_panics(
        fail_at in 0u64..4096,
        trickle in 1usize..16,
    ) {
        let raw = io::encode(&racy_trace()).to_vec();
        let lenient = Analyzer::new(config(Strictness::Lenient, 1));
        let reader = TrickleReader::new(
            IoFaultReader::new(Cursor::new(raw), fail_at),
            trickle,
        );
        if let Ok(report) = lenient.try_run_stream(reader) {
            prop_assert!(report
                .metrics
                .as_ref()
                .expect("metrics")
                .conservation_violations()
                .is_empty());
        }
    }
}
