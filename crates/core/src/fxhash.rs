//! A fast, deterministic, non-cryptographic hasher for hot lookup tables.
//!
//! The pairing engine's inner loop is dominated by `HashMap` probes on small
//! integer-tuple keys (memo tables, per-word indexes, interner lookups). The
//! std `SipHash` default is keyed and DoS-resistant but costs tens of cycles
//! per key; this module provides the classic multiply-rotate "Fx" scheme used
//! by rustc — a couple of cycles per word, and *fixed* (unseeded), so hash
//! tables behave identically across runs.
//!
//! Safety rule for call sites: swap in [`FxHashMap`] only on maps whose
//! iteration order never reaches an observable result (lookup-only memos,
//! probe indexes). Maps that are iterated to build reports keep the std
//! hasher or get an explicit deterministic sort.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Multiply-rotate hasher (rustc's `FxHasher` scheme): each input word is
/// folded in with `hash = (hash.rotl(5) ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
            // Length-tag the ragged tail so "ab" and "ab\0" differ.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let k = (0xdead_beefu64, 42u32, true);
        assert_eq!(hash_of(&k), hash_of(&k));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
        assert_ne!(hash_of(&[1u8, 2]), hash_of(&[1u8, 2, 0]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32, u32), bool> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7), i ^ 0xff), i % 3 == 0);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(9, 63, 9 ^ 0xff)), Some(&true));
    }
}
